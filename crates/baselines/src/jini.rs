//! A Jini-style lookup service baseline (§8.4).
//!
//! "A multicast mechanism is used to find the lookup service either for
//! service registration or for other service lookups … once a service is
//! found, a service proxy is passed onto the client and the service is
//! rendered directly to the client via RMI."
//!
//! The pieces reproduced for experiment E5/E20:
//!
//! * **multicast discovery** — clients announce on the discovery port and
//!   wait for a unicast response from the lookup service, retrying at an
//!   announcement interval (real Jini announces every few seconds; the
//!   interval is scaled down but the *rounds* structure is preserved);
//! * **RMI transport** — registration and lookup travel as serialized
//!   [`RmiCall`]s, and a lookup reply carries a serialized *service proxy*
//!   (interface name + stub fields), the heavy payload the paper contrasts
//!   with ACE's string commands.

use crate::rmi::{RmiCall, RmiValue};
use ace_net::{Addr, HostId, NetError, SimNet};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// The well-known multicast discovery port.
pub const DISCOVERY_PORT: u16 = 4160; // Jini's actual port

/// A registered Jini service: its proxy fields.
#[derive(Debug, Clone, PartialEq)]
pub struct JiniProxy {
    pub name: String,
    pub interface: String,
    pub host: String,
    pub port: u16,
}

/// Handle to a running Jini-style lookup service.
pub struct JiniLookup {
    addr: Addr,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl JiniLookup {
    /// Start the lookup service on `host:port`.
    pub fn start(net: &SimNet, host: impl Into<HostId>, port: u16) -> Result<JiniLookup, NetError> {
        let host = host.into();
        let addr = Addr::new(host.clone(), port);
        let registry: Arc<Mutex<HashMap<String, JiniProxy>>> = Arc::new(Mutex::new(HashMap::new()));
        let stop = Arc::new(AtomicBool::new(false));

        // Discovery responder: answer multicast announcements with our
        // unicast address.
        let discovery_socket = net.bind_datagram(Addr::new(host.clone(), DISCOVERY_PORT))?;
        let listener = net.listen(addr.clone())?;

        let mut threads = Vec::new();
        {
            let stop = Arc::clone(&stop);
            let net = net.clone();
            let our_addr = addr.clone();
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    match discovery_socket.recv_timeout(Duration::from_millis(25)) {
                        Ok(datagram) => {
                            if datagram.payload.starts_with(b"jini-discover") {
                                let reply = format!("jini-lookup {our_addr}");
                                let _ = net.send_datagram(
                                    &our_addr,
                                    &datagram.from,
                                    reply.into_bytes(),
                                );
                            }
                        }
                        Err(NetError::Timeout) => continue,
                        Err(_) => break,
                    }
                }
            }));
        }

        // Registration/lookup server over RMI frames.
        {
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let conn = match listener.accept_timeout(Duration::from_millis(25)) {
                        Ok(c) => c,
                        Err(NetError::Timeout) => continue,
                        Err(_) => break,
                    };
                    let registry = Arc::clone(&registry);
                    let stop = Arc::clone(&stop);
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::SeqCst) {
                            let frame = match conn.recv_timeout(Duration::from_millis(50)) {
                                Ok(f) => f,
                                Err(NetError::Timeout) => continue,
                                Err(_) => break,
                            };
                            let Some(call) = RmiCall::decode(&frame) else {
                                continue;
                            };
                            let reply = handle_call(&registry, &call);
                            if conn.send(reply.encode()).is_err() {
                                break;
                            }
                        }
                    });
                }
            }));
        }

        Ok(JiniLookup {
            addr,
            stop,
            threads,
        })
    }

    /// The lookup service's unicast address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Stop the service.
    pub fn shutdown(self) {
        self.stop.store(true, Ordering::SeqCst);
        for t in self.threads {
            let _ = t.join();
        }
    }
}

fn handle_call(registry: &Mutex<HashMap<String, JiniProxy>>, call: &RmiCall) -> RmiCall {
    let get_str = |name: &str| -> Option<String> {
        call.args.iter().find_map(|(n, v)| {
            if n == name {
                match v {
                    RmiValue::Str(s) => Some(s.clone()),
                    _ => None,
                }
            } else {
                None
            }
        })
    };
    match call.method.as_str() {
        "register" => {
            let (Some(name), Some(interface), Some(host), Some(port)) = (
                get_str("name"),
                get_str("interface"),
                get_str("host"),
                call.args.iter().find_map(|(n, v)| {
                    if n == "port" {
                        match v {
                            RmiValue::Long(p) => Some(*p as u16),
                            _ => None,
                        }
                    } else {
                        None
                    }
                }),
            ) else {
                return error_reply("bad register arguments");
            };
            registry.lock().insert(
                name.clone(),
                JiniProxy {
                    name,
                    interface,
                    host,
                    port,
                },
            );
            RmiCall {
                interface: "net.jini.core.lookup.ServiceRegistrar".into(),
                method: "registerReturn".into(),
                // Jini grants a lease on registration.
                args: vec![("leaseMillis".into(), RmiValue::Long(30_000))],
            }
        }
        "lookup" => {
            let Some(name) = get_str("name") else {
                return error_reply("bad lookup arguments");
            };
            match registry.lock().get(&name) {
                // The reply carries the full serialized proxy object.
                Some(proxy) => RmiCall {
                    interface: "net.jini.core.lookup.ServiceRegistrar".into(),
                    method: "lookupReturn".into(),
                    args: vec![(
                        "proxy".into(),
                        RmiValue::List(vec![
                            RmiValue::Str(proxy.name.clone()),
                            RmiValue::Str(proxy.interface.clone()),
                            RmiValue::Str(proxy.host.clone()),
                            RmiValue::Long(proxy.port as i64),
                            // Stub internals a real marshalled proxy drags
                            // along (codebase URL, invocation handler class).
                            RmiValue::Str(format!("http://{}/codebase.jar", proxy.host)),
                            RmiValue::Str("java.rmi.server.RemoteObjectInvocationHandler".into()),
                        ]),
                    )],
                },
                None => error_reply("no such service"),
            }
        }
        _ => error_reply("unknown method"),
    }
}

fn error_reply(msg: &str) -> RmiCall {
    RmiCall {
        interface: "java.rmi.RemoteException".into(),
        method: "error".into(),
        args: vec![("message".into(), RmiValue::Str(msg.into()))],
    }
}

/// Multicast discovery: announce and wait for a lookup service to answer.
/// Returns the lookup address and how many announcement rounds it took.
pub fn discover(
    net: &SimNet,
    from_host: &HostId,
    reply_port: u16,
    announce_interval: Duration,
    max_rounds: usize,
) -> Option<(Addr, usize)> {
    let socket = net
        .bind_datagram(Addr::new(from_host.clone(), reply_port))
        .ok()?;
    let from = Addr::new(from_host.clone(), reply_port);
    for round in 1..=max_rounds {
        net.multicast(&from, DISCOVERY_PORT, b"jini-discover");
        let deadline = std::time::Instant::now() + announce_interval;
        while let Ok(remaining) = deadline
            .checked_duration_since(std::time::Instant::now())
            .ok_or(())
        {
            match socket.recv_timeout(remaining.max(Duration::from_millis(1))) {
                Ok(datagram) => {
                    let text = String::from_utf8_lossy(&datagram.payload).to_string();
                    if let Some(addr_text) = text.strip_prefix("jini-lookup ") {
                        if let Some(addr) = Addr::parse(addr_text) {
                            return Some((addr, round));
                        }
                    }
                }
                Err(_) => break,
            }
        }
    }
    None
}

/// A Jini client: RMI-framed register/lookup against a discovered registrar.
pub struct JiniClient {
    conn: ace_net::Connection,
}

impl JiniClient {
    /// Connect to the registrar.
    pub fn connect(net: &SimNet, from_host: &HostId, lookup: Addr) -> Result<JiniClient, NetError> {
        Ok(JiniClient {
            conn: net.connect(from_host, lookup)?,
        })
    }

    fn call(&mut self, call: &RmiCall) -> Option<RmiCall> {
        self.conn.send(call.encode()).ok()?;
        let frame = self.conn.recv_timeout(Duration::from_secs(5)).ok()?;
        RmiCall::decode(&frame)
    }

    /// Register a service, returning the lease in milliseconds.
    pub fn register(&mut self, proxy: &JiniProxy) -> Option<i64> {
        let reply = self.call(&RmiCall {
            interface: "net.jini.core.lookup.ServiceRegistrar".into(),
            method: "register".into(),
            args: vec![
                ("name".into(), RmiValue::Str(proxy.name.clone())),
                ("interface".into(), RmiValue::Str(proxy.interface.clone())),
                ("host".into(), RmiValue::Str(proxy.host.clone())),
                ("port".into(), RmiValue::Long(proxy.port as i64)),
            ],
        })?;
        match reply.method.as_str() {
            "registerReturn" => reply.args.iter().find_map(|(n, v)| {
                if n == "leaseMillis" {
                    match v {
                        RmiValue::Long(ms) => Some(*ms),
                        _ => None,
                    }
                } else {
                    None
                }
            }),
            _ => None,
        }
    }

    /// Look a service up by name, returning its proxy.
    pub fn lookup(&mut self, name: &str) -> Option<JiniProxy> {
        let reply = self.call(&RmiCall {
            interface: "net.jini.core.lookup.ServiceRegistrar".into(),
            method: "lookup".into(),
            args: vec![("name".into(), RmiValue::Str(name.into()))],
        })?;
        if reply.method != "lookupReturn" {
            return None;
        }
        let RmiValue::List(fields) = &reply.args.first()?.1 else {
            return None;
        };
        match (&fields[0], &fields[1], &fields[2], &fields[3]) {
            (
                RmiValue::Str(name),
                RmiValue::Str(interface),
                RmiValue::Str(host),
                RmiValue::Long(port),
            ) => Some(JiniProxy {
                name: name.clone(),
                interface: interface.clone(),
                host: host.clone(),
                port: *port as u16,
            }),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discover_register_lookup() {
        let net = SimNet::new();
        net.add_host("registrar");
        net.add_host("client");
        let lookup = JiniLookup::start(&net, "registrar", 4500).unwrap();

        let (addr, rounds) = discover(&net, &"client".into(), 4600, Duration::from_millis(100), 10)
            .expect("discovery");
        assert_eq!(addr, Addr::new("registrar", 4500));
        assert_eq!(rounds, 1, "responder answers the first announcement");

        let mut client = JiniClient::connect(&net, &"client".into(), addr).unwrap();
        let proxy = JiniProxy {
            name: "cam1".into(),
            interface: "edu.ku.ittc.ace.PTZCamera".into(),
            host: "bar".into(),
            port: 1234,
        };
        let lease = client.register(&proxy).unwrap();
        assert!(lease > 0);
        assert_eq!(client.lookup("cam1").unwrap(), proxy);
        assert!(client.lookup("ghost").is_none());

        lookup.shutdown();
    }

    #[test]
    fn discovery_needs_multiple_rounds_when_registrar_late() {
        let net = SimNet::new();
        net.add_host("registrar");
        net.add_host("client");

        // Start the registrar only after a delay; early announcement rounds
        // go unanswered.
        let net2 = net.clone();
        let starter = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(120));
            JiniLookup::start(&net2, "registrar", 4500).unwrap()
        });

        let (_, rounds) = discover(&net, &"client".into(), 4600, Duration::from_millis(50), 50)
            .expect("discovery eventually succeeds");
        assert!(rounds > 1, "took {rounds} rounds");
        starter.join().unwrap().shutdown();
    }

    #[test]
    fn no_registrar_discovery_fails() {
        let net = SimNet::new();
        net.add_host("client");
        assert!(discover(&net, &"client".into(), 4600, Duration::from_millis(10), 3).is_none());
    }
}
