//! A WebSphere-style centralized server baseline (§8.3).
//!
//! "IBM's WebSphere Everyplace Server … attempts to centralize device and
//! applications integration and control to a main server or cluster of
//! servers that oversee all connections and users", speaking HTTP.
//!
//! The baseline reproduces the architectural property the paper contrasts
//! with ACE: *all* device state lives behind one server, every interaction
//! crosses it, and requests are serviced by a single dispatcher (one
//! worker), so concurrent clients queue — experiment E20 measures the
//! resulting throughput ceiling against ACE's distributed daemons.
//!
//! The protocol is a minimal HTTP/1.0-shaped text exchange:
//! `GET /device/<name>/<property>` and `PUT /device/<name>/<property> <value>`.

use ace_net::{Addr, HostId, NetError, SimNet};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Handle to the running central server.
pub struct CentralServer {
    addr: Addr,
    stop: Arc<AtomicBool>,
    requests: Arc<AtomicU64>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl CentralServer {
    /// Start the server on `host:port`.  A single dispatcher thread owns all
    /// state and serves one request at a time (the centralization model).
    pub fn start(
        net: &SimNet,
        host: impl Into<HostId>,
        port: u16,
    ) -> Result<CentralServer, NetError> {
        let host = host.into();
        let addr = Addr::new(host, port);
        let listener = net.listen(addr.clone())?;
        let stop = Arc::new(AtomicBool::new(false));
        let requests = Arc::new(AtomicU64::new(0));

        let thread = {
            let stop = Arc::clone(&stop);
            let requests = Arc::clone(&requests);
            std::thread::spawn(move || {
                let devices: Mutex<HashMap<String, HashMap<String, String>>> =
                    Mutex::new(HashMap::new());
                let mut connections: Vec<ace_net::Connection> = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    // Accept any new connections.
                    while let Ok(conn) = listener.accept_timeout(Duration::from_millis(1)) {
                        connections.push(conn);
                    }
                    // Serve one request per connection per sweep —
                    // single-threaded dispatch.
                    let mut dead = Vec::new();
                    for (i, conn) in connections.iter().enumerate() {
                        match conn.try_recv() {
                            Ok(Some(frame)) => {
                                requests.fetch_add(1, Ordering::Relaxed);
                                let response = handle_request(&devices, &frame);
                                if conn.send(response).is_err() {
                                    dead.push(i);
                                }
                            }
                            Ok(None) => {}
                            Err(_) => dead.push(i),
                        }
                    }
                    for i in dead.into_iter().rev() {
                        connections.swap_remove(i);
                    }
                    std::thread::sleep(Duration::from_micros(200));
                }
            })
        };

        Ok(CentralServer {
            addr,
            stop,
            requests,
            thread: Some(thread),
        })
    }

    /// The server address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// Requests served so far.
    pub fn requests_served(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Stop the server.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

fn handle_request(
    devices: &Mutex<HashMap<String, HashMap<String, String>>>,
    frame: &[u8],
) -> Vec<u8> {
    let Ok(text) = std::str::from_utf8(frame) else {
        return http_response(400, "bad request");
    };
    let mut parts = text.split(' ');
    match (parts.next(), parts.next()) {
        (Some("GET"), Some(path)) => {
            let Some((device, property)) = parse_path(path) else {
                return http_response(404, "bad path");
            };
            match devices.lock().get(device).and_then(|d| d.get(property)) {
                Some(value) => http_response(200, value),
                None => http_response(404, "not found"),
            }
        }
        (Some("PUT"), Some(path)) => {
            let Some((device, property)) = parse_path(path) else {
                return http_response(404, "bad path");
            };
            let value: String = parts.collect::<Vec<_>>().join(" ");
            devices
                .lock()
                .entry(device.to_string())
                .or_default()
                .insert(property.to_string(), value);
            http_response(200, "ok")
        }
        _ => http_response(405, "method not allowed"),
    }
}

fn parse_path(path: &str) -> Option<(&str, &str)> {
    let rest = path.strip_prefix("/device/")?;
    rest.split_once('/')
}

fn http_response(code: u16, body: &str) -> Vec<u8> {
    format!(
        "HTTP/1.0 {code}\r\nContent-Length: {}\r\nContent-Type: text/plain\r\n\r\n{body}",
        body.len()
    )
    .into_bytes()
}

/// A client of the central server.
pub struct CentralClient {
    conn: ace_net::Connection,
}

impl CentralClient {
    pub fn connect(
        net: &SimNet,
        from_host: &HostId,
        server: Addr,
    ) -> Result<CentralClient, NetError> {
        Ok(CentralClient {
            conn: net.connect(from_host, server)?,
        })
    }

    fn request(&mut self, line: String) -> Option<(u16, String)> {
        self.conn.send(line.into_bytes()).ok()?;
        let frame = self.conn.recv_timeout(Duration::from_secs(5)).ok()?;
        let text = String::from_utf8(frame).ok()?;
        let (head, body) = text.split_once("\r\n\r\n")?;
        let status_line = head.lines().next()?;
        let code: u16 = status_line.split_whitespace().nth(1)?.parse().ok()?;
        Some((code, body.to_string()))
    }

    /// `PUT /device/<name>/<property> <value>`.
    pub fn put(&mut self, device: &str, property: &str, value: &str) -> bool {
        matches!(
            self.request(format!("PUT /device/{device}/{property} {value}")),
            Some((200, _))
        )
    }

    /// `GET /device/<name>/<property>`.
    pub fn get(&mut self, device: &str, property: &str) -> Option<String> {
        match self.request(format!("GET /device/{device}/{property}"))? {
            (200, body) => Some(body),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_roundtrip() {
        let net = SimNet::new();
        net.add_host("server");
        net.add_host("client");
        let server = CentralServer::start(&net, "server", 8080).unwrap();
        let mut client =
            CentralClient::connect(&net, &"client".into(), server.addr().clone()).unwrap();

        assert!(client.put("cam1", "pan", "45"));
        assert_eq!(client.get("cam1", "pan").as_deref(), Some("45"));
        assert_eq!(client.get("cam1", "tilt"), None);
        assert_eq!(client.get("ghost", "pan"), None);
        assert_eq!(server.requests_served(), 4);

        server.shutdown();
    }

    #[test]
    fn concurrent_clients_are_all_served() {
        let net = SimNet::new();
        net.add_host("server");
        for i in 0..4 {
            net.add_host(format!("c{i}"));
        }
        let server = CentralServer::start(&net, "server", 8080).unwrap();

        let mut joins = Vec::new();
        for i in 0..4 {
            let net = net.clone();
            let addr = server.addr().clone();
            joins.push(std::thread::spawn(move || {
                let host: HostId = format!("c{i}").as_str().into();
                let mut client = CentralClient::connect(&net, &host, addr).unwrap();
                for j in 0..25 {
                    assert!(client.put(&format!("dev{i}"), "v", &j.to_string()));
                }
                assert_eq!(client.get(&format!("dev{i}"), "v").as_deref(), Some("24"));
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(server.requests_served(), 4 * 26);
        server.shutdown();
    }
}
