//! A shared closed-loop lookup-storm harness.
//!
//! The §8 comparisons need the same load shape applied to very different
//! directory planes — the ACE ASD (single or sharded), the Jini-style
//! lookup service, and the WebSphere-style central server.  This harness
//! owns the common part: N worker threads, each with its own client,
//! hammering lookups until a deadline and reporting aggregate throughput.
//! Latency recording is delegated to the caller (the ACE arms feed a
//! `MetricsRegistry` histogram; this crate stays free of that dependency).

use std::time::{Duration, Instant};

/// Aggregate result of one storm.
#[derive(Debug, Clone, Copy)]
pub struct LoadReport {
    /// Successful operations across all workers.
    pub ops: u64,
    /// Failed operations (a healthy arm reports zero).
    pub errors: u64,
    /// Wall-clock from first to last worker.
    pub elapsed: Duration,
}

impl LoadReport {
    /// Successful operations per second.
    pub fn per_sec(&self) -> f64 {
        self.ops as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }

    /// Successful operations per minute (the ROADMAP's lookup target is
    /// quoted per minute).
    pub fn per_min(&self) -> f64 {
        self.per_sec() * 60.0
    }
}

/// Run `threads` workers for `duration`.  `make_op(worker_index)` is
/// called once *inside* each worker thread to build its operation (own
/// client, own RNG); the operation returns `true` on success.  `record`
/// sees every operation's latency and must be cheap and thread-safe.
pub fn lookup_storm<F>(
    threads: usize,
    duration: Duration,
    make_op: impl Fn(usize) -> F + Sync,
    record: impl Fn(Duration) + Sync,
) -> LoadReport
where
    F: FnMut() -> bool,
{
    let started = Instant::now();
    let deadline = started + duration;
    let mut totals: Vec<(u64, u64)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|idx| {
                let make_op = &make_op;
                let record = &record;
                scope.spawn(move || {
                    let mut op = make_op(idx);
                    let mut ops = 0u64;
                    let mut errors = 0u64;
                    while Instant::now() < deadline {
                        let t = Instant::now();
                        let ok = op();
                        record(t.elapsed());
                        if ok {
                            ops += 1;
                        } else {
                            errors += 1;
                        }
                    }
                    (ops, errors)
                })
            })
            .collect();
        for handle in handles {
            totals.push(handle.join().expect("storm worker panicked"));
        }
    });
    LoadReport {
        ops: totals.iter().map(|(o, _)| o).sum(),
        errors: totals.iter().map(|(_, e)| e).sum(),
        elapsed: started.elapsed(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn storm_aggregates_across_workers() {
        let recorded = AtomicU64::new(0);
        let report = lookup_storm(
            4,
            Duration::from_millis(50),
            |idx| {
                let mut i = 0u64;
                move || {
                    i += 1;
                    std::thread::sleep(Duration::from_micros(200));
                    // Worker 0 fails every 3rd op so the error path is
                    // exercised too.
                    !(idx == 0 && i % 3 == 0)
                }
            },
            |_| {
                recorded.fetch_add(1, Ordering::Relaxed);
            },
        );
        assert!(report.ops > 0);
        assert!(report.errors > 0);
        assert_eq!(report.ops + report.errors, recorded.load(Ordering::Relaxed));
        assert!(report.per_sec() > 0.0);
        assert!((report.per_min() - report.per_sec() * 60.0).abs() < 1e-6);
    }
}
