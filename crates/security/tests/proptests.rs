//! Property tests on the security substrate: cipher round-trips and
//! tamper-rejection, resumption-ticket codec totality, RSA sign/verify
//! totality, and KeyNote monotonicity.

use ace_security::cipher::{SecureChannel, SessionKey};
use ace_security::keynote::{action_env, Assertion, KeyNoteEngine, Licensees, POLICY};
use ace_security::keys::KeyPair;
use ace_security::ticket::{resume_proof, ResumptionTicket};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// seal→open is the identity for any payload and any key seed.
    #[test]
    fn cipher_roundtrip(seed in any::<u64>(), payload in prop::collection::vec(any::<u8>(), 0..512)) {
        let key = SessionKey::from_seed(seed);
        let mut tx = SecureChannel::new(key);
        let mut rx = SecureChannel::new(key);
        let frame = tx.seal(&payload);
        prop_assert_eq!(rx.open(&frame).unwrap(), payload);
    }

    /// Flipping any single byte of a sealed frame makes it unopenable.
    #[test]
    fn cipher_rejects_any_single_flip(
        seed in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 1..64),
        flip_at_frac in 0.0f64..1.0,
    ) {
        let key = SessionKey::from_seed(seed);
        let mut tx = SecureChannel::new(key);
        let mut rx = SecureChannel::new(key);
        let mut frame = tx.seal(&payload);
        let idx = ((frame.len() - 1) as f64 * flip_at_frac) as usize;
        frame[idx] ^= 0x01;
        prop_assert!(rx.open(&frame).is_err());
    }

    /// A sequence of frames round-trips in order.
    #[test]
    fn cipher_sequences(seed in any::<u64>(), payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..32), 1..16)) {
        let key = SessionKey::from_seed(seed);
        let mut tx = SecureChannel::new(key);
        let mut rx = SecureChannel::new(key);
        for p in &payloads {
            let f = tx.seal(p);
            prop_assert_eq!(&rx.open(&f).unwrap(), p);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Ticket encode→decode is the identity for any id, TTL, and principal
    /// strings — including principals full of delimiter characters.
    #[test]
    fn ticket_wire_roundtrip(
        id in any::<u64>(),
        ttl_ms in any::<u64>(),
        client in "[ -~]{0,48}",
        server in "[ -~]{0,48}",
    ) {
        let t = ResumptionTicket {
            id,
            ttl_ms,
            client_principal: client,
            server_principal: server,
        };
        prop_assert_eq!(ResumptionTicket::from_wire(&t.to_wire()), Some(t));
    }

    /// The decoder is total: arbitrary input never panics, and whatever it
    /// accepts re-encodes to a wire form it decodes identically (decode is
    /// a partial inverse of encode, never a lossy guess).
    #[test]
    fn ticket_decode_is_total_and_consistent(input in "[ -~]{0,96}") {
        if let Some(t) = ResumptionTicket::from_wire(&input) {
            prop_assert_eq!(ResumptionTicket::from_wire(&t.to_wire()), Some(t));
        }
    }

    /// A proof over different inputs (or a different master) never
    /// collides with the original proof.
    #[test]
    fn ticket_proof_separates_inputs(
        seed in any::<u64>(),
        id in any::<u64>(),
        nonce in any::<u64>(),
    ) {
        let master = SessionKey::from_seed(seed);
        let base = resume_proof(&master, id, nonce);
        prop_assert_ne!(base, resume_proof(&master, id, nonce.wrapping_add(1)));
        prop_assert_ne!(base, resume_proof(&master, id.wrapping_add(1), nonce));
        prop_assert_ne!(
            base,
            resume_proof(&SessionKey::from_seed(seed.wrapping_add(1)), id, nonce)
        );
    }
}

proptest! {
    // RSA keygen is the slow part; keep case counts low.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Sign/verify round-trips for arbitrary messages; tampering fails.
    #[test]
    fn rsa_sign_verify(msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..4)) {
        let kp = KeyPair::generate(&mut rand::thread_rng());
        for msg in &msgs {
            let sig = kp.sign(msg);
            prop_assert!(kp.public().verify(msg, sig));
            let mut other = msg.clone();
            other.push(0x42);
            prop_assert!(!kp.public().verify(&other, sig));
        }
    }
}

/// Monotonicity: adding assertions never revokes an authorization.
#[test]
fn keynote_monotone_under_assertion_addition() {
    let mut rng = rand::thread_rng();
    let admin = KeyPair::generate(&mut rng);
    let user = KeyPair::generate(&mut rng);
    let extra = KeyPair::generate(&mut rng);

    let mut engine = KeyNoteEngine::new();
    engine
        .add_policy(
            Assertion::new(POLICY, Licensees::Principal(admin.principal()), "true").unwrap(),
        )
        .unwrap();
    engine
        .add_credential(
            Assertion::new(
                admin.principal(),
                Licensees::Principal(user.principal()),
                "cmd == \"lookup\"",
            )
            .unwrap()
            .sign(&admin)
            .unwrap(),
        )
        .unwrap();

    let env = action_env([("cmd", "lookup")]);
    let user_p = user.principal();
    assert!(engine.query(&env, &[&user_p]));

    // Grow the assertion base in several ways; the grant must survive.
    for i in 0..10 {
        let cond = if i % 2 == 0 {
            "true"
        } else {
            "cmd == \"other\""
        };
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(extra.principal()), cond).unwrap(),
            )
            .unwrap();
        assert!(
            engine.query(&env, &[&user_p]),
            "grant revoked by unrelated assertion {i}"
        );
    }
}
