//! Session-resumption tickets for the secure link fast path.
//!
//! A full link handshake pays a Diffie–Hellman exchange plus an RSA
//! transcript signature on every connection.  After one full handshake the
//! two sides share a session secret, so they can derive a *resumption
//! master key* and skip the expensive steps next time: the server hands the
//! client a [`ResumptionTicket`] naming the principal pair and a bounded
//! TTL, and a resuming client proves possession of the master key with one
//! keyed MAC over a fresh nonce ([`resume_proof`]).
//!
//! Security properties (within the simulation-grade crypto of this crate):
//!
//! * **The master key never travels.**  Both sides derive it independently
//!   from the handshake session key; the ticket carries only public
//!   metadata (id, principals, TTL).
//! * **Possession is proven, not asserted.**  The resume frame MACs the
//!   ticket id and nonce under the master key; a stolen ticket id without
//!   the key cannot produce a valid proof.
//! * **Replay is impossible.**  The server accepts each nonce at most once
//!   per ticket, and every resumption derives fresh per-direction session
//!   keys from the nonce, so a recorded resume frame is useless.
//! * **Bounded lifetime.**  Tickets expire after their TTL; an expired or
//!   unknown ticket is rejected and the client transparently falls back to
//!   the full handshake.

use crate::cipher::SessionKey;

/// Domain-separation label mixed into every resume proof.
const PROOF_LABEL: &[u8] = b"ace-resume-proof";

/// Public metadata of one resumption ticket.  The master key it refers to
/// is held separately by the client's ticket cache and the server's vault —
/// it is never part of the wire encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResumptionTicket {
    /// Server-chosen identifier; the resume frame quotes it in the clear.
    pub id: u64,
    /// Lifetime granted by the server, in milliseconds.
    pub ttl_ms: u64,
    /// The principal the ticket was issued *to*.
    pub client_principal: String,
    /// The principal that issued it.
    pub server_principal: String,
}

impl ResumptionTicket {
    /// Encode as a single token: `tkt:<id>:<ttl>:<client>:<server>` with
    /// both principal fields hex-encoded, so the codec is total over
    /// arbitrary principal strings (no delimiter can collide).
    pub fn to_wire(&self) -> String {
        format!(
            "tkt:{:016x}:{:x}:{}:{}",
            self.id,
            self.ttl_ms,
            hex_of(self.client_principal.as_bytes()),
            hex_of(self.server_principal.as_bytes()),
        )
    }

    /// Decode [`ResumptionTicket::to_wire`]; `None` on any malformation.
    pub fn from_wire(text: &str) -> Option<ResumptionTicket> {
        let rest = text.strip_prefix("tkt:")?;
        let mut fields = rest.split(':');
        let id = u64::from_str_radix(fields.next()?, 16).ok()?;
        let ttl_ms = u64::from_str_radix(fields.next()?, 16).ok()?;
        let client = String::from_utf8(hex_to_bytes(fields.next()?)?).ok()?;
        let server = String::from_utf8(hex_to_bytes(fields.next()?)?).ok()?;
        if fields.next().is_some() {
            return None;
        }
        Some(ResumptionTicket {
            id,
            ttl_ms,
            client_principal: client,
            server_principal: server,
        })
    }
}

/// The keyed MAC a resuming client presents: possession of `master` over
/// the ticket id and this connection's fresh nonce.
pub fn resume_proof(master: &SessionKey, ticket_id: u64, nonce: u64) -> u64 {
    let mut material = Vec::with_capacity(PROOF_LABEL.len() + 16);
    material.extend_from_slice(PROOF_LABEL);
    material.extend_from_slice(&ticket_id.to_le_bytes());
    material.extend_from_slice(&nonce.to_le_bytes());
    master.mac_tag(&material)
}

fn hex_of(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_to_bytes(hex: &str) -> Option<Vec<u8>> {
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    (0..hex.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_roundtrip() {
        let t = ResumptionTicket {
            id: 0xdead_beef_1234_5678,
            ttl_ms: 30_000,
            client_principal: "rsa:00ff:3".into(),
            server_principal: "rsa:abcd:10001".into(),
        };
        assert_eq!(ResumptionTicket::from_wire(&t.to_wire()), Some(t));
    }

    #[test]
    fn hostile_principals_cannot_break_the_codec() {
        let t = ResumptionTicket {
            id: 1,
            ttl_ms: 2,
            client_principal: "a:b:c tkt: \" ; weird".into(),
            server_principal: String::new(),
        };
        assert_eq!(ResumptionTicket::from_wire(&t.to_wire()), Some(t));
    }

    #[test]
    fn malformed_wire_rejected() {
        for bad in [
            "",
            "tkt:",
            "tkt:xyz:1::",
            "tkt:1:1:0g:",
            "tkt:1:1:00:00:extra",
            "notatkt:1:1::",
            "tkt:1:1:0:", // odd-length hex
        ] {
            assert_eq!(ResumptionTicket::from_wire(bad), None, "accepted `{bad}`");
        }
    }

    #[test]
    fn proof_depends_on_every_input() {
        let master = SessionKey::from_seed(9);
        let other = SessionKey::from_seed(10);
        let base = resume_proof(&master, 1, 2);
        assert_ne!(base, resume_proof(&master, 1, 3));
        assert_ne!(base, resume_proof(&master, 2, 2));
        assert_ne!(base, resume_proof(&other, 1, 2));
    }
}
