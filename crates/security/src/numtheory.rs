//! Small-modulus number theory for the simulated public-key layer:
//! modular exponentiation, deterministic Miller–Rabin for `u64`, extended
//! Euclid, and random prime generation.

use rand::Rng;

/// `base^exp mod modulus` (modulus may be up to 2^64-1; products go through
/// `u128`).
pub fn modpow(mut base: u64, mut exp: u64, modulus: u64) -> u64 {
    assert!(modulus > 1, "modulus must exceed 1");
    let m = modulus as u128;
    let mut result: u128 = 1;
    let mut b = (base as u128) % m;
    while exp > 0 {
        if exp & 1 == 1 {
            result = result * b % m;
        }
        b = b * b % m;
        exp >>= 1;
    }
    base = result as u64;
    base
}

/// Deterministic Miller–Rabin: the witness set below decides primality for
/// every `u64`.
pub fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let mut d = n - 1;
    let mut r = 0;
    while d.is_multiple_of(2) {
        d /= 2;
        r += 1;
    }
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = modpow(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = ((x as u128 * x as u128) % n as u128) as u64;
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// A random prime in `[2^(bits-1), 2^bits)`; `bits` in `[3, 63]`.
pub fn random_prime(rng: &mut impl Rng, bits: u32) -> u64 {
    assert!((3..=63).contains(&bits));
    let lo = 1u64 << (bits - 1);
    let hi = 1u64 << bits;
    loop {
        let mut candidate = rng.gen_range(lo..hi) | 1;
        // March odd numbers upward from the random start.
        while candidate < hi {
            if is_prime(candidate) {
                return candidate;
            }
            candidate += 2;
        }
    }
}

/// Extended Euclid: returns `(g, x, y)` with `a*x + b*y = g = gcd(a, b)`.
pub fn egcd(a: i128, b: i128) -> (i128, i128, i128) {
    if b == 0 {
        (a, 1, 0)
    } else {
        let (g, x, y) = egcd(b, a % b);
        (g, y, x - (a / b) * y)
    }
}

/// Multiplicative inverse of `a` mod `m`, if `gcd(a, m) == 1`.
pub fn modinv(a: u64, m: u64) -> Option<u64> {
    let (g, x, _) = egcd(a as i128, m as i128);
    if g != 1 {
        return None;
    }
    Some(((x % m as i128 + m as i128) % m as i128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modpow_basics() {
        assert_eq!(modpow(2, 10, 1_000_000), 1024);
        assert_eq!(modpow(3, 0, 7), 1);
        assert_eq!(modpow(10, 3, 7), 6);
        // Fermat: a^(p-1) = 1 mod p.
        let p = 0xFFFF_FFFF_FFFF_FFC5; // largest 64-bit prime
        assert_eq!(modpow(12345, p - 1, p), 1);
    }

    #[test]
    fn primality_known_values() {
        for p in [2u64, 3, 5, 97, 7919, 2_147_483_647, 0xFFFF_FFFF_FFFF_FFC5] {
            assert!(is_prime(p), "{p} is prime");
        }
        for c in [0u64, 1, 4, 100, 7917, 2_147_483_649, u64::MAX] {
            assert!(!is_prime(c), "{c} is composite");
        }
    }

    #[test]
    fn random_primes_are_prime_and_sized() {
        let mut rng = rand::thread_rng();
        for _ in 0..10 {
            let p = random_prime(&mut rng, 32);
            assert!(is_prime(p));
            assert!(((1 << 31)..(1u64 << 32)).contains(&p));
        }
    }

    #[test]
    fn modinv_inverts() {
        let m = 0xFFFF_FFFF_FFFF_FFC5u64;
        for a in [2u64, 3, 65537, 123456789] {
            let inv = modinv(a, m).unwrap();
            assert_eq!((a as u128 * inv as u128 % m as u128) as u64, 1);
        }
        assert_eq!(modinv(4, 8), None);
    }
}
