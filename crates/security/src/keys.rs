//! Simulated public-key identities: textbook RSA over 64-bit moduli.
//!
//! Every ACE user and service holds a key pair; principals in KeyNote
//! assertions are the textual form of public keys ("the user must register …
//! public key", §4.7).  The signatures are mathematically real RSA —
//! verification genuinely requires the matching public key and detects
//! tampering — merely with toy parameters, as documented in DESIGN.md.

use crate::hash::fnv64;
use crate::numtheory::{modinv, modpow, random_prime};
use rand::Rng;
use std::fmt;

/// A public key: RSA `(n, e)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PublicKey {
    pub n: u64,
    pub e: u64,
}

impl PublicKey {
    /// The principal string used in KeyNote assertions, e.g.
    /// `rsa:1f2e3d4c5b6a7988:10001`.
    pub fn principal(&self) -> String {
        format!("rsa:{:016x}:{:x}", self.n, self.e)
    }

    /// Parse a principal string back into a key.
    pub fn from_principal(s: &str) -> Option<PublicKey> {
        let rest = s.strip_prefix("rsa:")?;
        let (n, e) = rest.split_once(':')?;
        Some(PublicKey {
            n: u64::from_str_radix(n, 16).ok()?,
            e: u64::from_str_radix(e, 16).ok()?,
        })
    }

    /// Verify `sig` over `msg`.
    pub fn verify(&self, msg: &[u8], sig: Signature) -> bool {
        let h = fnv64(msg) % self.n;
        modpow(sig.0, self.e, self.n) == h
    }
}

impl fmt::Display for PublicKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.principal())
    }
}

/// A detached signature.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Signature(pub u64);

impl Signature {
    /// Wire form, e.g. `sig-rsa:0123456789abcdef`.
    pub fn to_wire(self) -> String {
        format!("sig-rsa:{:016x}", self.0)
    }

    pub fn from_wire(s: &str) -> Option<Signature> {
        let hex = s.strip_prefix("sig-rsa:")?;
        Some(Signature(u64::from_str_radix(hex, 16).ok()?))
    }
}

/// A private/public key pair.
#[derive(Debug, Clone, Copy)]
pub struct KeyPair {
    public: PublicKey,
    d: u64,
}

impl KeyPair {
    /// Generate a fresh pair (two random 32-bit primes, `e = 65537`).
    pub fn generate(rng: &mut impl Rng) -> KeyPair {
        loop {
            let p = random_prime(rng, 32);
            let q = random_prime(rng, 32);
            if p == q {
                continue;
            }
            let n = p * q; // < 2^64
            let phi = (p - 1) * (q - 1);
            let e = 65537u64;
            if let Some(d) = modinv(e, phi) {
                return KeyPair {
                    public: PublicKey { n, e },
                    d,
                };
            }
        }
    }

    /// The public half.
    pub fn public(&self) -> PublicKey {
        self.public
    }

    /// The principal string of the public half.
    pub fn principal(&self) -> String {
        self.public.principal()
    }

    /// Sign `msg`.
    pub fn sign(&self, msg: &[u8]) -> Signature {
        let h = fnv64(msg) % self.public.n;
        Signature(modpow(h, self.d, self.public.n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sign_verify_roundtrip() {
        let mut rng = rand::thread_rng();
        let kp = KeyPair::generate(&mut rng);
        let msg = b"authorizer: POLICY";
        let sig = kp.sign(msg);
        assert!(kp.public().verify(msg, sig));
    }

    #[test]
    fn tampered_message_rejected() {
        let mut rng = rand::thread_rng();
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"grant ptzMove");
        assert!(!kp.public().verify(b"grant shutdown", sig));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut rng = rand::thread_rng();
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        let sig = a.sign(b"msg");
        assert!(!b.public().verify(b"msg", sig));
    }

    #[test]
    fn tampered_signature_rejected() {
        let mut rng = rand::thread_rng();
        let kp = KeyPair::generate(&mut rng);
        let sig = kp.sign(b"msg");
        assert!(!kp.public().verify(b"msg", Signature(sig.0 ^ 1)));
    }

    #[test]
    fn principal_roundtrip() {
        let mut rng = rand::thread_rng();
        let kp = KeyPair::generate(&mut rng);
        let p = kp.principal();
        assert!(p.starts_with("rsa:"));
        assert_eq!(PublicKey::from_principal(&p), Some(kp.public()));
        assert_eq!(PublicKey::from_principal("rsa:xyz"), None);
        assert_eq!(PublicKey::from_principal("dsa:123:5"), None);
    }

    #[test]
    fn signature_wire_roundtrip() {
        let sig = Signature(0xdead_beef_1234_5678);
        assert_eq!(Signature::from_wire(&sig.to_wire()), Some(sig));
        assert_eq!(Signature::from_wire("nope"), None);
    }

    #[test]
    fn distinct_pairs_have_distinct_principals() {
        let mut rng = rand::thread_rng();
        let a = KeyPair::generate(&mut rng);
        let b = KeyPair::generate(&mut rng);
        assert_ne!(a.principal(), b.principal());
    }
}
