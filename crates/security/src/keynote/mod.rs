//! A from-scratch KeyNote trust-management engine (RFC 2704 subset).
//!
//! "The KeyNote trust management system has been integrated into the ACE
//! service infrastructure.  Both users and services shall have credentials
//! and assertions defined for what can and can't be done within an ACE"
//! (§3.2).  This module implements the pieces ACE uses:
//!
//! * [`Assertion`] — policy and credential assertions with authorizer,
//!   licensee expression, condition expression, and (for credentials) an
//!   RSA signature over the canonical text,
//! * the text format (`authorizer: …` / `licensees: …` / …) stored in the
//!   Authorization Database service,
//! * [`KeyNoteEngine::query`] — the compliance checker: does POLICY
//!   delegate authority for this action to the requesting principals,
//!   through any chain of valid credentials?
//! * [`CachingEngine`] — a verification cache, the E8 ablation.

pub mod cond;
pub mod licensee;

pub use cond::{action_env, parse_cond, ActionEnv, Cond};
pub use licensee::{parse_licensees, Licensees};

use crate::keys::{KeyPair, PublicKey, Signature};
use std::collections::HashMap;
use std::fmt;

/// The distinguished principal whose authority is the root of every query.
pub const POLICY: &str = "POLICY";

/// One KeyNote assertion.
#[derive(Debug, Clone, PartialEq)]
pub struct Assertion {
    /// The delegating principal: `POLICY` or a public-key string.
    pub authorizer: String,
    /// To whom authority is delegated.
    pub licensees: Licensees,
    /// Under what conditions on the action attribute set.
    pub conditions: Cond,
    /// Free-text comment (kept for the text round-trip).
    pub comment: String,
    /// Signature by the authorizer's key; `None` for local policy assertions.
    pub signature: Option<Signature>,
    /// The conditions field as written (canonical text for signing).
    conditions_src: String,
}

impl Assertion {
    /// Build an unsigned assertion.
    pub fn new(
        authorizer: impl Into<String>,
        licensees: Licensees,
        conditions_src: &str,
    ) -> Result<Assertion, KeyNoteError> {
        let conditions =
            parse_cond(conditions_src).map_err(|e| KeyNoteError::BadAssertion(e.to_string()))?;
        Ok(Assertion {
            authorizer: authorizer.into(),
            licensees,
            conditions,
            comment: String::new(),
            signature: None,
            conditions_src: conditions_src.to_string(),
        })
    }

    /// Attach a comment.
    pub fn with_comment(mut self, comment: impl Into<String>) -> Assertion {
        self.comment = comment.into();
        self
    }

    /// The canonical text that is signed: every field except `signature`.
    pub fn signing_text(&self) -> String {
        let mut s = String::new();
        s.push_str("keynote-version: 2\n");
        if !self.comment.is_empty() {
            s.push_str("comment: ");
            s.push_str(&self.comment);
            s.push('\n');
        }
        s.push_str("authorizer: \"");
        s.push_str(&self.authorizer);
        s.push_str("\"\n");
        s.push_str("licensees: ");
        s.push_str(&self.licensees.to_string());
        s.push('\n');
        s.push_str("conditions: ");
        s.push_str(&self.conditions_src);
        s.push('\n');
        s
    }

    /// Sign with the authorizer's key pair, producing a credential.  The key
    /// must match the `authorizer` field.
    pub fn sign(mut self, key: &KeyPair) -> Result<Assertion, KeyNoteError> {
        if key.principal() != self.authorizer {
            return Err(KeyNoteError::SignerMismatch {
                authorizer: self.authorizer.clone(),
                signer: key.principal(),
            });
        }
        self.signature = Some(key.sign(self.signing_text().as_bytes()));
        Ok(self)
    }

    /// Verify this credential's signature against its authorizer key.
    pub fn verify(&self) -> Result<(), KeyNoteError> {
        let sig = self.signature.ok_or(KeyNoteError::Unsigned)?;
        let key = PublicKey::from_principal(&self.authorizer).ok_or_else(|| {
            KeyNoteError::BadAssertion(format!(
                "authorizer `{}` is not a public key",
                self.authorizer
            ))
        })?;
        if key.verify(self.signing_text().as_bytes(), sig) {
            Ok(())
        } else {
            Err(KeyNoteError::BadSignature)
        }
    }

    /// Full text including the signature line (the form stored in the
    /// Authorization Database).
    pub fn to_text(&self) -> String {
        let mut s = self.signing_text();
        if let Some(sig) = self.signature {
            s.push_str("signature: \"");
            s.push_str(&sig.to_wire());
            s.push_str("\"\n");
        }
        s
    }

    /// Parse the text form.
    pub fn parse(text: &str) -> Result<Assertion, KeyNoteError> {
        let mut authorizer = None;
        let mut licensees = None;
        let mut conditions_src = None;
        let mut comment = String::new();
        let mut signature = None;
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (field, value) = line
                .split_once(':')
                .ok_or_else(|| KeyNoteError::BadAssertion(format!("malformed line `{line}`")))?;
            let value = value.trim();
            match field.trim() {
                "keynote-version" => {
                    if value != "2" {
                        return Err(KeyNoteError::BadAssertion(format!(
                            "unsupported keynote-version `{value}`"
                        )));
                    }
                }
                "comment" => comment = value.to_string(),
                "authorizer" => authorizer = Some(unquote(value).to_string()),
                "licensees" => {
                    licensees = Some(
                        parse_licensees(value)
                            .map_err(|e| KeyNoteError::BadAssertion(e.to_string()))?,
                    )
                }
                "conditions" => conditions_src = Some(value.to_string()),
                "signature" => {
                    signature =
                        Some(Signature::from_wire(unquote(value)).ok_or_else(|| {
                            KeyNoteError::BadAssertion("malformed signature".into())
                        })?)
                }
                other => {
                    return Err(KeyNoteError::BadAssertion(format!(
                        "unknown field `{other}`"
                    )))
                }
            }
        }
        let authorizer =
            authorizer.ok_or_else(|| KeyNoteError::BadAssertion("missing authorizer".into()))?;
        let licensees =
            licensees.ok_or_else(|| KeyNoteError::BadAssertion("missing licensees".into()))?;
        let conditions_src = conditions_src.unwrap_or_else(|| "true".to_string());
        let mut a = Assertion::new(authorizer, licensees, &conditions_src)?;
        a.comment = comment;
        a.signature = signature;
        Ok(a)
    }
}

fn unquote(s: &str) -> &str {
    s.strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .unwrap_or(s)
}

/// KeyNote errors.
#[derive(Debug, Clone, PartialEq)]
pub enum KeyNoteError {
    /// A credential must carry a signature.
    Unsigned,
    /// Signature did not verify against the authorizer key.
    BadSignature,
    /// A policy assertion must have authorizer `POLICY`; a credential must
    /// be signed by its own authorizer.
    SignerMismatch { authorizer: String, signer: String },
    /// Not a policy assertion.
    NotPolicy(String),
    /// Structural/parse problem.
    BadAssertion(String),
}

impl fmt::Display for KeyNoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KeyNoteError::Unsigned => write!(f, "credential has no signature"),
            KeyNoteError::BadSignature => write!(f, "credential signature invalid"),
            KeyNoteError::SignerMismatch { authorizer, signer } => {
                write!(f, "signer {signer} does not match authorizer {authorizer}")
            }
            KeyNoteError::NotPolicy(a) => {
                write!(f, "assertion by `{a}` is not a policy assertion")
            }
            KeyNoteError::BadAssertion(m) => write!(f, "bad assertion: {m}"),
        }
    }
}
impl std::error::Error for KeyNoteError {}

/// The compliance checker over a set of policies and credentials.
#[derive(Debug, Default, Clone)]
pub struct KeyNoteEngine {
    /// Assertions indexed by authorizer, the recursion's fan-out edge.
    by_authorizer: HashMap<String, Vec<Assertion>>,
    assertion_count: usize,
}

impl KeyNoteEngine {
    pub fn new() -> KeyNoteEngine {
        KeyNoteEngine::default()
    }

    /// Install a locally-trusted policy assertion (authorizer `POLICY`,
    /// unsigned).
    pub fn add_policy(&mut self, assertion: Assertion) -> Result<(), KeyNoteError> {
        if assertion.authorizer != POLICY {
            return Err(KeyNoteError::NotPolicy(assertion.authorizer));
        }
        self.insert(assertion);
        Ok(())
    }

    /// Install a credential after verifying its signature.
    pub fn add_credential(&mut self, assertion: Assertion) -> Result<(), KeyNoteError> {
        assertion.verify()?;
        self.insert(assertion);
        Ok(())
    }

    fn insert(&mut self, assertion: Assertion) {
        self.by_authorizer
            .entry(assertion.authorizer.clone())
            .or_default()
            .push(assertion);
        self.assertion_count += 1;
    }

    /// Number of installed assertions.
    pub fn len(&self) -> usize {
        self.assertion_count
    }

    /// `true` if no assertions are installed.
    pub fn is_empty(&self) -> bool {
        self.assertion_count == 0
    }

    /// The compliance query: does `POLICY` authorize `requesters` for the
    /// action described by `env`?
    ///
    /// A principal *supports* the request if it is a requester, or if any of
    /// its assertions has satisfied conditions and a licensee expression
    /// satisfied by supporting principals.  The query answer is whether
    /// `POLICY` supports the request.  Delegation cycles evaluate safely to
    /// "no additional authority".
    pub fn query(&self, env: &ActionEnv, requesters: &[&str]) -> bool {
        let mut memo: HashMap<&str, Option<bool>> = HashMap::new();
        self.supports(POLICY, env, requesters, &mut memo)
    }

    fn supports<'a>(
        &'a self,
        principal: &'a str,
        env: &ActionEnv,
        requesters: &[&str],
        memo: &mut HashMap<&'a str, Option<bool>>,
    ) -> bool {
        if requesters.contains(&principal) {
            return true;
        }
        match memo.get(principal) {
            Some(Some(v)) => return *v,
            Some(None) => return false, // cycle: no extra authority
            None => {}
        }
        memo.insert(principal, None);
        let mut result = false;
        if let Some(assertions) = self.by_authorizer.get(principal) {
            for a in assertions {
                if !a.conditions.eval(env) {
                    continue;
                }
                let ok = a.licensees.satisfied(&mut |p: &str| {
                    // Licensee principals live inside `a`, which borrows from
                    // self; extend to 'a via lookup so the memo can key them.
                    if let Some((key, _)) = self.by_authorizer.get_key_value(p) {
                        self.supports(key, env, requesters, memo)
                    } else {
                        requesters.contains(&p)
                    }
                });
                if ok {
                    result = true;
                    break;
                }
            }
        }
        memo.insert(principal, Some(result));
        result
    }
}

/// A [`KeyNoteEngine`] with a query cache keyed on `(action env, requesters)`.
///
/// The paper flags authorization flexibility/cost as future work (§9); E8
/// measures what this cache buys.  The cache is invalidated whenever an
/// assertion is added.
#[derive(Debug, Default)]
pub struct CachingEngine {
    engine: KeyNoteEngine,
    cache: std::sync::Mutex<HashMap<u64, bool>>,
    hits: std::sync::atomic::AtomicU64,
    misses: std::sync::atomic::AtomicU64,
}

impl CachingEngine {
    pub fn new(engine: KeyNoteEngine) -> CachingEngine {
        CachingEngine {
            engine,
            ..CachingEngine::default()
        }
    }

    /// The wrapped engine.
    pub fn engine(&self) -> &KeyNoteEngine {
        &self.engine
    }

    /// Add a policy and invalidate the cache.
    pub fn add_policy(&mut self, a: Assertion) -> Result<(), KeyNoteError> {
        self.cache.lock().expect("cache lock").clear();
        self.engine.add_policy(a)
    }

    /// Add a credential and invalidate the cache.
    pub fn add_credential(&mut self, a: Assertion) -> Result<(), KeyNoteError> {
        self.cache.lock().expect("cache lock").clear();
        self.engine.add_credential(a)
    }

    /// Cached compliance query.
    pub fn query(&self, env: &ActionEnv, requesters: &[&str]) -> bool {
        use std::sync::atomic::Ordering;
        let key = cache_key(env, requesters);
        if let Some(&v) = self.cache.lock().expect("cache lock").get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return v;
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let v = self.engine.query(env, requesters);
        self.cache.lock().expect("cache lock").insert(key, v);
        v
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (u64, u64) {
        use std::sync::atomic::Ordering;
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

fn cache_key(env: &ActionEnv, requesters: &[&str]) -> u64 {
    let mut material = Vec::with_capacity(128);
    for (k, v) in env {
        material.extend_from_slice(k.as_bytes());
        material.push(1);
        material.extend_from_slice(v.as_bytes());
        material.push(2);
    }
    let mut sorted: Vec<&str> = requesters.to_vec();
    sorted.sort_unstable();
    for r in sorted {
        material.extend_from_slice(r.as_bytes());
        material.push(3);
    }
    crate::hash::fnv64(&material)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyPair;

    fn keypair() -> KeyPair {
        KeyPair::generate(&mut rand::thread_rng())
    }

    fn policy_for(principal: &str, conditions: &str) -> Assertion {
        Assertion::new(
            POLICY,
            Licensees::Principal(principal.to_string()),
            conditions,
        )
        .unwrap()
    }

    #[test]
    fn direct_policy_grant() {
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(policy_for(&user.principal(), "cmd == \"ptzMove\""))
            .unwrap();

        let env = action_env([("cmd", "ptzMove")]);
        assert!(engine.query(&env, &[&user.principal()]));
        let env = action_env([("cmd", "shutdown")]);
        assert!(!engine.query(&env, &[&user.principal()]));
    }

    #[test]
    fn unknown_requester_denied() {
        let user = keypair();
        let stranger = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(policy_for(&user.principal(), "true"))
            .unwrap();
        assert!(!engine.query(&ActionEnv::new(), &[&stranger.principal()]));
    }

    #[test]
    fn empty_engine_denies_everything() {
        let engine = KeyNoteEngine::new();
        assert!(!engine.query(&ActionEnv::new(), &["anyone"]));
    }

    #[test]
    fn delegation_chain() {
        // POLICY -> admin -> user
        let admin = keypair();
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(policy_for(&admin.principal(), "true"))
            .unwrap();
        let cred = Assertion::new(
            admin.principal(),
            Licensees::Principal(user.principal()),
            "cmd == \"lookup\"",
        )
        .unwrap()
        .sign(&admin)
        .unwrap();
        engine.add_credential(cred).unwrap();

        let env = action_env([("cmd", "lookup")]);
        assert!(engine.query(&env, &[&user.principal()]));
        // Condition on the *delegation edge* restricts the chain.
        let env = action_env([("cmd", "shutdown")]);
        assert!(!engine.query(&env, &[&user.principal()]));
        // Admin retains broader authority.
        assert!(engine.query(&env, &[&admin.principal()]));
    }

    #[test]
    fn forged_credential_rejected_at_install() {
        let admin = keypair();
        let mallory = keypair();
        let user = keypair();
        let cred = Assertion::new(
            admin.principal(),
            Licensees::Principal(user.principal()),
            "true",
        )
        .unwrap();
        // Mallory cannot sign for admin.
        assert!(matches!(
            cred.clone().sign(&mallory),
            Err(KeyNoteError::SignerMismatch { .. })
        ));
        // An unsigned credential is rejected.
        let mut engine = KeyNoteEngine::new();
        assert!(matches!(
            engine.add_credential(cred),
            Err(KeyNoteError::Unsigned)
        ));
    }

    #[test]
    fn tampered_credential_rejected() {
        let admin = keypair();
        let user = keypair();
        let cred = Assertion::new(
            admin.principal(),
            Licensees::Principal(user.principal()),
            "cmd == \"lookup\"",
        )
        .unwrap()
        .sign(&admin)
        .unwrap();
        // Widen the conditions after signing.
        let mut text = cred.to_text();
        text = text.replace("cmd == \"lookup\"", "true");
        let forged = Assertion::parse(&text).unwrap();
        let mut engine = KeyNoteEngine::new();
        assert_eq!(
            engine.add_credential(forged),
            Err(KeyNoteError::BadSignature)
        );
    }

    #[test]
    fn and_licensees_require_both_requesters() {
        let a = keypair();
        let b = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(
                    POLICY,
                    Licensees::And(vec![
                        Licensees::Principal(a.principal()),
                        Licensees::Principal(b.principal()),
                    ]),
                    "true",
                )
                .unwrap(),
            )
            .unwrap();
        let env = ActionEnv::new();
        assert!(!engine.query(&env, &[&a.principal()]));
        assert!(engine.query(&env, &[&a.principal(), &b.principal()]));
    }

    #[test]
    fn delegation_cycle_terminates() {
        let a = keypair();
        let b = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(policy_for(&a.principal(), "true"))
            .unwrap();
        // a -> b and b -> a: a cycle granting nothing extra.
        engine
            .add_credential(
                Assertion::new(a.principal(), Licensees::Principal(b.principal()), "true")
                    .unwrap()
                    .sign(&a)
                    .unwrap(),
            )
            .unwrap();
        engine
            .add_credential(
                Assertion::new(b.principal(), Licensees::Principal(a.principal()), "true")
                    .unwrap()
                    .sign(&b)
                    .unwrap(),
            )
            .unwrap();
        let stranger = keypair();
        assert!(!engine.query(&ActionEnv::new(), &[&stranger.principal()]));
        // And b (reachable through the chain) is authorized.
        assert!(engine.query(&ActionEnv::new(), &[&b.principal()]));
    }

    #[test]
    fn text_roundtrip() {
        let admin = keypair();
        let user = keypair();
        let cred = Assertion::new(
            admin.principal(),
            Licensees::Principal(user.principal()),
            "app_domain == \"ace\" && cmd == \"lookup\"",
        )
        .unwrap()
        .with_comment("grant lookup to user")
        .sign(&admin)
        .unwrap();
        let text = cred.to_text();
        let parsed = Assertion::parse(&text).unwrap();
        assert_eq!(parsed, cred);
        parsed.verify().unwrap();
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Assertion::parse("").is_err());
        assert!(Assertion::parse("authorizer: \"POLICY\"").is_err()); // no licensees
        assert!(Assertion::parse("licensees: \"a\"").is_err()); // no authorizer
        assert!(Assertion::parse("bogus-field: 1\nauthorizer: \"P\"\nlicensees: \"a\"").is_err());
        assert!(
            Assertion::parse("keynote-version: 9\nauthorizer: \"P\"\nlicensees: \"a\"").is_err()
        );
    }

    #[test]
    fn policy_must_be_policy() {
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        let a = Assertion::new(user.principal(), Licensees::Principal("x".into()), "true").unwrap();
        assert!(matches!(
            engine.add_policy(a),
            Err(KeyNoteError::NotPolicy(_))
        ));
    }

    #[test]
    fn cache_hits_and_invalidates() {
        let user = keypair();
        let mut caching = CachingEngine::new(KeyNoteEngine::new());
        caching
            .add_policy(policy_for(&user.principal(), "true"))
            .unwrap();
        let env = action_env([("cmd", "lookup")]);
        let p = user.principal();
        assert!(caching.query(&env, &[&p]));
        assert!(caching.query(&env, &[&p]));
        assert!(caching.query(&env, &[&p]));
        let (hits, misses) = caching.stats();
        assert_eq!((hits, misses), (2, 1));

        // Adding an assertion invalidates.
        let other = keypair();
        caching
            .add_policy(policy_for(&other.principal(), "true"))
            .unwrap();
        assert!(caching.query(&env, &[&p]));
        let (_, misses2) = caching.stats();
        assert_eq!(misses2, 2);
    }

    #[test]
    fn cache_distinguishes_envs_and_requesters() {
        let user = keypair();
        let mut caching = CachingEngine::new(KeyNoteEngine::new());
        caching
            .add_policy(policy_for(&user.principal(), "cmd == \"a\""))
            .unwrap();
        let p = user.principal();
        assert!(caching.query(&action_env([("cmd", "a")]), &[&p]));
        assert!(!caching.query(&action_env([("cmd", "b")]), &[&p]));
        assert!(!caching.query(&action_env([("cmd", "a")]), &["other"]));
    }
}
