//! The KeyNote condition expression language.
//!
//! Assertions carry a `conditions:` field — a boolean expression over the
//! *action attribute set* (RFC 2704's term for the key/value environment
//! describing the requested action).  ACE uses it to say things like
//!
//! ```text
//! conditions: app_domain == "ace" && service == "ptz_camera" &&
//!             cmd == "ptzMove" && zoom <= 10
//! ```
//!
//! Supported forms: `&&`, `||`, `!`, parentheses, comparisons
//! (`==`, `!=`, `<`, `<=`, `>`, `>=`), attribute references (bare words),
//! string literals (`"…"`), numeric literals, and the constants
//! `true`/`false`.  Per RFC 2704, a reference to an attribute that is not in
//! the action set evaluates as the empty string.  Ordering comparisons are
//! numeric when both operands parse as numbers and lexicographic otherwise.

use std::collections::BTreeMap;
use std::fmt;

/// The action attribute set: what the requester is trying to do.
///
/// `BTreeMap` keeps iteration deterministic so cached compliance lookups can
/// hash the environment stably.
pub type ActionEnv = BTreeMap<String, String>;

/// Build an [`ActionEnv`] from pairs.
pub fn action_env<const N: usize>(pairs: [(&str, &str); N]) -> ActionEnv {
    pairs
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect()
}

/// A parsed condition expression.
#[derive(Debug, Clone, PartialEq)]
pub enum Cond {
    True,
    False,
    Not(Box<Cond>),
    And(Box<Cond>, Box<Cond>),
    Or(Box<Cond>, Box<Cond>),
    Cmp {
        lhs: Operand,
        op: CmpOp,
        rhs: Operand,
    },
}

/// One side of a comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// Attribute reference; missing attributes read as `""`.
    Attr(String),
    /// String literal.
    Str(String),
    /// Numeric literal.
    Num(f64),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl Cond {
    /// Evaluate against an action attribute set.
    pub fn eval(&self, env: &ActionEnv) -> bool {
        match self {
            Cond::True => true,
            Cond::False => false,
            Cond::Not(c) => !c.eval(env),
            Cond::And(a, b) => a.eval(env) && b.eval(env),
            Cond::Or(a, b) => a.eval(env) || b.eval(env),
            Cond::Cmp { lhs, op, rhs } => {
                let l = lhs.resolve(env);
                let r = rhs.resolve(env);
                compare(&l, *op, &r)
            }
        }
    }
}

impl Operand {
    fn resolve<'a>(&'a self, env: &'a ActionEnv) -> std::borrow::Cow<'a, str> {
        match self {
            Operand::Attr(name) => {
                std::borrow::Cow::Borrowed(env.get(name).map(String::as_str).unwrap_or(""))
            }
            Operand::Str(s) => std::borrow::Cow::Borrowed(s),
            Operand::Num(n) => std::borrow::Cow::Owned(format_num(*n)),
        }
    }
}

fn format_num(n: f64) -> String {
    if n == n.trunc() && n.abs() < 1e15 {
        format!("{}", n as i64)
    } else {
        format!("{n}")
    }
}

fn compare(l: &str, op: CmpOp, r: &str) -> bool {
    match op {
        CmpOp::Eq => l == r,
        CmpOp::Ne => l != r,
        _ => {
            // Numeric ordering when both sides are numbers, else
            // lexicographic.
            let ord = match (l.parse::<f64>(), r.parse::<f64>()) {
                (Ok(a), Ok(b)) => a.partial_cmp(&b),
                _ => Some(l.cmp(r)),
            };
            let Some(ord) = ord else { return false };
            match op {
                CmpOp::Lt => ord.is_lt(),
                CmpOp::Le => ord.is_le(),
                CmpOp::Gt => ord.is_gt(),
                CmpOp::Ge => ord.is_ge(),
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            }
        }
    }
}

/// A condition parse failure, with a human-readable reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondParseError(pub String);

impl fmt::Display for CondParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "condition parse error: {}", self.0)
    }
}

impl std::error::Error for CondParseError {}

/// Parse a condition expression.
pub fn parse_cond(src: &str) -> Result<Cond, CondParseError> {
    let tokens = lex(src)?;
    let mut p = P { toks: tokens, i: 0 };
    let cond = p.or_expr()?;
    if p.i != p.toks.len() {
        return Err(CondParseError(format!(
            "trailing input starting with {:?}",
            p.toks[p.i]
        )));
    }
    Ok(cond)
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Num(f64),
    AndAnd,
    OrOr,
    Not,
    LParen,
    RParen,
    Op(CmpOp),
}

fn lex(src: &str) -> Result<Vec<Tok>, CondParseError> {
    let b = src.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < b.len() {
        match b[i] {
            b' ' | b'\t' | b'\n' | b'\r' => i += 1,
            b'(' => {
                out.push(Tok::LParen);
                i += 1;
            }
            b')' => {
                out.push(Tok::RParen);
                i += 1;
            }
            b'&' if b.get(i + 1) == Some(&b'&') => {
                out.push(Tok::AndAnd);
                i += 2;
            }
            b'|' if b.get(i + 1) == Some(&b'|') => {
                out.push(Tok::OrOr);
                i += 2;
            }
            b'=' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Op(CmpOp::Eq));
                i += 2;
            }
            b'!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Op(CmpOp::Ne));
                i += 2;
            }
            b'!' => {
                out.push(Tok::Not);
                i += 1;
            }
            b'<' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Op(CmpOp::Le));
                i += 2;
            }
            b'<' => {
                out.push(Tok::Op(CmpOp::Lt));
                i += 1;
            }
            b'>' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Op(CmpOp::Ge));
                i += 2;
            }
            b'>' => {
                out.push(Tok::Op(CmpOp::Gt));
                i += 1;
            }
            b'"' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(CondParseError("unterminated string".into()));
                }
                out.push(Tok::Str(src[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || c == b'-' || c == b'+' => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'.' || b[i] == b'_')
                {
                    i += 1;
                }
                let text = &src[start..i];
                let n = text
                    .parse::<f64>()
                    .map_err(|_| CondParseError(format!("bad number `{text}`")))?;
                out.push(Tok::Num(n));
            }
            c if (c as char).is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_' || b[i] == b'.')
                {
                    i += 1;
                }
                out.push(Tok::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(CondParseError(format!(
                    "unexpected character `{}`",
                    other as char
                )))
            }
        }
    }
    Ok(out)
}

struct P {
    toks: Vec<Tok>,
    i: usize,
}

impl P {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }
    fn bump(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.i).cloned();
        if t.is_some() {
            self.i += 1;
        }
        t
    }

    fn or_expr(&mut self) -> Result<Cond, CondParseError> {
        let mut lhs = self.and_expr()?;
        while matches!(self.peek(), Some(Tok::OrOr)) {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Cond::Or(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Cond, CondParseError> {
        let mut lhs = self.unary()?;
        while matches!(self.peek(), Some(Tok::AndAnd)) {
            self.bump();
            let rhs = self.unary()?;
            lhs = Cond::And(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Cond, CondParseError> {
        match self.peek() {
            Some(Tok::Not) => {
                self.bump();
                Ok(Cond::Not(Box::new(self.unary()?)))
            }
            Some(Tok::LParen) => {
                self.bump();
                let inner = self.or_expr()?;
                match self.bump() {
                    Some(Tok::RParen) => Ok(inner),
                    _ => Err(CondParseError("expected `)`".into())),
                }
            }
            _ => self.comparison(),
        }
    }

    fn comparison(&mut self) -> Result<Cond, CondParseError> {
        let lhs = self.operand()?;
        // Bare `true`/`false` need no comparator.
        if let Operand::Attr(name) = &lhs {
            if name == "true" && !matches!(self.peek(), Some(Tok::Op(_))) {
                return Ok(Cond::True);
            }
            if name == "false" && !matches!(self.peek(), Some(Tok::Op(_))) {
                return Ok(Cond::False);
            }
        }
        let op = match self.bump() {
            Some(Tok::Op(op)) => op,
            other => {
                return Err(CondParseError(format!(
                    "expected comparison operator, found {other:?}"
                )))
            }
        };
        let rhs = self.operand()?;
        Ok(Cond::Cmp { lhs, op, rhs })
    }

    fn operand(&mut self) -> Result<Operand, CondParseError> {
        match self.bump() {
            Some(Tok::Ident(name)) => Ok(Operand::Attr(name)),
            Some(Tok::Str(s)) => Ok(Operand::Str(s)),
            Some(Tok::Num(n)) => Ok(Operand::Num(n)),
            other => Err(CondParseError(format!(
                "expected attribute, string, or number, found {other:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env() -> ActionEnv {
        action_env([
            ("app_domain", "ace"),
            ("service", "ptz_camera"),
            ("cmd", "ptzMove"),
            ("zoom", "8"),
            ("room", "hawk"),
        ])
    }

    #[test]
    fn equality() {
        let c = parse_cond("app_domain == \"ace\"").unwrap();
        assert!(c.eval(&env()));
        let c = parse_cond("app_domain == \"oxygen\"").unwrap();
        assert!(!c.eval(&env()));
    }

    #[test]
    fn numeric_ordering() {
        assert!(parse_cond("zoom <= 10").unwrap().eval(&env()));
        assert!(!parse_cond("zoom > 10").unwrap().eval(&env()));
        // "8" < "10" numerically even though lexicographically "8" > "10".
        assert!(parse_cond("zoom < 10").unwrap().eval(&env()));
    }

    #[test]
    fn lexicographic_when_not_numeric() {
        assert!(parse_cond("room < \"zebra\"").unwrap().eval(&env()));
        assert!(!parse_cond("room > \"zebra\"").unwrap().eval(&env()));
    }

    #[test]
    fn boolean_connectives() {
        let c =
            parse_cond("app_domain == \"ace\" && (cmd == \"ptzMove\" || cmd == \"zoom\")").unwrap();
        assert!(c.eval(&env()));
        let c = parse_cond("!(cmd == \"shutdown\")").unwrap();
        assert!(c.eval(&env()));
    }

    #[test]
    fn missing_attribute_is_empty_string() {
        assert!(parse_cond("ghost == \"\"").unwrap().eval(&env()));
        assert!(!parse_cond("ghost == \"x\"").unwrap().eval(&env()));
    }

    #[test]
    fn constants() {
        assert!(parse_cond("true").unwrap().eval(&env()));
        assert!(!parse_cond("false").unwrap().eval(&env()));
        assert!(parse_cond("false || true").unwrap().eval(&env()));
    }

    #[test]
    fn attr_named_true_still_comparable() {
        let mut e = env();
        e.insert("true".into(), "yes".into());
        assert!(parse_cond("true == \"yes\"").unwrap().eval(&e));
    }

    #[test]
    fn precedence_and_binds_tighter() {
        // a || b && c  ==  a || (b && c)
        let c = parse_cond("true || false && false").unwrap();
        assert!(c.eval(&ActionEnv::new()));
    }

    #[test]
    fn parse_errors() {
        assert!(parse_cond("==").is_err());
        assert!(parse_cond("a ==").is_err());
        assert!(parse_cond("(a == 1").is_err());
        assert!(parse_cond("a == 1 extra").is_err());
        assert!(parse_cond("\"unterminated").is_err());
        assert!(parse_cond("a @ 1").is_err());
    }

    #[test]
    fn string_vs_number_literals() {
        let e = action_env([("n", "42")]);
        assert!(parse_cond("n == 42").unwrap().eval(&e));
        assert!(parse_cond("n == \"42\"").unwrap().eval(&e));
        assert!(parse_cond("n >= 41.5").unwrap().eval(&e));
    }
}
