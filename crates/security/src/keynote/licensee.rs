//! Licensee expressions: to whom an assertion delegates authority.
//!
//! RFC 2704 lets the `licensees:` field combine principals with `&&`, `||`,
//! and k-of-n thresholds.  ACE credentials use all three (e.g. a projector
//! command may require the room owner *and* an administrator).
//!
//! Wire syntax:
//!
//! ```text
//! licensees: "rsa:…" || ("rsa:…" && "rsa:…") || 2-of("a", "b", "c")
//! ```

use std::fmt;

/// A licensee expression tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Licensees {
    /// A single principal (public-key string or symbolic name).
    Principal(String),
    /// All sub-expressions must hold.
    And(Vec<Licensees>),
    /// At least one sub-expression must hold.
    Or(Vec<Licensees>),
    /// At least `k` of the sub-expressions must hold.
    Threshold(usize, Vec<Licensees>),
}

impl Licensees {
    /// Evaluate with `supports(principal)` deciding whether a principal's
    /// authority is established (directly a requester, or reachable through
    /// further delegation — the engine supplies the recursion).
    pub fn satisfied(&self, supports: &mut dyn FnMut(&str) -> bool) -> bool {
        match self {
            Licensees::Principal(p) => supports(p),
            Licensees::And(subs) => subs.iter().all(|s| s.satisfied(supports)),
            Licensees::Or(subs) => subs.iter().any(|s| s.satisfied(supports)),
            Licensees::Threshold(k, subs) => {
                let mut hits = 0;
                for s in subs {
                    if s.satisfied(supports) {
                        hits += 1;
                        if hits >= *k {
                            return true;
                        }
                    }
                }
                false
            }
        }
    }

    /// Every principal mentioned anywhere in the expression.
    pub fn principals(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect(&mut out);
        out
    }

    fn collect<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Licensees::Principal(p) => out.push(p),
            Licensees::And(subs) | Licensees::Or(subs) | Licensees::Threshold(_, subs) => {
                for s in subs {
                    s.collect(out);
                }
            }
        }
    }
}

impl fmt::Display for Licensees {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Licensees::Principal(p) => write!(f, "\"{p}\""),
            Licensees::And(subs) => write_joined(f, subs, " && "),
            Licensees::Or(subs) => write_joined(f, subs, " || "),
            Licensees::Threshold(k, subs) => {
                write!(f, "{k}-of(")?;
                for (i, s) in subs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{s}")?;
                }
                write!(f, ")")
            }
        }
    }
}

fn write_joined(f: &mut fmt::Formatter<'_>, subs: &[Licensees], sep: &str) -> fmt::Result {
    write!(f, "(")?;
    for (i, s) in subs.iter().enumerate() {
        if i > 0 {
            f.write_str(sep)?;
        }
        write!(f, "{s}")?;
    }
    write!(f, ")")
}

/// Parse failure for a licensee expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LicenseeParseError(pub String);

impl fmt::Display for LicenseeParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "licensees parse error: {}", self.0)
    }
}
impl std::error::Error for LicenseeParseError {}

/// Parse a licensee expression.
pub fn parse_licensees(src: &str) -> Result<Licensees, LicenseeParseError> {
    let mut p = LP { src, i: 0 };
    let expr = p.or_expr()?;
    p.skip_ws();
    if p.i != src.len() {
        return Err(LicenseeParseError(format!(
            "trailing input at byte {}",
            p.i
        )));
    }
    Ok(expr)
}

struct LP<'a> {
    src: &'a str,
    i: usize,
}

impl<'a> LP<'a> {
    fn skip_ws(&mut self) {
        let b = self.src.as_bytes();
        while self.i < b.len() && (b[self.i] as char).is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        self.skip_ws();
        if self.src[self.i..].starts_with(lit) {
            self.i += lit.len();
            true
        } else {
            false
        }
    }

    fn or_expr(&mut self) -> Result<Licensees, LicenseeParseError> {
        let mut parts = vec![self.and_expr()?];
        while self.eat("||") {
            parts.push(self.and_expr()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Licensees::Or(parts)
        })
    }

    fn and_expr(&mut self) -> Result<Licensees, LicenseeParseError> {
        let mut parts = vec![self.atom()?];
        while self.eat("&&") {
            parts.push(self.atom()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("non-empty")
        } else {
            Licensees::And(parts)
        })
    }

    fn atom(&mut self) -> Result<Licensees, LicenseeParseError> {
        self.skip_ws();
        let b = self.src.as_bytes();
        if self.i >= b.len() {
            return Err(LicenseeParseError("unexpected end of input".into()));
        }
        match b[self.i] {
            b'(' => {
                self.i += 1;
                let inner = self.or_expr()?;
                if !self.eat(")") {
                    return Err(LicenseeParseError("expected `)`".into()));
                }
                Ok(inner)
            }
            b'"' => {
                let start = self.i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'"' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(LicenseeParseError("unterminated principal string".into()));
                }
                let p = self.src[start..j].to_string();
                self.i = j + 1;
                Ok(Licensees::Principal(p))
            }
            c if c.is_ascii_digit() => {
                // k-of(...)
                let start = self.i;
                let mut j = self.i;
                while j < b.len() && b[j].is_ascii_digit() {
                    j += 1;
                }
                let k: usize = self.src[start..j]
                    .parse()
                    .map_err(|_| LicenseeParseError("bad threshold count".into()))?;
                self.i = j;
                if !self.eat("-of") {
                    return Err(LicenseeParseError("expected `-of` after count".into()));
                }
                if !self.eat("(") {
                    return Err(LicenseeParseError("expected `(` after `-of`".into()));
                }
                let mut subs = vec![self.or_expr()?];
                while self.eat(",") {
                    subs.push(self.or_expr()?);
                }
                if !self.eat(")") {
                    return Err(LicenseeParseError("expected `)` closing threshold".into()));
                }
                if k == 0 || k > subs.len() {
                    return Err(LicenseeParseError(format!(
                        "threshold {k} out of range for {} licensees",
                        subs.len()
                    )));
                }
                Ok(Licensees::Threshold(k, subs))
            }
            other => Err(LicenseeParseError(format!(
                "unexpected character `{}`",
                other as char
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn supports_of<'a>(granted: &'a [&'a str]) -> impl FnMut(&str) -> bool + 'a {
        move |p: &str| granted.contains(&p)
    }

    #[test]
    fn single_principal() {
        let l = parse_licensees("\"alice\"").unwrap();
        assert!(l.satisfied(&mut supports_of(&["alice"])));
        assert!(!l.satisfied(&mut supports_of(&["bob"])));
    }

    #[test]
    fn or_expression() {
        let l = parse_licensees("\"a\" || \"b\"").unwrap();
        assert!(l.satisfied(&mut supports_of(&["b"])));
        assert!(!l.satisfied(&mut supports_of(&["c"])));
    }

    #[test]
    fn and_expression() {
        let l = parse_licensees("\"a\" && \"b\"").unwrap();
        assert!(l.satisfied(&mut supports_of(&["a", "b"])));
        assert!(!l.satisfied(&mut supports_of(&["a"])));
    }

    #[test]
    fn nested_parens() {
        let l = parse_licensees("\"root\" || (\"a\" && \"b\")").unwrap();
        assert!(l.satisfied(&mut supports_of(&["root"])));
        assert!(l.satisfied(&mut supports_of(&["a", "b"])));
        assert!(!l.satisfied(&mut supports_of(&["a"])));
    }

    #[test]
    fn threshold() {
        let l = parse_licensees("2-of(\"a\", \"b\", \"c\")").unwrap();
        assert!(l.satisfied(&mut supports_of(&["a", "c"])));
        assert!(!l.satisfied(&mut supports_of(&["a"])));
    }

    #[test]
    fn threshold_bounds_checked() {
        assert!(parse_licensees("0-of(\"a\")").is_err());
        assert!(parse_licensees("3-of(\"a\", \"b\")").is_err());
    }

    #[test]
    fn display_reparses() {
        for src in [
            "\"a\"",
            "(\"a\" && \"b\")",
            "(\"a\" || (\"b\" && \"c\"))",
            "2-of(\"a\", \"b\", \"c\")",
        ] {
            let l = parse_licensees(src).unwrap();
            let l2 = parse_licensees(&l.to_string()).unwrap();
            assert_eq!(l, l2);
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_licensees("").is_err());
        assert!(parse_licensees("\"a\" &&").is_err());
        assert!(parse_licensees("(\"a\"").is_err());
        assert!(parse_licensees("\"a\" extra").is_err());
        assert!(parse_licensees("\"unterminated").is_err());
    }

    #[test]
    fn principals_collects_all() {
        let l = parse_licensees("\"a\" || 2-of(\"b\", \"c\", \"d\")").unwrap();
        assert_eq!(l.principals(), vec!["a", "b", "c", "d"]);
    }

    #[test]
    fn and_parses_tighter_than_or() {
        let l = parse_licensees("\"a\" || \"b\" && \"c\"").unwrap();
        // a || (b && c): satisfied by {a} alone.
        assert!(l.satisfied(&mut supports_of(&["a"])));
        assert!(!l.satisfied(&mut supports_of(&["b"])));
        assert!(l.satisfied(&mut supports_of(&["b", "c"])));
    }
}
