//! SSL-like session security: key agreement plus an authenticated stream
//! cipher.
//!
//! "All ACE communications from one service to another is encrypted using
//! SSL … at the socket level" (§3.1).  The substitution (DESIGN.md) is a
//! Diffie–Hellman exchange over a 64-bit prime field and a keyed-keystream
//! cipher with a 128-bit MAC.  Frames are genuinely transformed byte-for-
//! byte so the per-byte CPU cost of the secure channel shows up in the
//! benchmarks, and MAC verification genuinely rejects tampering — but none
//! of this is cryptographically strong and it must never be used as such.

use crate::hash::{fnv64_keyed, Fnv64Stream};
use rand::Rng;

/// Largest 64-bit prime; the DH group modulus.
const DH_PRIME: u64 = 0xFFFF_FFFF_FFFF_FFC5;
/// Group generator.
const DH_G: u64 = 5;

/// One side of a Diffie–Hellman exchange.
#[derive(Debug, Clone, Copy)]
pub struct DhLocal {
    secret: u64,
    public: u64,
}

impl DhLocal {
    /// Generate an ephemeral exponent and its public value.
    pub fn generate(rng: &mut impl Rng) -> DhLocal {
        let secret = rng.gen_range(2..DH_PRIME - 2);
        DhLocal {
            secret,
            public: crate::numtheory::modpow(DH_G, secret, DH_PRIME),
        }
    }

    /// The value sent to the peer in the handshake.
    pub fn public(&self) -> u64 {
        self.public
    }

    /// Combine with the peer's public value into the shared session key.
    pub fn agree(&self, peer_public: u64) -> SessionKey {
        let shared = crate::numtheory::modpow(peer_public, self.secret, DH_PRIME);
        // Derive independent cipher and MAC keys from the shared secret.
        SessionKey::from_seed(shared)
    }
}

/// Derived keys of one session.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionKey {
    cipher: u64,
    mac: u64,
}

impl SessionKey {
    /// Deterministic key for tests and loopback channels.
    pub fn from_seed(seed: u64) -> SessionKey {
        SessionKey {
            cipher: fnv64_keyed(0x5e55_10e5, &seed.to_le_bytes()),
            mac: fnv64_keyed(0x6d61_c6b3, &seed.to_le_bytes()),
        }
    }

    /// Derive a sub-key for a labelled purpose (e.g. each direction of a
    /// duplex link gets its own key, preventing reflection).
    pub fn derive(&self, label: u64) -> SessionKey {
        SessionKey::from_seed(fnv64_keyed(
            self.cipher ^ label.rotate_left(17),
            &self.mac.to_le_bytes(),
        ))
    }

    /// A keyed tag over `data` under this key's MAC half — the primitive
    /// behind resumption proofs (possession of the key without revealing
    /// it).
    pub fn mac_tag(&self, data: &[u8]) -> u64 {
        fnv64_keyed(self.mac, data)
    }
}

/// An established secure channel: seal/open frames with encryption + MAC.
///
/// Each frame carries an explicit sequence number in the keystream seed, so
/// replayed or reordered ciphertexts fail to authenticate.
#[derive(Debug)]
pub struct SecureChannel {
    key: SessionKey,
    send_seq: u64,
    recv_seq: u64,
}

/// Why a frame failed to open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SealError {
    /// Frame shorter than the MAC trailer.
    Truncated,
    /// MAC mismatch: corrupted, tampered, replayed, or wrong key.
    BadMac,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SealError::Truncated => write!(f, "frame truncated"),
            SealError::BadMac => write!(f, "MAC verification failed"),
        }
    }
}
impl std::error::Error for SealError {}

impl SecureChannel {
    /// Channel from an agreed session key.
    pub fn new(key: SessionKey) -> SecureChannel {
        SecureChannel {
            key,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Encrypt and authenticate one outgoing frame.  Allocates a fresh
    /// buffer; the wire hot path hands its own buffer to
    /// [`SecureChannel::seal_in_place`] instead.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + 16);
        out.extend_from_slice(plaintext);
        self.seal_in_place(&mut out);
        out
    }

    /// Encrypt and authenticate `buf` in place: the plaintext bytes are
    /// XORed with the keystream and the 16-byte MAC trailer is appended.
    /// No allocation beyond the trailer growth (amortised to zero when the
    /// caller reserves 16 spare bytes).
    pub fn seal_in_place(&mut self, buf: &mut Vec<u8>) {
        let seq = self.send_seq;
        self.send_seq += 1;
        keystream_xor(self.key.cipher, seq, buf);
        let mac = frame_mac(self.key.mac, seq, buf);
        buf.extend_from_slice(&mac.to_le_bytes());
    }

    /// Verify and decrypt one incoming frame into a fresh buffer; the
    /// wire hot path uses [`SecureChannel::open_in_place`] on the frame it
    /// already owns.
    pub fn open(&mut self, frame: &[u8]) -> Result<Vec<u8>, SealError> {
        let mut buf = frame.to_vec();
        self.open_in_place(&mut buf)?;
        Ok(buf)
    }

    /// Verify and decrypt `frame` in place: on success the MAC trailer is
    /// truncated off and the remaining bytes are the plaintext — zero
    /// copies, zero allocations.  On failure the frame is left untouched
    /// and the receive sequence does not advance.
    pub fn open_in_place(&mut self, frame: &mut Vec<u8>) -> Result<(), SealError> {
        if frame.len() < 16 {
            return Err(SealError::Truncated);
        }
        let ct_len = frame.len() - 16;
        let (ct, mac_bytes) = frame.split_at(ct_len);
        let mac = u128::from_le_bytes(mac_bytes.try_into().expect("16-byte trailer"));
        let seq = self.recv_seq;
        if frame_mac(self.key.mac, seq, ct) != mac {
            return Err(SealError::BadMac);
        }
        self.recv_seq += 1;
        frame.truncate(ct_len);
        keystream_xor(self.key.cipher, seq, frame);
        Ok(())
    }
}

/// XOR `buf` with a xorshift64* keystream seeded from `(key, seq)`.
fn keystream_xor(key: u64, seq: u64, buf: &mut [u8]) {
    let mut state = key ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
    let mut chunk = [0u8; 8];
    for block in buf.chunks_mut(8) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        let ks = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
        chunk[..].copy_from_slice(&ks.to_le_bytes());
        for (b, k) in block.iter_mut().zip(chunk.iter()) {
            *b ^= k;
        }
    }
}

/// 128-bit frame MAC over `key_le || seq_le || ct`, streamed through two
/// independently-keyed FNV lanes (the keys match [`crate::hash::fnv128`],
/// so the wire format is identical to hashing the concatenation — without
/// materialising it).
fn frame_mac(key: u64, seq: u64, ct: &[u8]) -> u128 {
    let mut lo = Fnv64Stream::keyed(0x9e3779b97f4a7c15);
    let mut hi = Fnv64Stream::keyed(0xc2b2ae3d27d4eb4f);
    for lane in [&mut lo, &mut hi] {
        lane.update(&key.to_le_bytes());
        lane.update(&seq.to_le_bytes());
        lane.update(ct);
    }
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

#[cfg(test)]
mod tests {
    use super::*;

    fn channel_pair() -> (SecureChannel, SecureChannel) {
        let key = SessionKey::from_seed(42);
        (SecureChannel::new(key), SecureChannel::new(key))
    }

    #[test]
    fn seal_open_roundtrip() {
        let (mut a, mut b) = channel_pair();
        let frame = a.seal(b"ptzMove x=1 y=2;");
        assert_ne!(&frame[..16], b"ptzMove x=1 y=2;");
        assert_eq!(b.open(&frame).unwrap(), b"ptzMove x=1 y=2;");
    }

    #[test]
    fn sequence_of_frames() {
        let (mut a, mut b) = channel_pair();
        for i in 0..20u8 {
            let frame = a.seal(&[i; 5]);
            assert_eq!(b.open(&frame).unwrap(), [i; 5]);
        }
    }

    #[test]
    fn tampering_detected() {
        let (mut a, mut b) = channel_pair();
        let mut frame = a.seal(b"secret");
        frame[0] ^= 0xff;
        assert_eq!(b.open(&frame), Err(SealError::BadMac));
    }

    #[test]
    fn replay_detected() {
        let (mut a, mut b) = channel_pair();
        let frame = a.seal(b"once");
        assert!(b.open(&frame).is_ok());
        // Same ciphertext again: the receiver's sequence advanced.
        assert_eq!(b.open(&frame), Err(SealError::BadMac));
    }

    #[test]
    fn wrong_key_rejected() {
        let mut a = SecureChannel::new(SessionKey::from_seed(1));
        let mut b = SecureChannel::new(SessionKey::from_seed(2));
        let frame = a.seal(b"x");
        assert_eq!(b.open(&frame), Err(SealError::BadMac));
    }

    #[test]
    fn truncated_rejected() {
        let (mut a, mut b) = channel_pair();
        let frame = a.seal(b"x");
        assert_eq!(b.open(&frame[..10]), Err(SealError::Truncated));
    }

    #[test]
    fn dh_agreement_matches() {
        let mut rng = rand::thread_rng();
        let alice = DhLocal::generate(&mut rng);
        let bob = DhLocal::generate(&mut rng);
        assert_eq!(alice.agree(bob.public()), bob.agree(alice.public()));
    }

    #[test]
    fn dh_differs_across_sessions() {
        let mut rng = rand::thread_rng();
        let a1 = DhLocal::generate(&mut rng);
        let b1 = DhLocal::generate(&mut rng);
        let a2 = DhLocal::generate(&mut rng);
        let b2 = DhLocal::generate(&mut rng);
        assert_ne!(a1.agree(b1.public()), a2.agree(b2.public()));
    }

    #[test]
    fn empty_frame_roundtrip() {
        let (mut a, mut b) = channel_pair();
        let frame = a.seal(b"");
        assert_eq!(b.open(&frame).unwrap(), b"");
    }

    #[test]
    fn in_place_apis_match_allocating_ones() {
        let (mut a, mut b) = channel_pair();
        let (mut a2, mut b2) = channel_pair();
        let allocating = a.seal(b"zero copy payload");
        let mut in_place = b"zero copy payload".to_vec();
        a2.seal_in_place(&mut in_place);
        assert_eq!(allocating, in_place, "same wire bytes either way");
        assert_eq!(b.open(&allocating).unwrap(), b"zero copy payload");
        b2.open_in_place(&mut in_place).unwrap();
        assert_eq!(in_place, b"zero copy payload");
    }

    #[test]
    fn failed_open_in_place_leaves_frame_and_sequence_intact() {
        let (mut a, mut b) = channel_pair();
        let mut frame = a.seal(b"first");
        frame[0] ^= 0xff;
        let tampered = frame.clone();
        assert_eq!(b.open_in_place(&mut frame), Err(SealError::BadMac));
        assert_eq!(frame, tampered, "failed open must not mutate the frame");
        // The sequence did not advance: the untampered original still opens.
        frame[0] ^= 0xff;
        b.open_in_place(&mut frame).unwrap();
        assert_eq!(frame, b"first");
    }

    #[test]
    fn streamed_mac_matches_concatenated_fnv128() {
        // The MAC wire format is pinned: two FNV lanes over
        // key_le || seq_le || ct, exactly as fnv128 over the concatenation.
        let (key, seq, ct) = (0xdead_beefu64, 7u64, b"ciphertext".as_slice());
        let mut material = Vec::new();
        material.extend_from_slice(&key.to_le_bytes());
        material.extend_from_slice(&seq.to_le_bytes());
        material.extend_from_slice(ct);
        assert_eq!(frame_mac(key, seq, ct), crate::hash::fnv128(&material));
    }
}
