//! # ace-security — the ACE security and authentication substrate
//!
//! Implements §3 of the paper:
//!
//! * **Session security** ([`cipher`]) — the SSL substitution: Diffie–Hellman
//!   key agreement plus an authenticated keystream cipher.  Every ACE socket
//!   frame is sealed/opened through a [`SecureChannel`].
//! * **Identities** ([`keys`]) — textbook RSA key pairs over 64-bit moduli;
//!   principals in assertions are public-key strings.
//! * **Trust management** ([`keynote`]) — a from-scratch KeyNote engine
//!   (RFC 2704 subset): policy/credential assertions, licensee expressions,
//!   the condition language over action attribute sets, delegation-chain
//!   compliance checking, and a verification cache.
//!
//! **This is simulation-grade cryptography** (see DESIGN.md substitutions):
//! the primitives are mathematically real — signatures genuinely verify,
//! MACs genuinely reject tampering, key agreement genuinely agrees — but
//! parameter sizes and hash functions are toy.  Never reuse outside the
//! simulation.
//!
//! ```
//! use ace_security::keynote::{KeyNoteEngine, Assertion, Licensees, action_env, POLICY};
//! use ace_security::keys::KeyPair;
//!
//! let mut rng = rand::thread_rng();
//! let admin = KeyPair::generate(&mut rng);
//! let user = KeyPair::generate(&mut rng);
//!
//! let mut engine = KeyNoteEngine::new();
//! // Local policy: the admin key may do anything.
//! engine.add_policy(Assertion::new(
//!     POLICY, Licensees::Principal(admin.principal()), "true").unwrap()).unwrap();
//! // The admin delegates camera moves to the user.
//! engine.add_credential(Assertion::new(
//!     admin.principal(),
//!     Licensees::Principal(user.principal()),
//!     "cmd == \"ptzMove\"").unwrap().sign(&admin).unwrap()).unwrap();
//!
//! let env = action_env([("cmd", "ptzMove")]);
//! assert!(engine.query(&env, &[&user.principal()]));
//! ```

pub mod cipher;
pub mod hash;
pub mod keynote;
pub mod keys;
pub mod numtheory;
pub mod ticket;

pub use cipher::{DhLocal, SealError, SecureChannel, SessionKey};
pub use keynote::{
    action_env, ActionEnv, Assertion, CachingEngine, Cond, KeyNoteEngine, KeyNoteError, Licensees,
    POLICY,
};
pub use keys::{KeyPair, PublicKey, Signature};
pub use ticket::{resume_proof, ResumptionTicket};
