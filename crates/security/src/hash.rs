//! Non-cryptographic hashing used by the simulated crypto layer.
//!
//! FNV-1a in 64- and 128-bit widths.  These are *not* collision-resistant —
//! the whole security crate is a behavioural stand-in for SSL/RSA (see
//! DESIGN.md substitutions) — but they are real, deterministic functions the
//! cipher, MAC, and signature layers build on, so tampering and key
//! mismatches are actually detected in tests and experiments.

/// FNV-1a, 64-bit.
pub fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// FNV-1a with a seed mixed in first (keyed hash for MACs).
pub fn fnv64_keyed(key: u64, data: &[u8]) -> u64 {
    let mut h = Fnv64Stream::keyed(key);
    h.update(data);
    h.finish()
}

/// Streaming form of [`fnv64_keyed`]: feed input in pieces without
/// concatenating them into a buffer first.  Byte-for-byte identical to
/// hashing the concatenation, so the wire MAC format is unchanged while
/// the per-frame scratch allocation disappears.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64Stream {
    h: u64,
}

impl Fnv64Stream {
    /// Start a keyed stream (same seed-mixing as [`fnv64_keyed`]).
    pub fn keyed(key: u64) -> Fnv64Stream {
        let h = (0xcbf29ce484222325u64 ^ key).wrapping_mul(0x100000001b3);
        Fnv64Stream { h }
    }

    /// Absorb more input.
    pub fn update(&mut self, data: &[u8]) {
        let mut h = self.h;
        for &b in data {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        self.h = h;
    }

    /// Final avalanche (xorshift-multiply) so near-equal inputs diverge.
    pub fn finish(self) -> u64 {
        let mut h = self.h;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51afd7ed558ccd);
        h ^= h >> 33;
        h
    }
}

/// 128-bit digest as two independently-keyed 64-bit lanes.
pub fn fnv128(data: &[u8]) -> u128 {
    let lo = fnv64_keyed(0x9e3779b97f4a7c15, data);
    let hi = fnv64_keyed(0xc2b2ae3d27d4eb4f, data);
    ((hi as u128) << 64) | lo as u128
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
/// Unlike FNV this detects *all* single-bit and burst errors up to 32 bits,
/// which is why the persistent store's write-ahead log frames records with
/// it: a torn or flipped log byte must never replay as valid data.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0xEDB88320
                } else {
                    crc >> 1
                };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc: u32 = !0;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fnv64(b"abc"), fnv64(b"abc"));
        assert_eq!(fnv128(b"abc"), fnv128(b"abc"));
    }

    #[test]
    fn input_sensitive() {
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
        assert_ne!(fnv64(b"abc"), fnv64(b"ab"));
        assert_ne!(fnv128(b"abc"), fnv128(b"abd"));
    }

    #[test]
    fn key_sensitive() {
        assert_ne!(fnv64_keyed(1, b"abc"), fnv64_keyed(2, b"abc"));
    }

    #[test]
    fn streaming_matches_one_shot() {
        let parts: [&[u8]; 4] = [b"key-le", b"", b"seq-le", b"ciphertext bytes \xff\x00"];
        let concat: Vec<u8> = parts.concat();
        for key in [0u64, 1, 0x9e3779b97f4a7c15] {
            let mut s = Fnv64Stream::keyed(key);
            for part in parts {
                s.update(part);
            }
            assert_eq!(s.finish(), fnv64_keyed(key, &concat));
        }
    }

    #[test]
    fn empty_input_ok() {
        // Just must not panic and be stable.
        assert_eq!(fnv64(b""), fnv64(b""));
    }

    #[test]
    fn crc32_check_value() {
        // The standard CRC-32/ISO-HDLC check value.
        assert_eq!(crc32(b"123456789"), 0xCBF43926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_detects_every_single_bit_flip() {
        let data = b"write-ahead log record payload".to_vec();
        let reference = crc32(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut mutated = data.clone();
                mutated[byte] ^= 1 << bit;
                assert_ne!(
                    crc32(&mutated),
                    reference,
                    "flip at {byte}:{bit} undetected"
                );
            }
        }
    }
}
