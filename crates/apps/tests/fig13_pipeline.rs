//! The complete Fig. 13 pipeline: video capture → converter (raw→RLE) →
//! file storage in the replicated persistent store — and the recording is
//! still readable after a store replica dies.

use ace_apps::FileStorage;
use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_media::{codec, Converter, Format, VideoCapture};
use ace_security::keys::KeyPair;
use ace_store::spawn_store_cluster;
use std::time::Duration;

#[test]
fn capture_convert_store_retrieve() {
    let net = SimNet::new();
    for h in ["core", "av", "s1", "s2", "s3"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let cluster =
        spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], Duration::from_millis(100)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());

    // The Fig. 13 chain.
    let storage = Daemon::spawn(
        &net,
        fw.service_config(
            "filestorage",
            "Service.FileStorage",
            "machineroom",
            "core",
            6000,
        ),
        Box::new(FileStorage::new(cluster.addrs.clone())),
    )
    .unwrap();
    let converter = Daemon::spawn(
        &net,
        fw.service_config("vconv", "Service.Converter", "hawk", "av", 6001),
        Box::new(Converter::new(Format::Raw, Format::Rle)),
    )
    .unwrap();
    let capture = Daemon::spawn(
        &net,
        fw.service_config("vcap", "Service.VideoCapture", "hawk", "av", 6002),
        Box::new(VideoCapture::new(64, 48)),
    )
    .unwrap();

    let mut conv =
        ServiceClient::connect(&net, &"core".into(), converter.addr().clone(), &me).unwrap();
    conv.call_ok(
        &CmdLine::new("addSink")
            .arg("host", storage.addr().host.as_str())
            .arg("port", storage.addr().port),
    )
    .unwrap();
    let mut cap =
        ServiceClient::connect(&net, &"core".into(), capture.addr().clone(), &me).unwrap();
    cap.call_ok(
        &CmdLine::new("addSink")
            .arg("host", converter.addr().host.as_str())
            .arg("port", converter.addr().port),
    )
    .unwrap();

    // Roll the camera.
    let reply = cap
        .call(&CmdLine::new("captureFrame").arg("count", 10))
        .unwrap();
    assert_eq!(reply.get_int("delivered"), Some(10));

    // The recording exists, compressed.
    let mut st = ServiceClient::connect(&net, &"core".into(), storage.addr().clone(), &me).unwrap();
    let listed = st
        .call(&CmdLine::new("mediaList").arg("stream", "video"))
        .unwrap();
    assert_eq!(listed.get_int("count"), Some(10));
    let stats = st.call(&CmdLine::new("storageStats")).unwrap();
    assert_eq!(stats.get_int("stored"), Some(10));

    // Fetch frame 3 and decompress: exactly the camera's rendering size.
    let frame = st
        .call(
            &CmdLine::new("mediaGet")
                .arg("stream", "video")
                .arg("seq", 3),
        )
        .unwrap();
    let rle = ace_core::protocol::hex_decode(frame.get_text("data").unwrap()).unwrap();
    assert!(
        rle.len() < 64 * 48 / 4,
        "stored compressed ({} bytes)",
        rle.len()
    );
    let raw = codec::rle_decode(&rle).unwrap();
    assert_eq!(raw.len(), 64 * 48);

    // A replica dies; the recording survives (the point of storing media in
    // the redundant store).
    net.kill_host(&"s1".into());
    let frame = st
        .call(
            &CmdLine::new("mediaGet")
                .arg("stream", "video")
                .arg("seq", 7),
        )
        .unwrap();
    assert!(frame.get_text("data").is_some());

    capture.shutdown();
    converter.shutdown();
    storage.shutdown();
    for (handle, _) in cluster.replicas {
        if handle.addr().host.as_str() == "s1" {
            handle.crash();
        } else {
            handle.shutdown();
        }
    }
    fw.shutdown();
}
