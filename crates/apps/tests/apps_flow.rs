//! Integration tests of the application layer: the restart watcher
//! (crash → lease expiry → relaunch), robust state recovery through the
//! persistent store (E19), and the O-Phone call path over lossy datagrams.

use ace_apps::{wire_watcher, AppClass, OPhone, RobustCounter, WatchSpec, Watcher};
use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_security::keys::KeyPair;
use ace_store::spawn_store_cluster;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

/// Crash → lease expiry → `serviceExpired` → watcher relaunch, with the
/// robust service recovering its state from the store.
#[test]
fn watcher_restarts_robust_service_with_state() {
    let net = SimNet::new();
    for h in ["core", "app", "s1", "s2", "s3"] {
        net.add_host(h);
    }
    // Short leases so expiry is quick.
    let fw = bootstrap(&net, "core", Duration::from_millis(400)).unwrap();
    let cluster =
        spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], Duration::from_millis(100)).unwrap();
    let me = keypair();

    let replicas = cluster.addrs.clone();
    let spawn_counter = {
        let fw_cfg = fw
            .service_config("robustcounter", "Service.Counter", "hawk", "app", 5900)
            .with_lease_renew(Duration::from_millis(100));
        let replicas = replicas.clone();
        move |net: &SimNet| {
            Daemon::spawn(
                net,
                fw_cfg.clone(),
                Box::new(RobustCounter::new(replicas.clone())),
            )
        }
    };

    // First incarnation.
    let first = spawn_counter(&net).unwrap();

    // The watcher.
    let watcher = Daemon::spawn(
        &net,
        fw.service_config("watcher", "Service.Watcher", "machineroom", "core", 5901),
        Box::new(Watcher::new(vec![WatchSpec::new(
            "robustcounter",
            AppClass::Robust,
            Box::new(spawn_counter),
        )])),
    )
    .unwrap();
    wire_watcher(&net, &watcher, &fw.asd_addr, &me).unwrap();

    // Drive some state into the counter.
    let addr = first.addr().clone();
    let mut client = ServiceClient::connect(&net, &"core".into(), addr.clone(), &me).unwrap();
    for _ in 0..7 {
        client.call_ok(&CmdLine::new("increment")).unwrap();
    }
    let r = client.call(&CmdLine::new("read")).unwrap();
    assert_eq!(r.get_int("value"), Some(7));
    assert_eq!(r.get_bool("recovered"), Some(false));
    drop(client);

    // Crash it (no deregistration) and wait for the watcher to bring it
    // back — lease expiry fires `serviceExpired` at the ASD.
    first.crash();
    let deadline = std::time::Instant::now() + Duration::from_secs(15);
    let mut reply = None;
    while std::time::Instant::now() < deadline {
        if let Ok(mut c) = ServiceClient::connect(&net, &"core".into(), addr.clone(), &me) {
            if let Ok(r) = c.call(&CmdLine::new("read")) {
                reply = Some(r);
                break;
            }
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    let reply = reply.expect("relaunched service never answered");
    assert_eq!(
        reply.get_int("value"),
        Some(7),
        "state recovered from the store"
    );
    assert_eq!(reply.get_bool("recovered"), Some(true));

    let mut w = ServiceClient::connect(&net, &"core".into(), watcher.addr().clone(), &me).unwrap();
    let stats = w.call(&CmdLine::new("watcherStats")).unwrap();
    assert_eq!(stats.get_int("restarts"), Some(1));

    watcher.shutdown();
    cluster.shutdown();
    fw.shutdown();
}

#[test]
fn temporary_apps_are_not_relaunched() {
    let net = SimNet::new();
    for h in ["core", "app"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_millis(300)).unwrap();
    let me = keypair();

    struct Noop;
    impl ServiceBehavior for Noop {
        fn semantics(&self) -> Semantics {
            Semantics::new()
        }
        fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
            Reply::ok()
        }
    }
    let cfg = fw
        .service_config("scratchpad", "Service.Temporary", "hawk", "app", 5910)
        .with_lease_renew(Duration::from_millis(100));
    let temp = Daemon::spawn(&net, cfg.clone(), Box::new(Noop)).unwrap();

    let watcher = Daemon::spawn(
        &net,
        fw.service_config("watcher", "Service.Watcher", "machineroom", "core", 5901),
        Box::new(Watcher::new(vec![WatchSpec::new(
            "scratchpad",
            AppClass::Temporary,
            Box::new(move |net: &SimNet| Daemon::spawn(net, cfg.clone(), Box::new(Noop))),
        )])),
    )
    .unwrap();
    wire_watcher(&net, &watcher, &fw.asd_addr, &me).unwrap();

    temp.crash();
    // Give expiry + notification time to happen.
    std::thread::sleep(Duration::from_millis(900));
    let mut w = ServiceClient::connect(&net, &"core".into(), watcher.addr().clone(), &me).unwrap();
    let stats = w.call(&CmdLine::new("watcherStats")).unwrap();
    assert_eq!(stats.get_int("restarts"), Some(0));
    assert!(stats.get_int("ignored").unwrap() >= 1);

    watcher.shutdown();
    fw.shutdown();
}

#[test]
fn ophone_full_duplex_call() {
    let net = SimNet::new();
    for h in ["core", "office_a", "office_b"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let me = keypair();

    let phone_a = Daemon::spawn(
        &net,
        fw.service_config(
            "phone_a",
            "Service.OPhone",
            "office_a_room",
            "office_a",
            5920,
        ),
        Box::new(OPhone::new(700.0)),
    )
    .unwrap();
    let phone_b = Daemon::spawn(
        &net,
        fw.service_config(
            "phone_b",
            "Service.OPhone",
            "office_b_room",
            "office_b",
            5920,
        ),
        Box::new(OPhone::new(1100.0)),
    )
    .unwrap();

    let mut a = ServiceClient::connect(&net, &"core".into(), phone_a.addr().clone(), &me).unwrap();
    let mut b = ServiceClient::connect(&net, &"core".into(), phone_b.addr().clone(), &me).unwrap();

    // Dial B from A (resolved through the ASD).
    let reply = a
        .call(&CmdLine::new("dial").arg("peer", "phone_b"))
        .unwrap();
    assert!(reply.get_text("session").unwrap().starts_with("call_"));

    // Both sides speak.
    for _ in 0..20 {
        a.call(&CmdLine::new("speak")).unwrap();
        b.call(&CmdLine::new("speak")).unwrap();
    }

    // Voice arrived both ways (datagrams are async; poll).
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let sa = a.call(&CmdLine::new("phoneStats")).unwrap();
        let sb = b.call(&CmdLine::new("phoneStats")).unwrap();
        if sa.get_int("received") == Some(20) && sb.get_int("received") == Some(20) {
            assert!(sa.get_f64("rms").unwrap() > 0.2, "audible audio at A");
            assert!(sb.get_f64("rms").unwrap() > 0.2, "audible audio at B");
            assert_eq!(sa.get_int("playedSamples"), Some(20 * 160));
            break;
        }
        assert!(std::time::Instant::now() < deadline, "voice never arrived");
        std::thread::sleep(Duration::from_millis(20));
    }

    // Busy phone rejects a second call.
    let phone_c = Daemon::spawn(
        &net,
        fw.service_config("phone_c", "Service.OPhone", "office_b_room", "core", 5921),
        Box::new(OPhone::new(900.0)),
    )
    .unwrap();
    let mut c = ServiceClient::connect(&net, &"core".into(), phone_c.addr().clone(), &me).unwrap();
    let err = c
        .call(&CmdLine::new("dial").arg("peer", "phone_b"))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Unavailable));

    // Hang up; both become idle (async notify).
    a.call_ok(&CmdLine::new("hangup")).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        let sb = b.call(&CmdLine::new("phoneStats")).unwrap();
        if sb.get_bool("inCall") == Some(false) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "peer never saw hangup"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    phone_c.shutdown();
    phone_b.shutdown();
    phone_a.shutdown();
    fw.shutdown();
}

#[test]
fn ophone_tolerates_datagram_loss() {
    let net = SimNet::new();
    for h in ["core", "a", "b"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let me = keypair();

    let phone_a = Daemon::spawn(
        &net,
        fw.service_config("phone_a", "Service.OPhone", "ra", "a", 5920),
        Box::new(OPhone::new(700.0)),
    )
    .unwrap();
    let phone_b = Daemon::spawn(
        &net,
        fw.service_config("phone_b", "Service.OPhone", "rb", "b", 5920),
        Box::new(OPhone::new(1100.0)),
    )
    .unwrap();

    let mut a = ServiceClient::connect(&net, &"core".into(), phone_a.addr().clone(), &me).unwrap();
    a.call(&CmdLine::new("dial").arg("peer", "phone_b"))
        .unwrap();

    // Voice plane becomes lossy AFTER call setup (commands ride reliable
    // streams and are unaffected).
    net.set_config(ace_net::NetConfig {
        latency: Duration::ZERO,
        datagram_loss: 0.3,
    });

    const SENT: i64 = 100;
    for _ in 0..SENT {
        a.call(&CmdLine::new("speak")).unwrap();
    }
    std::thread::sleep(Duration::from_millis(300));

    let mut b = ServiceClient::connect(&net, &"core".into(), phone_b.addr().clone(), &me).unwrap();
    let sb = b.call(&CmdLine::new("phoneStats")).unwrap();
    let received = sb.get_int("received").unwrap();
    // With 30% loss, some frames disappear (overwhelmingly likely for 100)
    // yet most arrive, and playback continued past the gaps.
    assert!(received < SENT, "some loss expected, got {received}/{SENT}");
    assert!(
        received > SENT / 3,
        "most frames arrive, got {received}/{SENT}"
    );
    assert!(sb.get_int("playedSamples").unwrap() > 0);

    phone_b.shutdown();
    phone_a.shutdown();
    fw.shutdown();
}
