//! File storage for media streams: the sink end of the Fig. 13 pipeline.
//!
//! "It takes the raw video stream from the camera, converts it to a format
//! such as MPEG, and sends it to the file manager service for storage."
//! This service is that file manager: a push-stream sink that writes each
//! frame into the persistent store (namespace `media`, key
//! `<stream>/<seq>`), so recordings inherit the store's three-replica
//! redundancy and survive the recorder's own crash.

use ace_core::prelude::*;
use ace_core::protocol::{hex_decode, hex_encode};
use ace_store::{StoreClient, StoreError};

/// The file-storage behavior.
pub struct FileStorage {
    replicas: Vec<Addr>,
    store: Option<StoreClient>,
    stored: u64,
    errors: u64,
}

impl FileStorage {
    pub fn new(replicas: Vec<Addr>) -> FileStorage {
        FileStorage {
            replicas,
            store: None,
            stored: 0,
            errors: 0,
        }
    }

    fn store(&mut self, ctx: &ServiceCtx) -> &mut StoreClient {
        if self.store.is_none() {
            self.store = Some(StoreClient::new(
                ctx.net().clone(),
                ctx.host().clone(),
                *ctx.identity(),
                self.replicas.clone(),
            ));
        }
        self.store.as_mut().expect("just created")
    }

    fn frame_key(stream: &str, seq: i64) -> String {
        format!("{stream}/{seq:08}")
    }
}

impl ServiceBehavior for FileStorage {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(ace_media::stream::push_spec())
            .with(
                CmdSpec::new("mediaList", "stored frame keys of a stream").required(
                    "stream",
                    ArgType::Word,
                    "stream name",
                ),
            )
            .with(
                CmdSpec::new("mediaGet", "fetch one stored frame")
                    .required("stream", ArgType::Word, "stream name")
                    .required("seq", ArgType::Int, "frame sequence number"),
            )
            .with(CmdSpec::new("storageStats", "storage counters"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "push" => {
                let stream = cmd.get_text("stream").expect("validated").to_string();
                let seq = cmd.get_int("seq").expect("validated");
                let Some(data) = hex_decode(cmd.get_text("data").expect("validated")) else {
                    return Reply::err(ErrorCode::Semantics, "data is not valid hex");
                };
                let key = Self::frame_key(&stream, seq);
                match self.store(ctx).put("media", &key, &data) {
                    Ok(_) => {
                        self.stored += 1;
                        Reply::ok_with(|c| c.arg("stored", true))
                    }
                    Err(e) => {
                        self.errors += 1;
                        ctx.log("error", format!("media store failed for {key}: {e}"));
                        Reply::err(ErrorCode::Unavailable, e.to_string())
                    }
                }
            }
            "mediaList" => {
                let stream = cmd.get_text("stream").expect("validated");
                match self.store(ctx).list("media") {
                    Ok(keys) => {
                        let prefix = format!("{stream}/");
                        let matches: Vec<Scalar> = keys
                            .into_iter()
                            .filter(|k| k.starts_with(&prefix))
                            .map(Scalar::Str)
                            .collect();
                        Reply::ok_with(|c| {
                            c.arg("count", matches.len() as i64)
                                .arg("keys", Value::Vector(matches))
                        })
                    }
                    Err(e) => Reply::err(ErrorCode::Unavailable, e.to_string()),
                }
            }
            "mediaGet" => {
                let stream = cmd.get_text("stream").expect("validated");
                let seq = cmd.get_int("seq").expect("validated");
                let key = Self::frame_key(stream, seq);
                match self.store(ctx).get("media", &key) {
                    Ok(data) => Reply::ok_with(|c| c.arg("data", hex_encode(&data))),
                    Err(StoreError::NotFound) => {
                        Reply::err(ErrorCode::NotFound, format!("no frame {key}"))
                    }
                    Err(e) => Reply::err(ErrorCode::Unavailable, e.to_string()),
                }
            }
            "storageStats" => Reply::ok_with(|c| {
                c.arg("stored", self.stored as i64)
                    .arg("errors", self.errors as i64)
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}
