//! The O-Phone: full-duplex telephone over IP (§5.5).
//!
//! "This application enables full-duplex telephone communication over IP,
//! thus allowing users to call each other … from their workspaces."
//!
//! Each phone is a daemon.  Dialing resolves the callee through the ASD and
//! performs a command-plane call setup; voice then flows as datagrams
//! (`oph <session> <seq> <hex-samples>`) directly between the phones'
//! data threads — the UDP path of §2.1.1 — through a reordering jitter
//! buffer on the receiving side.  Datagram loss is tolerated: playback
//! skips gaps.

use ace_core::prelude::*;
use ace_core::protocol::{hex_decode, hex_encode, open_snapshot, seal_snapshot};
use ace_media::dsp::{bytes_to_samples, samples_to_bytes, sine};
use ace_net::Datagram;
use std::collections::BTreeMap;

/// Call state of one phone.
#[derive(Debug, Clone, PartialEq)]
enum CallState {
    Idle,
    /// In a call with the peer phone at this address, session id agreed.
    Connected {
        peer: Addr,
        session: String,
    },
}

/// The O-Phone behavior.
pub struct OPhone {
    state: CallState,
    /// Simulated voice source (tone frequency).
    voice_freq: f64,
    tx_seq: u64,
    phase_samples: u64,
    /// Jitter buffer: seq → samples.
    jitter: BTreeMap<u64, Vec<i16>>,
    /// Frames played out (drained in order).
    played: Vec<i16>,
    received_frames: u64,
    next_play_seq: u64,
}

impl OPhone {
    pub fn new(voice_freq: f64) -> OPhone {
        OPhone {
            state: CallState::Idle,
            voice_freq,
            tx_seq: 0,
            phase_samples: 0,
            jitter: BTreeMap::new(),
            played: Vec::new(),
            received_frames: 0,
            next_play_seq: 0,
        }
    }

    fn session_id(a: &str, b: &str) -> String {
        if a <= b {
            format!("call_{a}_{b}")
        } else {
            format!("call_{b}_{a}")
        }
    }

    /// Drain in-order frames from the jitter buffer into the played stream,
    /// skipping over gaps older than the buffer horizon.
    fn drain_jitter(&mut self) {
        const HORIZON: usize = 4;
        loop {
            if let Some(samples) = self.jitter.remove(&self.next_play_seq) {
                self.played.extend_from_slice(&samples);
                self.next_play_seq += 1;
            } else if self.jitter.len() > HORIZON {
                // The expected frame is lost; skip to the next available.
                match self.jitter.keys().next().copied() {
                    Some(next) => self.next_play_seq = next,
                    None => break,
                }
            } else {
                break;
            }
        }
    }
}

impl ServiceBehavior for OPhone {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("dial", "call another phone by service name").required(
                    "peer",
                    ArgType::Word,
                    "callee phone service name",
                ),
            )
            .with(
                CmdSpec::new("ring", "incoming call setup (phone-to-phone)")
                    .required("caller", ArgType::Word, "caller service name")
                    .required("host", ArgType::Word, "caller host")
                    .required("port", ArgType::Int, "caller port")
                    .required("session", ArgType::Word, "session id"),
            )
            .with(
                CmdSpec::new("speak", "transmit the next voice frame").optional(
                    "len",
                    ArgType::Int,
                    "samples (default 160)",
                ),
            )
            .with(CmdSpec::new("hangup", "end the call"))
            .with(CmdSpec::new("onHangup", "peer ended the call").optional(
                "session",
                ArgType::Word,
                "session id",
            ))
            .with(CmdSpec::new("phoneStats", "call and audio counters"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "dial" => {
                if !matches!(self.state, CallState::Idle) {
                    return Reply::err(ErrorCode::BadState, "already in a call");
                }
                let peer_name = cmd.get_text("peer").expect("validated").to_string();
                let Ok(Some(entry)) = ctx.lookup_one(&peer_name) else {
                    return Reply::err(ErrorCode::NotFound, format!("no phone {peer_name}"));
                };
                let session = Self::session_id(ctx.name(), &peer_name);
                let ring = CmdLine::new("ring")
                    .arg("caller", ctx.name())
                    .arg("host", ctx.host().as_str())
                    .arg("port", ctx.addr().port)
                    .arg("session", session.as_str());
                match ctx.call(&entry.addr, &ring) {
                    Ok(_) => {
                        ctx.log("info", format!("call established with {peer_name}"));
                        self.state = CallState::Connected {
                            peer: entry.addr,
                            session: session.clone(),
                        };
                        Reply::ok_with(|c| c.arg("session", session))
                    }
                    Err(e) => Reply::err(ErrorCode::Unavailable, format!("callee: {e}")),
                }
            }
            "ring" => {
                if !matches!(self.state, CallState::Idle) {
                    return Reply::err(ErrorCode::BadState, "busy");
                }
                // Auto-answer (the paper's phone rings on the workspace).
                let peer = Addr::new(
                    cmd.get_text("host").expect("validated"),
                    cmd.get_int("port").expect("validated") as u16,
                );
                let session = cmd.get_text("session").expect("validated").to_string();
                self.state = CallState::Connected {
                    peer,
                    session: session.clone(),
                };
                ctx.log("info", format!("answered call {session}"));
                Reply::ok()
            }
            "speak" => {
                let CallState::Connected { peer, session } = self.state.clone() else {
                    return Reply::err(ErrorCode::BadState, "not in a call");
                };
                let len = cmd.get_int("len").unwrap_or(160).max(0) as usize;
                let w = 2.0 * std::f64::consts::PI * self.voice_freq
                    / ace_media::dsp::SAMPLE_RATE as f64;
                let samples = sine(self.voice_freq, 0.4, len, w * self.phase_samples as f64);
                self.phase_samples += len as u64;
                let payload = format!(
                    "oph {session} {} {}",
                    self.tx_seq,
                    hex_encode(&samples_to_bytes(&samples))
                );
                let seq = self.tx_seq;
                self.tx_seq += 1;
                // Voice rides the unreliable datagram plane.
                let _ = ctx
                    .net()
                    .send_datagram(&ctx.addr(), &peer, payload.into_bytes());
                Reply::ok_with(|c| c.arg("seq", seq as i64))
            }
            "hangup" => {
                let CallState::Connected { peer, session } = self.state.clone() else {
                    return Reply::err(ErrorCode::BadState, "not in a call");
                };
                self.state = CallState::Idle;
                ctx.send_async(
                    peer,
                    CmdLine::new("onHangup").arg("session", session.as_str()),
                );
                Reply::ok()
            }
            "onHangup" => {
                self.state = CallState::Idle;
                Reply::ok()
            }
            "phoneStats" => {
                self.drain_jitter();
                let in_call = matches!(self.state, CallState::Connected { .. });
                Reply::ok_with(|c| {
                    c.arg("inCall", in_call)
                        .arg("sent", self.tx_seq as i64)
                        .arg("received", self.received_frames as i64)
                        .arg("playedSamples", self.played.len() as i64)
                        .arg("rms", ace_media::dsp::rms(&self.played))
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }

    fn on_data(&mut self, _ctx: &mut ServiceCtx, datagram: Datagram) {
        // Parse `oph <session> <seq> <hex>`.
        let Ok(text) = std::str::from_utf8(&datagram.payload) else {
            return;
        };
        let mut parts = text.split(' ');
        if parts.next() != Some("oph") {
            return;
        }
        let Some(session) = parts.next() else { return };
        let CallState::Connected {
            session: ref ours, ..
        } = self.state
        else {
            return;
        };
        if session != ours {
            return;
        }
        let Some(seq) = parts.next().and_then(|s| s.parse::<u64>().ok()) else {
            return;
        };
        let Some(samples) = parts
            .next()
            .and_then(hex_decode)
            .as_deref()
            .and_then(bytes_to_samples)
        else {
            return;
        };
        self.received_frames += 1;
        self.jitter.insert(seq, samples);
        self.drain_jitter();
    }

    // Live upgrade: the call itself (peer, session) and the transmit/play
    // cursors ride the snapshot so a hot-swapped phone stays in the call
    // with monotone sequence numbers.  The jitter buffer and played-out
    // audio are transient: frames in flight during the pause are treated
    // as datagram loss, which playback already skips over.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        let mut state = CmdLine::new("ophoneState")
            .arg("voiceFreq", self.voice_freq)
            .arg("txSeq", self.tx_seq as i64)
            .arg("phase", self.phase_samples as i64)
            .arg("nextPlay", self.next_play_seq as i64)
            .arg("received", self.received_frames as i64);
        if let CallState::Connected { peer, session } = &self.state {
            state = state
                .arg("peerHost", peer.host.as_str())
                .arg("peerPort", peer.port as i64)
                .arg("session", session.as_str());
        }
        Some(seal_snapshot("ophone", state))
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let state = open_snapshot("ophone", snapshot)?;
        let voice_freq = state
            .get_f64("voiceFreq")
            .filter(|f| f.is_finite() && *f > 0.0)
            .ok_or_else(|| "ophone snapshot: malformed voiceFreq".to_string())?;
        let counter = |name: &str| {
            state
                .get_int(name)
                .filter(|v| *v >= 0)
                .map(|v| v as u64)
                .ok_or_else(|| format!("ophone snapshot: malformed {name}"))
        };
        let tx_seq = counter("txSeq")?;
        let phase_samples = counter("phase")?;
        let next_play_seq = counter("nextPlay")?;
        let received_frames = counter("received")?;
        self.state = match (
            state.get_text("peerHost"),
            state.get_int("peerPort"),
            state.get_text("session"),
        ) {
            (Some(host), Some(port), Some(session)) if (0..=65535).contains(&port) => {
                CallState::Connected {
                    peer: Addr::new(host, port as u16),
                    session: session.to_string(),
                }
            }
            (None, None, None) => CallState::Idle,
            _ => return Err("ophone snapshot: inconsistent call state".to_string()),
        };
        self.voice_freq = voice_freq;
        self.tx_seq = tx_seq;
        self.phase_samples = phase_samples;
        self.next_play_seq = next_play_seq;
        self.received_frames = received_frames;
        self.jitter.clear();
        Ok(())
    }
}
