//! # ace-apps — ACE user applications and lifecycle
//!
//! Implements §5 and the §9 robustness machinery:
//!
//! * [`AppClass`] — the temporary / restart / robust taxonomy (§5.1–5.3);
//! * [`Watcher`] — the restart service the paper calls "the next step in
//!   our current development": listens for the ASD's `serviceExpired`
//!   events and relaunches watched services;
//! * [`Checkpoint`] / [`RobustCounter`] — robust-application state
//!   recovery over the persistent store (§6 → E19);
//! * [`OPhone`] — full-duplex audio over IP, voice on the datagram plane
//!   with a jitter buffer (§5.5).

pub mod lifecycle;
pub mod mediastore;
pub mod ophone;
pub mod robust;

pub use lifecycle::{wire_watcher, AppClass, SpawnFn, WatchSpec, Watcher};
pub use mediastore::FileStorage;
pub use ophone::OPhone;
pub use robust::{Checkpoint, RobustCounter, APPSTATE_NS};
