//! Application lifecycle classes and the restart watcher (§5.1–§5.3, §9).
//!
//! The paper classifies everything running in an ACE:
//!
//! * **temporary** — "allowed to crash and it is irrelevant … whether or
//!   not these applications are executed again" (word processors, browsers);
//! * **restart** — "must be closely watched by other ACE services in order
//!   to make sure they are up and running and be restarted in case of a
//!   crash" (camera controls, the logger);
//! * **robust** — "must not be allowed to crash … or have a backup
//!   redundant instance ready to take over", recovering state from the
//!   persistent store (the ASD, AUD, WSS).
//!
//! §9 lists the watcher as "the next step in our current development":
//! "notifications can be utilized to alert such watcher services of closed
//! applications and can also work in conjunction with the ASD".  That is
//! exactly [`Watcher`]: it listens for the ASD's `serviceExpired` event and
//! relaunches watched services from registered spawn functions.

use ace_core::prelude::*;
use ace_core::SpawnError;
use std::collections::HashMap;

/// The §5 application classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppClass {
    /// Nobody relaunches it.
    Temporary,
    /// Relaunched after a crash; state starts fresh.
    Restart,
    /// Relaunched after a crash; recovers state from the persistent store.
    Robust,
}

impl AppClass {
    /// Should the watcher relaunch this class?
    pub fn relaunches(&self) -> bool {
        !matches!(self, AppClass::Temporary)
    }
}

/// How to relaunch a watched service.
pub type SpawnFn = Box<dyn Fn(&SimNet) -> Result<DaemonHandle, SpawnError> + Send>;

/// One watched service.
pub struct WatchSpec {
    pub name: String,
    pub class: AppClass,
    pub spawn: SpawnFn,
}

impl WatchSpec {
    pub fn new(name: impl Into<String>, class: AppClass, spawn: SpawnFn) -> WatchSpec {
        WatchSpec {
            name: name.into(),
            class,
            spawn,
        }
    }
}

/// The watcher service: reacts to `serviceExpired` by relaunching.
pub struct Watcher {
    specs: HashMap<String, WatchSpec>,
    /// Handles of services this watcher relaunched (kept alive; shut down
    /// with the watcher).
    relaunched: Vec<DaemonHandle>,
    restarts: u64,
    ignored: u64,
}

impl Watcher {
    pub fn new(specs: Vec<WatchSpec>) -> Watcher {
        Watcher {
            specs: specs.into_iter().map(|s| (s.name.clone(), s)).collect(),
            relaunched: Vec::new(),
            restarts: 0,
            ignored: 0,
        }
    }
}

impl ServiceBehavior for Watcher {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("onServiceExpired", "notification from the ASD")
                    .optional("service", ArgType::Str, "origin (the ASD)")
                    .optional("cmd", ArgType::Str, "origin event")
                    .optional("name", ArgType::Word, "the expired service"),
            )
            .with(CmdSpec::new("watcherStats", "restart counters"))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "onServiceExpired" => {
                let Some(name) = cmd.get_text("name").map(str::to_string) else {
                    return Reply::err(ErrorCode::Semantics, "notification without name");
                };
                match self.specs.get(&name) {
                    Some(spec) if spec.class.relaunches() => {
                        ctx.log("warn", format!("{name} expired; relaunching"));
                        match (spec.spawn)(ctx.net()) {
                            Ok(handle) => {
                                self.restarts += 1;
                                self.relaunched.push(handle);
                                ctx.fire_event(
                                    CmdLine::new("serviceRestarted").arg("name", name.as_str()),
                                );
                                Reply::ok_with(|c| c.arg("restarted", true))
                            }
                            Err(e) => {
                                ctx.log("error", format!("relaunch of {name} failed: {e}"));
                                Reply::err(ErrorCode::Internal, e.to_string())
                            }
                        }
                    }
                    _ => {
                        // Temporary or unwatched: let it rest.
                        self.ignored += 1;
                        Reply::ok_with(|c| c.arg("restarted", false))
                    }
                }
            }
            "watcherStats" => Reply::ok_with(|c| {
                c.arg("watched", self.specs.len() as i64)
                    .arg("restarts", self.restarts as i64)
                    .arg("ignored", self.ignored as i64)
            }),
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }

    fn on_stop(&mut self, _ctx: &mut ServiceCtx) {
        for handle in self.relaunched.drain(..) {
            handle.shutdown();
        }
    }
}

/// Subscribe a watcher to the ASD's `serviceExpired` event.
pub fn wire_watcher(
    net: &SimNet,
    watcher: &DaemonHandle,
    asd: &Addr,
    identity: &ace_security::keys::KeyPair,
) -> Result<(), ClientError> {
    let mut client = ServiceClient::connect(net, &watcher.addr().host, asd.clone(), identity)?;
    client.call_ok(
        &CmdLine::new("addNotification")
            .arg("cmd", "serviceExpired")
            .arg("service", watcher.name())
            .arg("host", watcher.addr().host.as_str())
            .arg("port", watcher.addr().port)
            .arg("notifyCmd", "onServiceExpired"),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_class_relaunch_policy() {
        assert!(!AppClass::Temporary.relaunches());
        assert!(AppClass::Restart.relaunches());
        assert!(AppClass::Robust.relaunches());
    }
}
