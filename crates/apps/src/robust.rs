//! Robust applications: state checkpointing over the persistent store.
//!
//! "This type of service utilizes a straightforward object-oriented
//! namespace approach to storing application and program state information
//! and forms the basis for supporting restart and robust applications"
//! (§6).  [`Checkpoint`] is that approach: a service's state serializes
//! into the `appstate` namespace under its own name; on (re)start the
//! service loads its last checkpoint and resumes — the E19 recovery path.

use ace_core::prelude::*;
use ace_store::{StoreClient, StoreError};

/// Namespace used for application state.
pub const APPSTATE_NS: &str = "appstate";

/// State checkpointing for one service.
pub struct Checkpoint {
    store: StoreClient,
    key: String,
}

impl Checkpoint {
    /// Checkpointing for the service named `service` over the given store
    /// replicas.
    pub fn new(
        net: SimNet,
        from_host: impl Into<HostId>,
        identity: ace_security::keys::KeyPair,
        replicas: Vec<Addr>,
        service: &str,
    ) -> Checkpoint {
        Checkpoint {
            store: StoreClient::new(net, from_host, identity, replicas),
            key: service.to_string(),
        }
    }

    /// Persist the current state.
    pub fn save(&mut self, state: &[u8]) -> Result<u64, StoreError> {
        self.store.put(APPSTATE_NS, &self.key, state)
    }

    /// Load the last checkpoint, if any.
    pub fn load(&mut self) -> Result<Option<Vec<u8>>, StoreError> {
        match self.store.get(APPSTATE_NS, &self.key) {
            Ok(data) => Ok(Some(data)),
            Err(StoreError::NotFound) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// A demonstration robust service: a counter whose value survives crashes.
///
/// Every mutation checkpoints; `on_start` restores.  Combined with the
/// [`crate::lifecycle::Watcher`], a crash→expiry→relaunch cycle comes back
/// with the exact pre-crash count (E19).
pub struct RobustCounter {
    count: i64,
    replicas: Vec<Addr>,
    checkpoint: Option<Checkpoint>,
    recovered: bool,
}

impl RobustCounter {
    pub fn new(replicas: Vec<Addr>) -> RobustCounter {
        RobustCounter {
            count: 0,
            replicas,
            checkpoint: None,
            recovered: false,
        }
    }

    fn save(&mut self, ctx: &mut ServiceCtx) {
        if let Some(cp) = self.checkpoint.as_mut() {
            if let Err(e) = cp.save(self.count.to_string().as_bytes()) {
                ctx.log("error", format!("checkpoint failed: {e}"));
            }
        }
    }
}

impl ServiceBehavior for RobustCounter {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("increment", "add to the counter").optional(
                "by",
                ArgType::Int,
                "amount (default 1)",
            ))
            .with(CmdSpec::new("read", "current value and recovery flag"))
    }

    fn on_start(&mut self, ctx: &mut ServiceCtx) {
        let mut cp = Checkpoint::new(
            ctx.net().clone(),
            ctx.host().clone(),
            *ctx.identity(),
            self.replicas.clone(),
            ctx.name(),
        );
        match cp.load() {
            Ok(Some(state)) => {
                if let Ok(count) = std::str::from_utf8(&state).unwrap_or("").parse() {
                    self.count = count;
                    self.recovered = true;
                    ctx.log("info", format!("recovered state: count={count}"));
                }
            }
            Ok(None) => {}
            Err(e) => ctx.log("warn", format!("state load failed: {e}")),
        }
        self.checkpoint = Some(cp);
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "increment" => {
                self.count += cmd.get_int("by").unwrap_or(1);
                self.save(ctx);
                Reply::ok_with(|c| c.arg("value", self.count))
            }
            "read" => {
                Reply::ok_with(|c| c.arg("value", self.count).arg("recovered", self.recovered))
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}
