//! Integration tests of the daemon framework against the directory tier:
//! the Fig. 9 startup sequence, Fig. 7 lookup, §2.4 leases, Fig. 8
//! notifications, and the Fig. 10 authorization flow.

use ace_core::prelude::*;
use ace_directory::{bootstrap, AsdClient, Framework, LoggerClient, RoomDbClient};
use ace_security::keynote::{Assertion, KeyNoteEngine, Licensees, POLICY};
use ace_security::keys::KeyPair;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

fn net_with(hosts: &[&str]) -> SimNet {
    let net = SimNet::new();
    for h in hosts {
        net.add_host(*h);
    }
    net
}

/// A trivial counting service used as the subject of directory tests.
struct Counter {
    count: i64,
    events: Arc<AtomicU64>,
}

impl Counter {
    fn new() -> Counter {
        Counter {
            count: 0,
            events: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl ServiceBehavior for Counter {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("increment", "add to the counter").optional(
                "by",
                ArgType::Int,
                "amount (default 1)",
            ))
            .with(CmdSpec::new("read", "current value"))
            .with(
                CmdSpec::new("onPeerEvent", "notification sink")
                    .optional("service", ArgType::Str, "origin")
                    .optional("cmd", ArgType::Str, "what ran")
                    .optional("by", ArgType::Int, "amount"),
            )
    }

    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "increment" => {
                self.count += cmd.get_int("by").unwrap_or(1);
                Reply::ok_with(|c| c.arg("value", self.count))
            }
            "read" => Reply::ok_with(|c| c.arg("value", self.count)),
            "onPeerEvent" => {
                self.events.fetch_add(1, Ordering::SeqCst);
                Reply::ok()
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted `{other}`")),
        }
    }
}

fn start_counter(net: &SimNet, fw: &Framework, name: &str, host: &str, port: u16) -> DaemonHandle {
    Daemon::spawn(
        net,
        fw.service_config(name, "Service.Counter", "hawk", host, port),
        Box::new(Counter::new()),
    )
    .unwrap()
}

#[test]
fn startup_sequence_registers_everywhere() {
    let net = net_with(&["core", "bar"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = keypair();

    let counter = start_counter(&net, &fw, "counter1", "bar", 4000);

    // Fig. 9 step 3: visible in the ASD.
    let mut asd = AsdClient::connect(&net, &"bar".into(), fw.asd_addr.clone(), &me).unwrap();
    let entry = asd.find("counter1").unwrap().expect("registered");
    assert_eq!(entry.addr, Addr::new("bar", 4000));
    assert_eq!(entry.class, "Service.Counter");
    assert_eq!(entry.room, "hawk");

    // Step 2: placed in the room database.
    let mut roomdb =
        RoomDbClient::connect(&net, &"bar".into(), fw.roomdb_addr.clone(), &me).unwrap();
    let placements = roomdb.room_services("hawk").unwrap();
    assert!(placements.iter().any(|p| p.service == "counter1"));

    // Step 5: start recorded in the logger.
    let mut logger =
        LoggerClient::connect(&net, &"bar".into(), fw.logger_addr.clone(), &me).unwrap();
    let records = logger.tail(50, None).unwrap();
    assert!(records
        .iter()
        .any(|(_, _, _, _, msg)| msg.contains("counter1 started on host bar")));

    counter.shutdown();
    fw.shutdown();
}

#[test]
fn lookup_by_class_and_room() {
    let net = net_with(&["core", "bar", "tube"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = keypair();

    let c1 = start_counter(&net, &fw, "c1", "bar", 4000);
    let c2 = Daemon::spawn(
        &net,
        fw.service_config("c2", "Service.Counter", "dove", "tube", 4001),
        Box::new(Counter::new()),
    )
    .unwrap();

    let mut asd = AsdClient::connect(&net, &"bar".into(), fw.asd_addr.clone(), &me).unwrap();
    let by_class = asd.lookup(None, Some("Counter"), None).unwrap();
    assert_eq!(by_class.len(), 2);
    let in_dove = asd.lookup(None, Some("Counter"), Some("dove")).unwrap();
    assert_eq!(in_dove.len(), 1);
    assert_eq!(in_dove[0].name, "c2");

    // Full Fig. 7 flow: look up, connect to the returned address, command.
    let mut client =
        ServiceClient::connect(&net, &"bar".into(), in_dove[0].addr.clone(), &me).unwrap();
    let reply = client
        .call(&CmdLine::new("increment").arg("by", 5))
        .unwrap();
    assert_eq!(reply.get_int("value"), Some(5));

    c1.shutdown();
    c2.shutdown();
    fw.shutdown();
}

#[test]
fn graceful_shutdown_deregisters() {
    let net = net_with(&["core", "bar"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = keypair();

    let counter = start_counter(&net, &fw, "gone", "bar", 4000);
    let mut asd = AsdClient::connect(&net, &"bar".into(), fw.asd_addr.clone(), &me).unwrap();
    assert!(asd.find("gone").unwrap().is_some());

    counter.shutdown();
    assert!(asd.find("gone").unwrap().is_none(), "removed on shutdown");

    fw.shutdown();
}

#[test]
fn crashed_daemon_is_purged_by_lease_expiry() {
    let net = net_with(&["core", "bar"]);
    // Short lease so the test runs quickly.
    let fw = bootstrap(&net, "core", Duration::from_millis(300)).unwrap();
    let me = keypair();

    let counter = Daemon::spawn(
        &net,
        fw.service_config("flaky", "Service.Counter", "hawk", "bar", 4000)
            .with_lease_renew(Duration::from_millis(100)),
        Box::new(Counter::new()),
    )
    .unwrap();

    let mut asd = AsdClient::connect(&net, &"bar".into(), fw.asd_addr.clone(), &me).unwrap();
    // Renewal keeps it alive well past one lease duration.
    std::thread::sleep(Duration::from_millis(700));
    assert!(
        asd.find("flaky").unwrap().is_some(),
        "renewal keeps the lease"
    );

    // Crash without deregistering: the lease mechanism must clean up.
    counter.crash();
    std::thread::sleep(Duration::from_millis(600));
    assert!(
        asd.find("flaky").unwrap().is_none(),
        "expired lease purged after crash"
    );

    fw.shutdown();
}

#[test]
fn notifications_fire_on_command_execution() {
    let net = net_with(&["core", "bar", "tube"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = keypair();

    let watched = start_counter(&net, &fw, "watched", "bar", 4000);
    let listener_behavior = Counter::new();
    let events = Arc::clone(&listener_behavior.events);
    let listener = Daemon::spawn(
        &net,
        fw.service_config("listener", "Service.Counter", "hawk", "tube", 4001),
        Box::new(listener_behavior),
    )
    .unwrap();

    // Fig. 8: register interest in `increment` on the watched service.
    let mut client =
        ServiceClient::connect(&net, &"tube".into(), watched.addr().clone(), &me).unwrap();
    client
        .call_ok(
            &CmdLine::new("addNotification")
                .arg("cmd", "increment")
                .arg("service", "listener")
                .arg("host", "tube")
                .arg("port", 4001)
                .arg("notifyCmd", "onPeerEvent"),
        )
        .unwrap();

    for _ in 0..3 {
        client.call_ok(&CmdLine::new("increment")).unwrap();
    }
    // Failed commands must not notify.
    let _ = client.call(&CmdLine::new("increment").arg("by", Value::Str("x".into())));

    // Delivery is asynchronous.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while events.load(Ordering::SeqCst) < 3 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(events.load(Ordering::SeqCst), 3);

    // Deregister; further executions are silent.
    client
        .call_ok(
            &CmdLine::new("removeNotification")
                .arg("cmd", "increment")
                .arg("service", "listener"),
        )
        .unwrap();
    client.call_ok(&CmdLine::new("increment")).unwrap();
    std::thread::sleep(Duration::from_millis(200));
    assert_eq!(events.load(Ordering::SeqCst), 3);

    listener.shutdown();
    watched.shutdown();
    fw.shutdown();
}

#[test]
fn semantic_errors_rejected_before_execution() {
    let net = net_with(&["core", "bar"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = keypair();
    let counter = start_counter(&net, &fw, "strict", "bar", 4000);
    let mut client =
        ServiceClient::connect(&net, &"bar".into(), counter.addr().clone(), &me).unwrap();

    // Unknown command.
    let err = client.call(&CmdLine::new("explode")).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Semantics));
    // Wrong argument type.
    let err = client
        .call(&CmdLine::new("increment").arg("by", Value::Str("many".into())))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Semantics));
    // State unchanged.
    let reply = client.call(&CmdLine::new("read")).unwrap();
    assert_eq!(reply.get_int("value"), Some(0));

    counter.shutdown();
    fw.shutdown();
}

#[test]
fn keynote_guards_commands() {
    let net = net_with(&["core", "bar"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();

    let admin = keypair();
    let user = keypair();
    let mut engine = KeyNoteEngine::new();
    // Admin may do anything; user may only read.
    engine
        .add_policy(
            Assertion::new(POLICY, Licensees::Principal(admin.principal()), "true").unwrap(),
        )
        .unwrap();
    engine
        .add_policy(
            Assertion::new(
                POLICY,
                Licensees::Principal(user.principal()),
                "cmd == \"read\"",
            )
            .unwrap(),
        )
        .unwrap();
    // Daemons themselves need authority for their framework traffic — grant
    // the service's own key full authority below via its fixed identity.
    let service_key = keypair();
    engine
        .add_policy(
            Assertion::new(
                POLICY,
                Licensees::Principal(service_key.principal()),
                "true",
            )
            .unwrap(),
        )
        .unwrap();

    let auth = AuthMode::Local(Arc::new(Authorizer::local(engine)));
    let guarded = Daemon::spawn(
        &net,
        fw.service_config("guarded", "Service.Counter", "hawk", "bar", 4000)
            .with_auth(auth)
            .with_identity(service_key),
        Box::new(Counter::new()),
    )
    .unwrap();

    // Admin can increment.
    let mut as_admin =
        ServiceClient::connect(&net, &"bar".into(), guarded.addr().clone(), &admin).unwrap();
    as_admin.call_ok(&CmdLine::new("increment")).unwrap();

    // User can read but not increment.
    let mut as_user =
        ServiceClient::connect(&net, &"bar".into(), guarded.addr().clone(), &user).unwrap();
    let reply = as_user.call(&CmdLine::new("read")).unwrap();
    assert_eq!(reply.get_int("value"), Some(1));
    let err = as_user.call(&CmdLine::new("increment")).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Denied));

    // A stranger can do neither (but ping stays open for liveness).
    let stranger = keypair();
    let mut as_stranger =
        ServiceClient::connect(&net, &"bar".into(), guarded.addr().clone(), &stranger).unwrap();
    assert!(as_stranger.call(&CmdLine::new("ping")).is_ok());
    let err = as_stranger.call(&CmdLine::new("read")).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Denied));

    guarded.shutdown();
    fw.shutdown();
}

#[test]
fn describe_lists_inherited_and_own_commands() {
    let net = net_with(&["core", "bar"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = keypair();
    let counter = start_counter(&net, &fw, "desc", "bar", 4000);
    let mut client =
        ServiceClient::connect(&net, &"bar".into(), counter.addr().clone(), &me).unwrap();

    let reply = client.call(&CmdLine::new("describe")).unwrap();
    let cmds: Vec<&str> = reply
        .get_vector("cmds")
        .unwrap()
        .iter()
        .filter_map(|s| s.as_text())
        .collect();
    // Own commands plus the inherited base of the Fig. 6 hierarchy.
    for expected in ["increment", "read", "ping", "shutdown", "addNotification"] {
        assert!(cmds.contains(&expected), "missing {expected}");
    }

    counter.shutdown();
    fw.shutdown();
}

#[test]
fn shutdown_command_stops_daemon() {
    let net = net_with(&["core", "bar"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = keypair();
    let counter = start_counter(&net, &fw, "stopme", "bar", 4000);
    let mut client =
        ServiceClient::connect(&net, &"bar".into(), counter.addr().clone(), &me).unwrap();
    client.call_ok(&CmdLine::new("shutdown")).unwrap();

    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while counter.is_running() && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(!counter.is_running());
    counter.shutdown(); // join
    fw.shutdown();
}

#[test]
fn logger_stats_and_filtering() {
    let net = net_with(&["core"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = keypair();
    let mut logger =
        LoggerClient::connect(&net, &"core".into(), fw.logger_addr.clone(), &me).unwrap();

    logger.log("warn", "disk nearly full").unwrap();
    logger.log("security", "invalid login for mallory").unwrap();
    logger
        .log("security", "invalid login for mallory again")
        .unwrap();

    let security = logger.tail(10, Some("security")).unwrap();
    assert_eq!(security.len(), 2);
    assert!(security[0].4.contains("mallory"));

    let (_total, _retained, _info, warn, _error, sec) = logger.stats().unwrap();
    assert_eq!(warn, 1);
    assert_eq!(sec, 2);

    fw.shutdown();
}

#[test]
fn room_database_info_and_dimensions() {
    let net = net_with(&["core"]);
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = keypair();
    let mut roomdb =
        RoomDbClient::connect(&net, &"core".into(), fw.roomdb_addr.clone(), &me).unwrap();

    roomdb
        .define_room("hawk", "nichols", (8.0, 6.0, 3.0))
        .unwrap();
    let info = roomdb.room_info("hawk").unwrap();
    assert_eq!(info.building, "nichols");
    assert_eq!(info.dimensions, (8.0, 6.0, 3.0));

    let rooms = roomdb.list_rooms().unwrap();
    assert!(rooms.contains(&"hawk".to_string()));
    assert!(
        rooms.contains(&"machineroom".to_string()),
        "auto-created by bootstrap"
    );

    fw.shutdown();
}
