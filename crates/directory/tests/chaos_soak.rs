//! Chaos soak: the full stack under a seeded fault plan.
//!
//! ASD + Room DB + Net Logger on a protected host, a three-replica store
//! cluster, an app service, a supervisor watching all of them, and a
//! client hammering quorum writes — while a deterministic [`FaultPlan`]
//! crashes hosts, opens partitions, and injects latency/datagram loss.
//!
//! Invariants asserted per seed:
//!
//! 1. the fault schedule is a pure function of the seed (replayable);
//! 2. no acknowledged write is lost — every `put` that reported quorum is
//!    readable with the same bytes after the network heals;
//! 3. every supervised service is re-registered and answering `ping` by
//!    the end of the run, within the supervisor's restart budget (no
//!    escalations);
//! 4. a name-bound failover client converges once the plan ends.

use ace_core::prelude::*;
use ace_core::supervise::{wire_supervisor, Respawn, RestartPolicy, SupervisedSpec, Supervisor};
use ace_core::{FailoverClient, RetryPolicy, ServiceClient};
use ace_directory::{bootstrap, AsdClient};
use ace_net::fault::{FaultPlan, FaultPlanConfig};
use ace_security::keys::KeyPair;
use ace_store::{
    spawn_store_cluster_with, DiskImage, StoreClient, StoreReplica, WalConfig, STORE_PORT,
};
use std::time::{Duration, Instant};

const STORE_SYNC: Duration = Duration::from_millis(50);
const PLAN_LEN: Duration = Duration::from_millis(2500);
const RECOVERY_DEADLINE: Duration = Duration::from_secs(15);

/// Replica durability policy for the soak: group commit with a short
/// linger, so concurrent quorum writes genuinely share fsyncs and the
/// storage faults tear *batched* appends — the recovery invariants below
/// must hold regardless of how records were grouped.
fn chaos_wal_config() -> WalConfig {
    WalConfig {
        max_batch_delay: Duration::from_millis(1),
        ..WalConfig::default()
    }
}

/// Minimal app service for the failover client to chase.
struct Echo(u64);
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("bump", "count a visit"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "bump" => {
                self.0 += 1;
                Reply::ok_with(|c| c.arg("count", self.0 as i64))
            }
            _ => Reply::err(ErrorCode::Internal, "unrouted"),
        }
    }
}

fn run_chaos(seed: u64) {
    let net = SimNet::new();
    let store_hosts = ["s1", "s2", "s3"];
    for h in ["ctrl", "s1", "s2", "s3", "app1"] {
        net.add_host(h);
    }

    // Framework tier on the protected host; 500ms leases so a crashed
    // service expires (and notifies the supervisor) well within the plan.
    let fw = bootstrap(&net, "ctrl", Duration::from_millis(500)).unwrap();
    let cluster =
        spawn_store_cluster_with(&net, &fw, &store_hosts, STORE_SYNC, chaos_wal_config()).unwrap();
    let app = Daemon::spawn(
        &net,
        fw.service_config("echo1", "Service.App.Echo", "office", "app1", 4700),
        Box::new(Echo(0)),
    )
    .unwrap();

    // Supervisor: store replicas respawn by *recovering* their disk image
    // from the write-ahead log + snapshot (reopening also fences any
    // zombie instance's storage handles); anti-entropy then converges
    // them.  The app respawns fresh.
    let mut specs = Vec::new();
    for (i, host) in store_hosts.iter().enumerate() {
        let fw_ref = (
            fw.asd_addr.clone(),
            fw.roomdb_addr.clone(),
            fw.logger_addr.clone(),
        );
        let storage = cluster.storages[i].clone();
        let host = host.to_string();
        specs.push(SupervisedSpec::new(
            format!("store_{}", i + 1),
            Box::new(move |net: &SimNet| {
                let (disk, report) = DiskImage::open_or_reset(&storage, chaos_wal_config())
                    .map_err(ace_store::storage_spawn_err)?;
                let handle = Daemon::spawn(
                    net,
                    DaemonConfig::new(
                        format!("store_{}", i + 1),
                        "Service.Database.PersistentStore",
                        "machineroom",
                        host.as_str(),
                        STORE_PORT,
                    )
                    .with_asd(fw_ref.0.clone())
                    .with_roomdb(fw_ref.1.clone())
                    .with_logger(fw_ref.2.clone()),
                    Box::new(StoreReplica::new(disk, STORE_SYNC)),
                )?;
                Ok(Respawn::with_note(handle, report.to_string()))
            }),
        ));
    }
    {
        let fw_ref = (
            fw.asd_addr.clone(),
            fw.roomdb_addr.clone(),
            fw.logger_addr.clone(),
        );
        specs.push(SupervisedSpec::new(
            "echo1",
            Box::new(move |net: &SimNet| {
                Daemon::spawn(
                    net,
                    DaemonConfig::new("echo1", "Service.App.Echo", "office", "app1", 4700)
                        .with_asd(fw_ref.0.clone())
                        .with_roomdb(fw_ref.1.clone())
                        .with_logger(fw_ref.2.clone()),
                    Box::new(Echo(0)),
                )
                .map(Respawn::from)
            }),
        ));
    }
    let policy = RestartPolicy::default()
        .with_max_restarts(10)
        .with_window(Duration::from_secs(30))
        .with_backoff(
            RetryPolicy::new(Duration::from_millis(50)).with_cap(Duration::from_millis(500)),
        )
        .with_max_spawn_attempts(30)
        .with_probe_failures(2);
    let supervisor = Daemon::spawn(
        &net,
        fw.service_config(
            "supervisor",
            "Service.Supervisor",
            "machineroom",
            "ctrl",
            5900,
        ),
        Box::new(Supervisor::new(specs, policy).with_probe_interval(Duration::from_millis(150))),
    )
    .unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    wire_supervisor(&net, &supervisor, &fw.asd_addr, &me).unwrap();

    // Deterministic fault schedule (replayable from the seed alone).
    let chaos_hosts: Vec<HostId> = ["s1", "s2", "s3", "app1"].map(HostId::from).to_vec();
    let mut fault_config = FaultPlanConfig::new(PLAN_LEN, chaos_hosts);
    fault_config.partitionable = store_hosts.map(HostId::from).to_vec();
    fault_config.crash_windows = 4;
    fault_config.max_latency = Duration::from_millis(1);
    // Storage faults on the replicas' disks: crashes tear the WAL append
    // in flight, standalone windows inject torn writes and (at most one)
    // bit flip.  Log-before-ack + recovery keep the invariants below.
    fault_config.storage_hosts = store_hosts.map(HostId::from).to_vec();
    fault_config.storage_fault_windows = 2;
    let plan = FaultPlan::generate(seed, &fault_config);
    assert_eq!(
        plan,
        FaultPlan::generate(seed, &fault_config),
        "fault schedule must be a pure function of the seed"
    );

    // Workload: quorum writes of unique keys; remember only acknowledged
    // ones.  Echo calls ride along with a short window — failures during
    // chaos are expected and tolerated.
    let runner = plan.spawn(&net);
    let mut store = StoreClient::new(net.clone(), "ctrl", me, cluster.addrs.clone());
    let mut echo = FailoverClient::bind(net.clone(), "ctrl", me, fw.asd_addr.clone(), "echo1")
        .with_retry_window(Duration::from_millis(200));
    let mut acked: Vec<(String, Vec<u8>)> = Vec::new();
    let mut echo_ok = 0u32;
    let start = Instant::now();
    let mut n = 0u32;
    while start.elapsed() < PLAN_LEN {
        let key = format!("k{n}");
        let data = format!("v{n}-seed{seed}").into_bytes();
        if store.put("chaos", &key, &data).is_ok() {
            acked.push((key, data));
        }
        if n.is_multiple_of(4) && echo.call_idempotent(&CmdLine::new("bump")).is_ok() {
            echo_ok += 1;
        }
        n += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    runner.join(); // network fully healed from here on

    assert!(
        !acked.is_empty(),
        "seed {seed}: no write was ever acknowledged — harness misconfigured"
    );

    // Recovery: every supervised service re-registered and answering, and
    // every acknowledged write readable with the exact bytes written.
    let supervised = ["store_1", "store_2", "store_3", "echo1"];
    let deadline = Instant::now() + RECOVERY_DEADLINE;
    let mut verifier = StoreClient::new(net.clone(), "ctrl", me, cluster.addrs.clone());
    loop {
        let mut missing: Vec<String> = Vec::new();
        match AsdClient::connect(&net, &"ctrl".into(), fw.asd_addr.clone(), &me) {
            Ok(mut asd) => {
                for name in supervised {
                    let entry = asd.find(name).ok().flatten();
                    let alive = entry.is_some_and(|e| {
                        ServiceClient::connect(&net, &"ctrl".into(), e.addr, &me)
                            .and_then(|mut c| c.call(&CmdLine::new("ping")))
                            .is_ok()
                    });
                    if !alive {
                        missing.push(format!("service {name}"));
                    }
                }
            }
            Err(e) => missing.push(format!("asd unreachable: {e}")),
        }
        for (key, data) in &acked {
            if verifier.get("chaos", key).as_deref().ok() != Some(data.as_slice()) {
                missing.push(format!("write {key}"));
            }
        }
        if missing.is_empty() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "seed {seed}: not recovered after {RECOVERY_DEADLINE:?}: {missing:?} \
             ({} acked writes, {echo_ok} echo calls succeeded mid-chaos)",
            acked.len()
        );
        std::thread::sleep(Duration::from_millis(100));
    }

    // The failover client converges after the plan ends.
    let mut converged = FailoverClient::bind(net.clone(), "ctrl", me, fw.asd_addr.clone(), "echo1")
        .with_retry_window(Duration::from_secs(5));
    converged
        .call_idempotent(&CmdLine::new("bump"))
        .unwrap_or_else(|e| panic!("seed {seed}: echo1 client never converged: {e}"));

    // The restart budget held: nothing escalated to permanent failure.
    let mut sup =
        ServiceClient::connect(&net, &"ctrl".into(), supervisor.addr().clone(), &me).unwrap();
    let stats = sup.call(&CmdLine::new("superviseStats")).unwrap();
    assert_eq!(
        stats.get_int("escalations"),
        Some(0),
        "seed {seed}: supervisor escalated: {stats:?}"
    );
    assert!(stats.get_int("restarts").unwrap_or(0) >= 0);

    // Teardown: supervisor first (it owns respawned handles); original
    // instances crash-stop so they don't deregister their replacements.
    supervisor.shutdown();
    app.crash();
    for (handle, _) in cluster.replicas {
        handle.crash();
    }
    fw.shutdown();
}

#[test]
fn chaos_soak_seed_a() {
    run_chaos(0xACE1);
}

#[test]
fn chaos_soak_seed_b() {
    run_chaos(0xACE2);
}

#[test]
fn chaos_soak_seed_c() {
    run_chaos(7);
}

/// Seed expansion hook for the CI soak job: `CHAOS_SEEDS="0xACE3,42,7"`
/// runs each listed seed (decimal or 0x-hex).  Without the variable this
/// test is a no-op, so ordinary `cargo test` stays fast.
#[test]
fn chaos_soak_env_seeds() {
    let Ok(spec) = std::env::var("CHAOS_SEEDS") else {
        return;
    };
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let seed = match token.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => token.parse(),
        }
        .unwrap_or_else(|_| panic!("CHAOS_SEEDS: unparsable seed `{token}`"));
        eprintln!("chaos_soak: running env seed {seed:#x}");
        run_chaos(seed);
    }
}
