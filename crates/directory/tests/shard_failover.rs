//! The sharded directory plane under fire: kill one ASD shard replica in
//! the middle of a lookup storm and hold three properties:
//!
//! 1. **Zero lost registrations** — with majority-quorum writes and
//!    renewal-driven repair, every name registered before the fault plan
//!    resolves after it, and a full `list()` still returns the complete
//!    directory.
//! 2. **Monotone incarnations** — the per-name incarnation fence (PR 6)
//!    survives the crash: a register carrying a stale incarnation is
//!    rejected with `E_BADSTATE` by the replicas that outlived the fault,
//!    and a newer incarnation is accepted.
//! 3. **Selective invalidation** — when one shard's leases expire, the
//!    `ResolutionInvalidator` evicts exactly that shard's names from the
//!    shared [`ResolutionCache`]; every other shard's cached resolutions
//!    stay warm.

use ace_core::prelude::*;
use ace_core::protocol::ServiceEntry;
use ace_directory::{spawn_sharded_asd, subscribe_invalidation_all, ShardedAsdClient};
use ace_net::fault::{FaultPlan, FaultPlanConfig};
use ace_security::keys::KeyPair;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: usize = 3;
const REPLICATION: usize = 3;
const SERVICES: usize = 45;
const LEASE: Duration = Duration::from_secs(2);
const RENEW_EVERY: Duration = Duration::from_millis(200);
const PLAN_LEN: Duration = Duration::from_millis(1500);
const RECOVERY_DEADLINE: Duration = Duration::from_secs(15);

/// Renewal phases, flipped by the harness while the renewal thread runs.
const PHASE_RENEW_ALL: usize = 0;
const PHASE_DROP_VICTIM_SHARD: usize = 1;
const PHASE_STOP: usize = 2;

fn entry(i: usize) -> ServiceEntry {
    ServiceEntry {
        name: format!("svc{i}"),
        addr: Addr::new("client", 4000 + i as u16),
        class: format!("Service.App.Chaos.Kind{}", i % 4),
        room: format!("room{}", i % 5),
    }
}

fn await_true(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + RECOVERY_DEADLINE;
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One full chaos run for `seed`: the victim replica is a pure function of
/// the seed, the fault schedule is `FaultPlan::generate` over its host.
fn run_shard_failover(seed: u64) {
    let net = SimNet::new();
    net.add_host("client");
    let hosts: Vec<HostId> = (0..SHARDS * REPLICATION)
        .map(|i| {
            let h = format!("d{i}");
            net.add_host(h.as_str());
            HostId::from(h.as_str())
        })
        .collect();
    let mut dir = spawn_sharded_asd(&net, &hosts, SHARDS, REPLICATION, LEASE, 5900).unwrap();

    let me = KeyPair::generate(&mut rand::thread_rng());
    let metrics = MetricsRegistry::new();
    let pool = Arc::new(LinkPool::with_metrics(&net, "client", me, &metrics));
    let cache = Arc::new(ResolutionCache::with_metrics(&metrics));
    let invalidator = Daemon::spawn(
        &net,
        DaemonConfig::new(
            "invalidator",
            "Service.CacheInvalidator",
            "machineroom",
            "client",
            5850,
        ),
        Box::new(ResolutionInvalidator::new(Arc::clone(&cache))),
    )
    .unwrap();
    let subscribed = subscribe_invalidation_all(
        &net,
        &"client".into(),
        &me,
        &dir.map,
        "invalidator",
        invalidator.addr(),
    )
    .unwrap();
    assert_eq!(
        subscribed,
        SHARDS * REPLICATION,
        "every replica must accept the expiry subscription"
    );

    // Register the fleet (incarnation 1) and prime the shared resolution
    // cache with a long TTL, so the *only* thing that may evict an entry
    // during the run is the invalidator reacting to a lease expiry.
    let mut client = dir.client(Arc::clone(&pool));
    for i in 0..SERVICES {
        let lease = client.register(&entry(i), 1).unwrap();
        assert!(lease > Duration::ZERO, "svc{i}: lease must be granted");
        cache.store(&entry(i).name, entry(i).addr, Duration::from_secs(3600));
    }
    assert_eq!(cache.len(), SERVICES);

    // The victim replica is derived from the seed; its shard is the one
    // whose cache entries must (later) be evicted — and no others.
    let victim_idx = (seed as usize) % (SHARDS * REPLICATION);
    let victim_shard = victim_idx / REPLICATION;
    let victim_replica = victim_idx % REPLICATION;
    let victim_host = dir.replica_host(victim_shard, victim_replica);
    let victim_addr = dir.map.replicas(victim_shard)[victim_replica].clone();
    let map = dir.map.clone();
    let shard_of = move |name: &str| map.shard_for(name);
    let victim_names: Vec<String> = (0..SERVICES)
        .map(|i| entry(i).name)
        .filter(|n| shard_of(n) == victim_shard)
        .collect();
    assert!(
        !victim_names.is_empty(),
        "seed {seed}: victim shard {victim_shard} owns no names — rebalance the fixture"
    );

    let mut fault_config = FaultPlanConfig::new(PLAN_LEN, vec![victim_host.clone()]);
    fault_config.crash_windows = 2;
    fault_config.max_latency = Duration::from_millis(1);
    let plan = FaultPlan::generate(seed, &fault_config);
    assert_eq!(
        plan,
        FaultPlan::generate(seed, &fault_config),
        "fault schedule must be a pure function of the seed"
    );

    let phase = AtomicUsize::new(PHASE_RENEW_ALL);
    let storm_errors = AtomicU64::new(0);
    let storm_ok = AtomicU64::new(0);

    let (mut client, repairs) = std::thread::scope(|scope| {
        // Renewal thread: the writer that owns the registrations keeps
        // every lease alive (phase 0), then deliberately lets the victim
        // shard's leases lapse (phase 1) so expiry-driven invalidation can
        // be observed, then stops (phase 2).
        let phase_ref = &phase;
        let victim_ref = &victim_names;
        let renewer = scope.spawn(move || loop {
            match phase_ref.load(Ordering::SeqCst) {
                PHASE_STOP => break client,
                p => {
                    for i in 0..SERVICES {
                        let name = entry(i).name;
                        if p == PHASE_DROP_VICTIM_SHARD && victim_ref.contains(&name) {
                            continue;
                        }
                        if let Err(err) = client.renew(&name) {
                            panic!("renew {name} failed mid-chaos: {err}");
                        }
                    }
                    std::thread::sleep(RENEW_EVERY);
                }
            }
        });

        // Lookup storm: four readers hammer name lookups across every
        // shard while the fault plan kills and revives the victim host.
        // With per-call replica failover, not a single lookup may fail or
        // come back empty.
        let storm_deadline = Instant::now() + PLAN_LEN;
        let storm: Vec<_> = (0..4)
            .map(|w| {
                let mut reader = dir.client(Arc::clone(&pool));
                let ok = &storm_ok;
                let errors = &storm_errors;
                scope.spawn(move || {
                    let mut i = w;
                    while Instant::now() < storm_deadline {
                        let name = entry(i % SERVICES).name;
                        match reader.lookup(Some(&name), None, None) {
                            Ok(entries) if !entries.is_empty() => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            _ => {
                                errors.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        i += 1;
                    }
                })
            })
            .collect();

        let runner = plan.spawn(&net);
        for h in storm {
            h.join().expect("storm worker panicked");
        }
        runner.join(); // network fully healed

        // Post-plan recovery: a fresh, empty replica comes back at the
        // victim's address and is repaired purely by renewal traffic.
        dir.respawn_replica(&net, victim_shard, victim_replica)
            .unwrap();
        await_true("renewal repair of the respawned replica", || {
            pool.checkout(&victim_addr)
                .and_then(|mut link| link.call(&CmdLine::new("listServices")))
                .ok()
                .and_then(|reply| {
                    reply.get_vector("names").map(|names| {
                        let have: Vec<&str> = names.iter().filter_map(|s| s.as_text()).collect();
                        victim_names.iter().all(|n| have.contains(&n.as_str()))
                    })
                })
                .unwrap_or(false)
        });

        // Property 1: zero lost registrations.
        let mut auditor = dir.client(Arc::clone(&pool));
        let listed = auditor.list().unwrap();
        let expected: Vec<String> = {
            let mut v: Vec<String> = (0..SERVICES).map(|i| entry(i).name).collect();
            v.sort();
            v
        };
        assert_eq!(
            listed, expected,
            "seed {seed}: directory lost registrations across the fault plan"
        );
        for i in 0..SERVICES {
            let found = auditor.find(&entry(i).name).unwrap();
            assert_eq!(
                found.map(|e| e.addr),
                Some(entry(i).addr),
                "seed {seed}: svc{i} must resolve to its registered address"
            );
        }
        assert_eq!(
            storm_errors.load(Ordering::Relaxed),
            0,
            "seed {seed}: lookups failed mid-storm despite replica failover"
        );
        assert!(storm_ok.load(Ordering::Relaxed) > 0, "storm never ran");

        // Property 3 (first half): nothing has been evicted yet — every
        // lease was renewed throughout the plan, so the primed cache is
        // still complete.
        assert_eq!(
            cache.len(),
            SERVICES,
            "seed {seed}: cache entries evicted while every lease was live"
        );

        // Let the victim shard's leases lapse.
        phase.store(PHASE_DROP_VICTIM_SHARD, Ordering::SeqCst);
        await_true("victim shard's cache entries to be evicted", || {
            victim_names.iter().all(|n| cache.get(n).is_none())
        });
        for i in 0..SERVICES {
            let name = entry(i).name;
            if !victim_names.contains(&name) {
                assert!(
                    cache.get(&name).is_some(),
                    "seed {seed}: {name} evicted but its shard never expired anything"
                );
            }
        }

        phase.store(PHASE_STOP, Ordering::SeqCst);
        let client = renewer.join().expect("renewal thread panicked");
        let repairs = client.repairs();
        (client, repairs)
    });

    // The respawned replica really was repaired by renewals, not by luck.
    assert!(
        repairs > 0,
        "seed {seed}: no renew-driven repair happened — the respawned replica \
         should have answered E_NOTFOUND at least once"
    );

    // Property 2: monotone incarnations.  The surviving replicas remember
    // incarnation 1 for a still-live (non-victim) name: a stale register
    // is fenced, a newer one wins.  Do this immediately after the renewal
    // thread stops, while those leases are still live.
    let live = (0..SERVICES)
        .map(entry)
        .find(|e| shard_of(&e.name) != victim_shard)
        .expect("some shard other than the victim owns a name");
    let stale = client.register(&live, 0);
    assert_eq!(
        stale.as_ref().err().and_then(|e| e.code()),
        Some(ErrorCode::BadState),
        "seed {seed}: a stale incarnation must be fenced, got {stale:?}"
    );
    client
        .register(&live, 2)
        .expect("a newer incarnation must be accepted");

    eprintln!(
        "shard_failover seed {seed:#x}: victim s{victim_shard}r{victim_replica} ({}), \
         {} victim names, {} storm lookups, {repairs} repairs, fanouts={}",
        victim_host,
        victim_names.len(),
        storm_ok.load(Ordering::Relaxed),
        client.fanouts(),
    );

    invalidator.shutdown();
    dir.shutdown();
}

#[test]
fn shard_failover_seed_a() {
    run_shard_failover(0xACE9);
}

#[test]
fn shard_failover_seed_b() {
    run_shard_failover(13);
}

/// Seed expansion hook for the CI soak job, mirroring `chaos_fastpath`:
/// `CHAOS_SEEDS="0xACE3,42,7"` runs each listed seed.
#[test]
fn shard_failover_env_seeds() {
    let Ok(spec) = std::env::var("CHAOS_SEEDS") else {
        return;
    };
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let seed = match token.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => token.parse(),
        }
        .unwrap_or_else(|_| panic!("CHAOS_SEEDS: unparsable seed `{token}`"));
        eprintln!("shard_failover: running env seed {seed:#x}");
        run_shard_failover(seed);
    }
}

/// Cross-shard queries keep working while a replica is down: class and
/// room fan-outs merge partial answers from every shard, with per-shard
/// replica failover underneath.
#[test]
fn fanout_queries_survive_a_dead_replica() {
    let net = SimNet::new();
    net.add_host("client");
    let hosts: Vec<HostId> = (0..6)
        .map(|i| {
            let h = format!("d{i}");
            net.add_host(h.as_str());
            HostId::from(h.as_str())
        })
        .collect();
    let dir = spawn_sharded_asd(&net, &hosts, 3, 2, Duration::from_secs(30), 5900).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let pool = Arc::new(LinkPool::new(&net, "client", me));
    let mut client = ShardedAsdClient::new(Arc::clone(&pool), dir.map.clone());
    for i in 0..30 {
        client.register(&entry(i), 1).unwrap();
    }

    net.kill_host(&dir.replica_host(1, 0));

    // Name lookups on every shard still resolve (shard 1 through its
    // surviving replica), and a class fan-out still returns the complete
    // answer across all three shards.
    for i in 0..30 {
        assert!(client.find(&entry(i).name).unwrap().is_some());
    }
    let kind0 = client
        .lookup(None, Some("Service.App.Chaos.Kind0"), None)
        .unwrap();
    assert_eq!(kind0.len(), 8); // i % 4 == 0 for 8 of 0..30
    let room3 = client.lookup(None, None, Some("room3")).unwrap();
    assert_eq!(room3.len(), 6); // i % 5 == 3 for 6 of 0..30
    assert!(client.fanouts() >= 2);

    net.revive_host(&dir.replica_host(1, 0));
    dir.shutdown();
}
