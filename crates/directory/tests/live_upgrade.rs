//! Live upgrade: supervisor-driven rolling restarts with zero dropped
//! sessions.
//!
//! Pinned properties:
//!
//! 1. **State, tickets, and listeners survive the swap** — behavior state
//!    rides the sealed snapshot, resumption tickets stay valid (the vault
//!    and identity carry over), and notification registrations keep firing
//!    from the replacement incarnation.
//! 2. **`E_UPGRADING` is retryable and evicts the fast path** — a client
//!    that hits the quiesce gate discards its pooled link, evicts parked
//!    idle links, drops the cached resolution, and retries to success;
//!    the verb executes exactly once.
//! 3. **Incarnation fencing wins the lease race** — the replacement
//!    re-registers before the old lease expires, and any straggler
//!    `register`/`renewLease` from the superseded generation is refused
//!    with `E_BADSTATE` without clobbering the live registration.
//! 4. **A refused restore aborts the swap** — the old incarnation keeps
//!    serving with its gate re-opened.

use ace_core::prelude::*;
use ace_core::protocol::{open_snapshot, seal_snapshot};
use ace_core::supervise::{live_upgrade, Respawn, RestartPolicy, SupervisedSpec, Supervisor};
use ace_core::UpgradeError;
use ace_security::keys::KeyPair;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// A counter whose value must survive upgrades via the snapshot protocol.
/// Executions are also counted outside the daemon so exactly-once claims
/// survive the swap.
struct Counter {
    count: i64,
    exec: Arc<AtomicU64>,
}

impl Counter {
    fn fresh(exec: &Arc<AtomicU64>) -> Box<Counter> {
        Box::new(Counter {
            count: 0,
            exec: Arc::clone(exec),
        })
    }
}

impl ServiceBehavior for Counter {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("bump", "increment the counter"))
            .with(CmdSpec::new("value", "read the counter"))
    }

    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "bump" => {
                self.count += 1;
                self.exec.fetch_add(1, Ordering::SeqCst);
                let count = self.count;
                Reply::ok_with(|c| c.arg("count", count))
            }
            "value" => {
                let count = self.count;
                Reply::ok_with(|c| c.arg("count", count))
            }
            _ => Reply::err(ErrorCode::Internal, "unrouted"),
        }
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        Some(seal_snapshot(
            "counter",
            CmdLine::new("counterState").arg("count", self.count),
        ))
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let state = open_snapshot("counter", snapshot)?;
        self.count = state
            .get_int("count")
            .ok_or_else(|| "counter snapshot: missing count".to_string())?;
        Ok(())
    }
}

/// A replacement that expects a different snapshot kind — every restore is
/// refused, which must abort the swap.
struct Refusenik;
impl ServiceBehavior for Refusenik {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("bump", "increment"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), String> {
        open_snapshot("somethingElse", snapshot).map(|_| ())
    }
}

/// Records notifications it receives.
#[derive(Default)]
struct Recorder {
    heard: Arc<Mutex<Vec<String>>>,
}

impl ServiceBehavior for Recorder {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(
            CmdSpec::new("onBump", "the counter bumped")
                .optional("service", ArgType::Str, "")
                .optional("cmd", ArgType::Str, ""),
        )
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        self.heard
            .lock()
            .unwrap()
            .push(cmd.get_text("cmd").unwrap_or("?").to_string());
        Reply::ok()
    }
}

struct Rig {
    net: SimNet,
    fw: ace_directory::Framework,
    me: KeyPair,
    exec: Arc<AtomicU64>,
}

fn rig(lease: Duration) -> Rig {
    let net = SimNet::new();
    for h in ["ctrl", "app"] {
        net.add_host(h);
    }
    let fw = ace_directory::bootstrap(&net, "ctrl", lease).unwrap();
    Rig {
        net,
        fw,
        me: KeyPair::generate(&mut rand::thread_rng()),
        exec: Arc::new(AtomicU64::new(0)),
    }
}

impl Rig {
    fn spawn_counter(&self) -> DaemonHandle {
        Daemon::spawn(
            &self.net,
            self.fw
                .service_config("counter1", "Service.App.Counter", "office", "app", 4700)
                .with_lease_renew(Duration::from_millis(100)),
            Counter::fresh(&self.exec),
        )
        .unwrap()
    }

    fn client_to(&self, addr: &Addr) -> ServiceClient {
        ServiceClient::connect(&self.net, &"ctrl".into(), addr.clone(), &self.me).unwrap()
    }
}

fn ping_incarnation(client: &mut ServiceClient) -> u64 {
    let reply = client.call(&CmdLine::new("ping")).unwrap();
    reply.get_int("incarnation").unwrap_or(-1) as u64
}

/// Tentpole end-to-end: counter state, resumption tickets, and the
/// notification registry all survive the hot swap, and the address keeps
/// serving under the next incarnation.
#[test]
fn upgrade_carries_state_tickets_and_listeners() {
    let r = rig(Duration::from_secs(5));
    let old = r.spawn_counter();
    let target = old.addr().clone();

    // Seed state and a notification listener.
    let recorder = Recorder::default();
    let heard = Arc::clone(&recorder.heard);
    let rec = Daemon::spawn(
        &r.net,
        r.fw.service_config("recorder", "Service.Test", "office", "ctrl", 4710),
        Box::new(recorder),
    )
    .unwrap();
    let mut client = r.client_to(&target);
    client.call_ok(&CmdLine::new("bump")).unwrap();
    client.call_ok(&CmdLine::new("bump")).unwrap();
    client
        .call_ok(
            &CmdLine::new("addNotification")
                .arg("cmd", "bump")
                .arg("service", "recorder")
                .arg("host", "ctrl")
                .arg("port", 4710)
                .arg("notifyCmd", "onBump"),
        )
        .unwrap();
    assert_eq!(ping_incarnation(&mut client), 0);

    // Prime the resumption fast path: a pooled full handshake harvests a
    // ticket for this target.
    let metrics = MetricsRegistry::new();
    let pool = Arc::new(LinkPool::with_metrics(&r.net, "ctrl", r.me, &metrics));
    pool.checkout(&target).unwrap().discard();

    // Hot swap.
    let persisted: Arc<Mutex<Vec<(String, usize)>>> = Arc::new(Mutex::new(Vec::new()));
    let sink = Arc::clone(&persisted);
    let mut persist = move |name: &str, bytes: &[u8]| -> Result<(), String> {
        sink.lock().unwrap().push((name.to_string(), bytes.len()));
        Ok(())
    };
    let (fresh, stats) = live_upgrade(
        &r.net,
        &"ctrl".into(),
        &r.me,
        &old,
        old.config().clone(),
        Counter::fresh(&r.exec),
        Some(&mut persist),
    )
    .unwrap();
    assert_eq!(fresh.incarnation(), 1);
    assert!(stats.pause >= stats.quiesce);
    assert_eq!(
        persisted.lock().unwrap().len(),
        1,
        "the sealed snapshot must be persisted exactly once"
    );

    // State survived; the replacement answers on the same address.
    let mut client = r.client_to(&target);
    assert_eq!(ping_incarnation(&mut client), 1);
    let reply = client.call(&CmdLine::new("value")).unwrap();
    assert_eq!(reply.get_int("count"), Some(2), "count lost in the swap");

    // Sessions resume: the old parked link is stale, but the dial rides
    // the pre-upgrade ticket against the carried-over vault.
    let resumed = pool.checkout(&target).unwrap();
    assert!(
        resumed.resumed(),
        "post-upgrade dial must resume, not re-handshake"
    );
    assert!(metrics.counter("link.resume_hits").get() >= 1);

    // Listeners carried: a post-upgrade bump still notifies the recorder.
    client.call_ok(&CmdLine::new("bump")).unwrap();
    let deadline = Instant::now() + Duration::from_secs(5);
    while !heard.lock().unwrap().iter().any(|c| c == "bump") {
        assert!(
            Instant::now() < deadline,
            "notification registry lost in the swap"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    drop(resumed);
    fresh.shutdown();
    rec.shutdown();
    r.fw.shutdown();
}

/// Satellite 2: a quiesced daemon bounces a verb with `E_UPGRADING`; the
/// failover client evicts its pooled link, the parked idles, and the
/// cached resolution, then retries to success once the gate re-opens.
/// The verb executes exactly once.
#[test]
fn upgrading_rejection_evicts_fast_path_and_retries() {
    let r = rig(Duration::from_secs(5));
    let daemon = r.spawn_counter();
    let target = daemon.addr().clone();

    let metrics = MetricsRegistry::new();
    let pool = Arc::new(LinkPool::with_metrics(&r.net, "ctrl", r.me, &metrics));
    let cache = Arc::new(ResolutionCache::with_metrics(&metrics));
    let mut failover = FailoverClient::bind(
        r.net.clone(),
        "ctrl",
        r.me,
        r.fw.asd_addr.clone(),
        "counter1",
    )
    .with_retry_window(Duration::from_secs(5))
    .with_pool(Arc::clone(&pool))
    .with_resolution_cache(Arc::clone(&cache));

    failover.call(&CmdLine::new("bump")).unwrap();
    assert_eq!(r.exec.load(Ordering::SeqCst), 1);
    // Park one extra idle link so the eviction has something to clear.
    drop(pool.checkout(&target).unwrap());
    assert_eq!(pool.idle_count(&target), 1);

    // Close the gate, and re-open it shortly from another thread.
    let mut admin = r.client_to(&target);
    let status = admin
        .call(&CmdLine::new("aceUpgrade").arg("phase", "quiesce"))
        .unwrap();
    assert!(status.get_int("incarnation").is_some());
    let net = r.net.clone();
    let me = r.me;
    let addr = target.clone();
    let opener = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(300));
        let mut c = ServiceClient::connect(&net, &"ctrl".into(), addr, &me).unwrap();
        c.call_ok(&CmdLine::new("aceUpgrade").arg("phase", "abort"))
            .unwrap();
    });

    // The held-over link and the parked idle both point at the quiescing
    // instance; the call must ride out the gate and execute exactly once.
    let reply = failover.call(&CmdLine::new("bump")).unwrap();
    opener.join().unwrap();
    assert_eq!(reply.get_int("count"), Some(2));
    assert_eq!(
        r.exec.load(Ordering::SeqCst),
        2,
        "E_UPGRADING retries must not double-execute"
    );
    assert!(
        failover.resolutions() >= 2,
        "the cached resolution must be dropped on E_UPGRADING"
    );

    daemon.shutdown();
    r.fw.shutdown();
}

/// Satellite 1 (lease-race regression): the replacement registers under
/// the bumped incarnation before the old lease lapses, and stragglers of
/// the superseded generation are fenced out with `E_BADSTATE` — they can
/// neither renew nor re-register over the live instance.
#[test]
fn stale_incarnation_stragglers_are_fenced_out() {
    // Short lease: the upgrade must beat it.
    let r = rig(Duration::from_millis(600));
    let old = r.spawn_counter();
    let target = old.addr().clone();

    let (fresh, _) = live_upgrade(
        &r.net,
        &"ctrl".into(),
        &r.me,
        &old,
        old.config().clone(),
        Counter::fresh(&r.exec),
        None,
    )
    .unwrap();

    let mut asd = r.client_to(&r.fw.asd_addr);
    let fenced = |err: ClientError| match err {
        ClientError::Service { code, .. } => code == ErrorCode::BadState,
        _ => false,
    };

    // A straggler renewal from the retired generation (incarnation 0).
    let stale_renew = asd.call(
        &CmdLine::new("renewLease")
            .arg("name", "counter1")
            .arg("incarnation", 0),
    );
    assert!(
        stale_renew.is_err_and(fenced),
        "stale renewal must be refused with BadState"
    );
    // A straggler re-registration pointing somewhere else entirely.
    let stale_register = asd.call(
        &CmdLine::new("register")
            .arg("name", "counter1")
            .arg("host", "ctrl")
            .arg("port", 9999)
            .arg("room", "office")
            .arg("class", "Service.App.Counter")
            .arg("incarnation", 0),
    );
    assert!(
        stale_register.is_err_and(fenced),
        "stale re-registration must be refused with BadState"
    );

    // The live registration is untouched and outlives the *old* lease:
    // the replacement's renewals (at incarnation 1) keep it alive.
    std::thread::sleep(Duration::from_millis(900));
    let mut finder =
        ace_directory::AsdClient::connect(&r.net, &"ctrl".into(), r.fw.asd_addr.clone(), &r.me)
            .unwrap();
    let found = finder.find("counter1").unwrap();
    assert_eq!(
        found.map(|e| e.addr.port),
        Some(target.port),
        "replacement registration clobbered or expired"
    );

    fresh.shutdown();
    r.fw.shutdown();
}

/// A refused restore aborts the swap before anything is torn down: the old
/// incarnation keeps serving with its quiesce gate re-opened.
#[test]
fn refused_restore_aborts_and_old_keeps_serving() {
    let r = rig(Duration::from_secs(5));
    let old = r.spawn_counter();
    let target = old.addr().clone();
    let mut client = r.client_to(&target);
    client.call_ok(&CmdLine::new("bump")).unwrap();

    let err = live_upgrade(
        &r.net,
        &"ctrl".into(),
        &r.me,
        &old,
        old.config().clone(),
        Box::new(Refusenik),
        None,
    )
    .unwrap_err();
    assert!(
        matches!(err, UpgradeError::Restore(_)),
        "expected a restore refusal, got {err}"
    );

    // Old incarnation still serving, gate open, state intact.
    assert_eq!(ping_incarnation(&mut client), 0);
    let reply = client.call(&CmdLine::new("value")).unwrap();
    assert_eq!(reply.get_int("count"), Some(1));
    client.call_ok(&CmdLine::new("bump")).unwrap();

    old.shutdown();
    r.fw.shutdown();
}

/// The supervisor's wire-driven path: `upgradeService` hot-swaps an
/// adopted instance via the spec's upgrade factory, and the service stays
/// supervised afterwards.
#[test]
fn supervisor_upgrades_over_the_wire() {
    let r = rig(Duration::from_secs(5));
    let app = r.spawn_counter();
    let target = app.addr().clone();
    let mut client = r.client_to(&target);
    client.call_ok(&CmdLine::new("bump")).unwrap();

    let fw_asd = r.fw.asd_addr.clone();
    let fw_roomdb = r.fw.roomdb_addr.clone();
    let respawn_exec = Arc::clone(&r.exec);
    let upgrade_exec = Arc::clone(&r.exec);
    let spec = SupervisedSpec::new(
        "counter1",
        Box::new(move |net: &SimNet| {
            Daemon::spawn(
                net,
                DaemonConfig::new("counter1", "Service.App.Counter", "office", "app", 4700)
                    .with_asd(fw_asd.clone())
                    .with_roomdb(fw_roomdb.clone()),
                Counter::fresh(&respawn_exec),
            )
            .map(Respawn::from)
        }),
    )
    .with_upgrade(Box::new(move || Counter::fresh(&upgrade_exec)));
    let supervisor = Daemon::spawn(
        &r.net,
        r.fw.service_config(
            "supervisor",
            "Service.Supervisor",
            "machineroom",
            "ctrl",
            4720,
        ),
        Box::new(Supervisor::new(vec![spec], RestartPolicy::default()).adopt(app)),
    )
    .unwrap();

    let mut sup = r.client_to(supervisor.addr());
    let reply = sup
        .call(&CmdLine::new("upgradeService").arg("name", "counter1"))
        .unwrap();
    assert!(reply.get_int("pauseMs").is_some());

    // Same address, next incarnation, state carried.
    let mut client = r.client_to(&target);
    assert_eq!(ping_incarnation(&mut client), 1);
    assert_eq!(
        client
            .call(&CmdLine::new("value"))
            .unwrap()
            .get_int("count"),
        Some(1)
    );

    // Still supervised: the report sees one service, none pending/failed.
    let stats = sup.call(&CmdLine::new("superviseStats")).unwrap();
    assert_eq!(stats.get_int("supervised"), Some(1));

    supervisor.shutdown(); // also shuts the adopted replacement down
    r.fw.shutdown();
}
