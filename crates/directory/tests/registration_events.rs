//! Fig. 9 step 4: "this registration may trigger notifications to other ACE
//! services (if any are awaiting notifications on it) that this new service
//! is now running and available."
//!
//! The ASD executes `register` like any other command, so the framework's
//! notification machinery covers it: listeners on `register` hear about
//! every arrival, and listeners on `serviceExpired` (an ASD event) hear
//! about every lease death.

use ace_core::prelude::*;
use ace_directory::{bootstrap, AsdClient};
use ace_security::keys::KeyPair;
use std::sync::{Arc, Mutex};
use std::time::Duration;

#[derive(Default)]
struct Recorder {
    arrivals: Arc<Mutex<Vec<String>>>,
    expiries: Arc<Mutex<Vec<String>>>,
}

impl ServiceBehavior for Recorder {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("onRegistered", "a service registered")
                    .optional("service", ArgType::Str, "")
                    .optional("cmd", ArgType::Str, "")
                    .optional("name", ArgType::Word, "")
                    .optional("host", ArgType::Word, "")
                    .optional("port", ArgType::Int, "")
                    .optional("room", ArgType::Word, "")
                    .optional("class", ArgType::Str, "")
                    .optional("incarnation", ArgType::Int, ""),
            )
            .with(
                CmdSpec::new("onExpired", "a lease lapsed")
                    .optional("service", ArgType::Str, "")
                    .optional("cmd", ArgType::Str, "")
                    .optional("name", ArgType::Word, ""),
            )
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        let name = cmd.get_text("name").unwrap_or("?").to_string();
        match cmd.name() {
            "onRegistered" => self.arrivals.lock().unwrap().push(name),
            "onExpired" => self.expiries.lock().unwrap().push(name),
            _ => {}
        }
        Reply::ok()
    }
}

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new()
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
}

#[test]
fn asd_registration_and_expiry_notify_listeners() {
    let net = SimNet::new();
    for h in ["core", "bar"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_millis(300)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());

    let recorder = Recorder::default();
    let arrivals = Arc::clone(&recorder.arrivals);
    let expiries = Arc::clone(&recorder.expiries);
    let rec = Daemon::spawn(
        &net,
        fw.service_config("recorder", "Service.Test", "machineroom", "core", 6100),
        Box::new(recorder),
    )
    .unwrap();

    // Listen on the ASD for both the command and the event.
    let mut asd_client =
        ServiceClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();
    for (what, sink) in [
        ("register", "onRegistered"),
        ("serviceExpired", "onExpired"),
    ] {
        asd_client
            .call_ok(
                &CmdLine::new("addNotification")
                    .arg("cmd", what)
                    .arg("service", "recorder")
                    .arg("host", "core")
                    .arg("port", 6100)
                    .arg("notifyCmd", sink),
            )
            .unwrap();
    }

    // A new service arrives (its spawn registers with the ASD)…
    let newcomer = Daemon::spawn(
        &net,
        fw.service_config("newcomer", "Service.Echo", "hawk", "bar", 6000)
            .with_lease_renew(Duration::from_millis(100)),
        Box::new(Echo),
    )
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while !arrivals.lock().unwrap().contains(&"newcomer".to_string()) {
        assert!(
            std::time::Instant::now() < deadline,
            "arrival never notified"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // …then crashes; the expiry event follows.
    newcomer.crash();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while !expiries.lock().unwrap().contains(&"newcomer".to_string()) {
        assert!(
            std::time::Instant::now() < deadline,
            "expiry never notified"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    rec.shutdown();
    fw.shutdown();
}

/// A lapsed lease fires exactly one `serviceExpired` per service — the
/// reaper must not re-notify on later sweeps — and the dead entry is
/// purged from lookups.
#[test]
fn lease_expiry_fires_once_per_service_and_purges_entry() {
    let net = SimNet::new();
    for h in ["core", "bar", "tube"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_millis(300)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());

    let recorder = Recorder::default();
    let expiries = Arc::clone(&recorder.expiries);
    let rec = Daemon::spawn(
        &net,
        fw.service_config("recorder", "Service.Test", "machineroom", "core", 6100),
        Box::new(recorder),
    )
    .unwrap();
    let mut asd_client =
        ServiceClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();
    asd_client
        .call_ok(
            &CmdLine::new("addNotification")
                .arg("cmd", "serviceExpired")
                .arg("service", "recorder")
                .arg("host", "core")
                .arg("port", 6100)
                .arg("notifyCmd", "onExpired"),
        )
        .unwrap();

    // Two victims on different hosts; both crash (no deregistration), so
    // only the lease reaper can remove them.
    let victims = ["victim_a", "victim_b"];
    let mut handles = Vec::new();
    for (name, host) in victims.iter().zip(["bar", "tube"]) {
        handles.push(
            Daemon::spawn(
                &net,
                fw.service_config(name, "Service.Echo", "hawk", host, 6000)
                    .with_lease_renew(Duration::from_millis(100)),
                Box::new(Echo),
            )
            .unwrap(),
        );
    }
    let mut asd = AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();
    for name in victims {
        assert!(asd.find(name).unwrap().is_some(), "{name} never registered");
    }
    for h in handles {
        h.crash();
    }

    // Wait for both expiries, then several extra reaper sweeps to catch
    // any duplicate notification.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let seen = expiries.lock().unwrap().clone();
        if victims.iter().all(|v| seen.iter().any(|s| s == v)) {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "expiries never fired: {seen:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    std::thread::sleep(Duration::from_millis(900)); // ≥ 2 full lease periods
    let seen = expiries.lock().unwrap().clone();
    for name in victims {
        assert_eq!(
            seen.iter().filter(|s| s.as_str() == name).count(),
            1,
            "expected exactly one serviceExpired for {name}, saw {seen:?}"
        );
        assert!(
            asd.find(name).unwrap().is_none(),
            "{name} still resolvable after expiry"
        );
    }

    rec.shutdown();
    fw.shutdown();
}
