//! Overload regressions for the directory tier: the Net Logger's bounded
//! rings must absorb a flood by evicting oldest-first — retention pinned at
//! the ring bound, every eviction counted in both the `logStats` reply and
//! the `shed.*` metrics — instead of growing without limit.

use ace_core::prelude::*;
use ace_directory::{LoggerClient, NetLogger};
use ace_security::keys::KeyPair;

#[test]
fn netlogger_flood_is_bounded_and_counted() {
    let net = SimNet::new();
    net.add_host("h");
    let logger = Daemon::spawn(
        &net,
        DaemonConfig::new("logger", "Service.Logger", "room", "h", 4700),
        Box::new(NetLogger::new(8).with_event_capacity(4)),
    )
    .unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut client = LoggerClient::connect(&net, &"h".into(), logger.addr().clone(), &me).unwrap();

    // Flood the record ring: 50 appends into 8 slots.
    for i in 0..50 {
        client.log("info", &format!("flood {i}")).unwrap();
    }
    // Flood one service's event ring: 20 events into 4 slots.  A quiet
    // service's ring must not be collateral damage.
    for i in 0..20 {
        client
            .event("stormy", "tick", &CmdLine::new("tick").arg("i", i as i64))
            .unwrap();
    }
    client.event("calm", "tick", &CmdLine::new("tick")).unwrap();

    // Retention stays at the bound and the newest entries won.
    let rows = client.tail(100, None).unwrap();
    assert_eq!(rows.len(), 8, "record ring grew past its bound");
    assert_eq!(rows.last().unwrap().4, "flood 49");
    let events = client.query_events("stormy", None, 100).unwrap();
    assert_eq!(events.len(), 4, "event ring grew past its bound");
    assert_eq!(events.last().unwrap().4.get_int("i"), Some(19));
    assert_eq!(client.query_events("calm", None, 100).unwrap().len(), 1);

    // Every eviction is visible, and the two accountings agree.
    let mut raw = ServiceClient::connect(&net, &"h".into(), logger.addr().clone(), &me).unwrap();
    let stats = raw.call(&CmdLine::new("logStats")).unwrap();
    assert_eq!(stats.get_int("recordsShed"), Some(42));
    assert_eq!(stats.get_int("eventsShed"), Some(16));
    let report = StatsReport::from_cmdline(&raw.call(&CmdLine::new("aceStats")).unwrap());
    assert_eq!(report.counters.get("shed.records").copied(), Some(42));
    assert_eq!(report.counters.get("shed.events").copied(), Some(16));

    logger.shutdown();
}
