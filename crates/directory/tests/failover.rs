//! Mobile-socket failover (§9 future work): clients bound to a service
//! *name* survive the service dying and coming back elsewhere.

use ace_core::prelude::*;
use ace_directory::bootstrap;
use ace_security::keys::KeyPair;
use std::time::Duration;

struct Counter(i64);
impl ServiceBehavior for Counter {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("increment", "bump"))
            .with(CmdSpec::new("read", "value"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "increment" => {
                self.0 += 1;
                Reply::ok_with(|c| c.arg("value", self.0))
            }
            "read" => Reply::ok_with(|c| c.arg("value", self.0)),
            _ => Reply::err(ErrorCode::Internal, "unrouted"),
        }
    }
}

#[test]
fn failover_client_follows_service_across_hosts() {
    let net = SimNet::new();
    for h in ["core", "hostA", "hostB"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_millis(400)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());

    // First incarnation on hostA.
    let first = Daemon::spawn(
        &net,
        fw.service_config("counter", "Service.Counter", "hawk", "hostA", 6000)
            .with_lease_renew(Duration::from_millis(100)),
        Box::new(Counter(0)),
    )
    .unwrap();

    let mut client =
        ace_core::FailoverClient::bind(net.clone(), "core", me, fw.asd_addr.clone(), "counter")
            .with_retry_window(Duration::from_secs(10));

    let r = client.call(&CmdLine::new("increment")).unwrap();
    assert_eq!(r.get_int("value"), Some(1));
    assert_eq!(client.resolutions(), 1);

    // The service's host dies; a replacement comes up on hostB (a fresh
    // instance — state continuity is the robust-app/store layer's job).
    net.kill_host(&"hostA".into());
    first.crash();
    let second = Daemon::spawn(
        &net,
        fw.service_config("counter", "Service.Counter", "hawk", "hostB", 6000),
        Box::new(Counter(100)),
    )
    .unwrap();

    // The same bound client keeps working — idempotent reads retry through
    // a re-resolution.
    let r = client.call_idempotent(&CmdLine::new("read")).unwrap();
    assert_eq!(r.get_int("value"), Some(100), "reached the hostB instance");
    assert!(client.resolutions() >= 2, "re-resolved through the ASD");

    second.shutdown();
    fw.shutdown();
}

#[test]
fn failover_client_gives_up_after_window() {
    let net = SimNet::new();
    net.add_host("core");
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut client = ace_core::FailoverClient::bind(
        net.clone(),
        "core",
        me,
        fw.asd_addr.clone(),
        "ghost_service",
    )
    .with_retry_window(Duration::from_millis(200));

    let t = std::time::Instant::now();
    let err = client.call(&CmdLine::new("read")).unwrap_err();
    assert!(t.elapsed() >= Duration::from_millis(200));
    assert_eq!(err.code(), Some(ErrorCode::NotFound));
    fw.shutdown();
}

/// A dead target trips the client's circuit breaker: subsequent calls fail
/// fast *locally* (no network traffic, no retry-window wait), and once the
/// cool-down lapses a half-open probe closes the breaker again.
#[test]
fn circuit_breaker_fast_fails_and_recovers() {
    use ace_core::{BreakerConfig, BreakerRegistry};
    use std::sync::Arc;

    let net = SimNet::new();
    for h in ["core", "hostA"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let service = Daemon::spawn(
        &net,
        fw.service_config("counter", "Service.Counter", "hawk", "hostA", 6000),
        Box::new(Counter(0)),
    )
    .unwrap();

    let breaker = Arc::new(BreakerRegistry::new(BreakerConfig {
        window: Duration::from_secs(5),
        failure_threshold: 3,
        // Much longer than the client's retry window, so an opened breaker
        // stays open across every retry of the calls below — no half-open
        // probe sneaks a dial in mid-assertion.
        open_for: Duration::from_millis(1500),
        half_open_probes: 1,
    }));
    let mut client =
        ace_core::FailoverClient::bind(net.clone(), "core", me, fw.asd_addr.clone(), "counter")
            .with_retry_window(Duration::from_millis(100))
            .with_breaker(Arc::clone(&breaker));
    client.call(&CmdLine::new("increment")).unwrap();

    // Cut the service off.  Retries inside the window keep failing to
    // dial, and each failed dial feeds the breaker until it opens.
    net.partition(&"core".into(), &"hostA".into());
    for _ in 0..3 {
        assert!(client.call_idempotent(&CmdLine::new("read")).is_err());
    }
    assert!(
        breaker.is_open(&service.addr().clone()),
        "repeated dial failures never opened the breaker"
    );

    // While open, attempts are rejected locally: retryable E_BUSY, counted,
    // and far faster than the dial-and-retry path.
    let before = client.breaker_fast_fails();
    let t = std::time::Instant::now();
    let err = client.call_idempotent(&CmdLine::new("read")).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Busy));
    assert!(
        client.breaker_fast_fails() > before,
        "open breaker did not fast-fail"
    );
    assert!(
        t.elapsed() < Duration::from_secs(1),
        "fast-fail path waited on the network"
    );

    // Heal and let the cool-down lapse: the half-open probe succeeds and
    // the breaker closes for good.
    net.heal_all();
    std::thread::sleep(Duration::from_millis(1600));
    let r = client.call_idempotent(&CmdLine::new("read")).unwrap();
    assert_eq!(r.get_int("value"), Some(1));
    assert!(!breaker.is_open(&service.addr().clone()));
    client.call(&CmdLine::new("increment")).unwrap();

    service.shutdown();
    fw.shutdown();
}

#[test]
fn non_idempotent_calls_do_not_retry_after_send() {
    let net = SimNet::new();
    for h in ["core", "hostA"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let service = Daemon::spawn(
        &net,
        fw.service_config("counter", "Service.Counter", "hawk", "hostA", 6000),
        Box::new(Counter(0)),
    )
    .unwrap();

    let mut client =
        ace_core::FailoverClient::bind(net.clone(), "core", me, fw.asd_addr.clone(), "counter")
            .with_retry_window(Duration::from_millis(500));
    client.call(&CmdLine::new("increment")).unwrap();

    // Sever the link mid-session: the next non-idempotent call fails fast
    // rather than risking double execution on an established connection.
    net.partition(&"core".into(), &"hostA".into());
    let t = std::time::Instant::now();
    assert!(client.call(&CmdLine::new("increment")).is_err());
    assert!(
        t.elapsed() < Duration::from_millis(400),
        "no retry loop for non-idempotent calls on an established link"
    );

    net.heal_all();
    service.shutdown();
    fw.shutdown();
}
