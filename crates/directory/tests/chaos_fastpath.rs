//! Connection fast path under fire: pooled links, session resumption, and
//! lease-aware resolution caching must never trade correctness for speed.
//!
//! Three properties are pinned here:
//!
//! 1. **Discard, never repair** — a pooled link to a restarted daemon is
//!    detected stale at checkout and discarded; replies always come from
//!    the *current* incarnation of a service (the incarnation token a
//!    restarted service stamps into every reply is monotone across an
//!    entire chaos run).
//! 2. **At-most-once survives pooling** — a command that was sent on an
//!    established (held-over or reused) pooled link and lost its reply is
//!    *not* retried by `call`, and *is* retried by `call_idempotent`,
//!    observable in an execution counter that lives outside the daemon.
//! 3. **The fast path re-primes after failure** — once a restarted target
//!    answers a full handshake again, subsequent pool misses ride the
//!    freshly harvested resumption ticket.

use ace_core::prelude::*;
use ace_core::supervise::{wire_supervisor, Respawn, RestartPolicy, SupervisedSpec, Supervisor};
use ace_core::RetryPolicy;
use ace_net::fault::{FaultPlan, FaultPlanConfig};
use ace_security::keys::KeyPair;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const PLAN_LEN: Duration = Duration::from_millis(2000);
const RECOVERY_DEADLINE: Duration = Duration::from_secs(15);

/// Echo service stamping every reply with its spawn incarnation.  A stale
/// reply from a pre-restart link would carry an older incarnation than one
/// already observed — the monotonicity the chaos run asserts.
struct TokenEcho {
    incarnation: u64,
    exec: Arc<AtomicU64>,
}

impl ServiceBehavior for TokenEcho {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(CmdSpec::new("token", "who is answering"))
            .with(CmdSpec::new("bump", "count an execution"))
            .with(CmdSpec::new(
                "slowBump",
                "count an execution, then stall before replying",
            ))
    }

    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "token" => {
                let inc = self.incarnation;
                Reply::ok_with(|c| c.arg("incarnation", inc as i64))
            }
            "bump" => {
                let n = self.exec.fetch_add(1, Ordering::SeqCst) + 1;
                Reply::ok_with(|c| c.arg("count", n as i64))
            }
            "slowBump" => {
                let n = self.exec.fetch_add(1, Ordering::SeqCst) + 1;
                // Window for the harness to kill this host after the
                // command has executed but before the reply is sent.
                std::thread::sleep(Duration::from_millis(400));
                Reply::ok_with(|c| c.arg("count", n as i64))
            }
            _ => Reply::err(ErrorCode::Internal, "unrouted"),
        }
    }
}

/// Spawn the framework tier plus a supervised `TokenEcho` on `app_host`,
/// returning what the scenarios need to drive and tear it down.
struct Scenario {
    net: SimNet,
    fw: ace_directory::Framework,
    supervisor: DaemonHandle,
    app: DaemonHandle,
    invalidator: DaemonHandle,
    exec: Arc<AtomicU64>,
    incarnations: Arc<AtomicU64>,
    me: KeyPair,
    pool: Arc<LinkPool>,
    cache: Arc<ResolutionCache>,
    metrics: MetricsRegistry,
}

fn scenario(lease: Duration) -> Scenario {
    let net = SimNet::new();
    for h in ["ctrl", "app1"] {
        net.add_host(h);
    }
    let fw = ace_directory::bootstrap(&net, "ctrl", lease).unwrap();
    let exec = Arc::new(AtomicU64::new(0));
    let incarnations = Arc::new(AtomicU64::new(1));
    let app = Daemon::spawn(
        &net,
        fw.service_config("token1", "Service.App.Token", "office", "app1", 4800),
        Box::new(TokenEcho {
            incarnation: 1,
            exec: Arc::clone(&exec),
        }),
    )
    .unwrap();

    // Supervisor: every respawn gets the next incarnation number.
    let fw_ref = (
        fw.asd_addr.clone(),
        fw.roomdb_addr.clone(),
        fw.logger_addr.clone(),
    );
    let spawn_exec = Arc::clone(&exec);
    let spawn_inc = Arc::clone(&incarnations);
    let specs = vec![SupervisedSpec::new(
        "token1",
        Box::new(move |net: &SimNet| {
            let incarnation = spawn_inc.fetch_add(1, Ordering::SeqCst) + 1;
            Daemon::spawn(
                net,
                DaemonConfig::new("token1", "Service.App.Token", "office", "app1", 4800)
                    .with_asd(fw_ref.0.clone())
                    .with_roomdb(fw_ref.1.clone())
                    .with_logger(fw_ref.2.clone()),
                Box::new(TokenEcho {
                    incarnation,
                    exec: Arc::clone(&spawn_exec),
                }),
            )
            .map(Respawn::from)
        }),
    )];
    let policy = RestartPolicy::default()
        .with_max_restarts(10)
        .with_window(Duration::from_secs(30))
        .with_backoff(
            RetryPolicy::new(Duration::from_millis(50)).with_cap(Duration::from_millis(500)),
        )
        .with_max_spawn_attempts(30)
        .with_probe_failures(2);
    let supervisor = Daemon::spawn(
        &net,
        fw.service_config(
            "supervisor",
            "Service.Supervisor",
            "machineroom",
            "ctrl",
            5900,
        ),
        Box::new(Supervisor::new(specs, policy).with_probe_interval(Duration::from_millis(150))),
    )
    .unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    wire_supervisor(&net, &supervisor, &fw.asd_addr, &me).unwrap();

    // Shared fast-path state: one pool, one resolution cache, one metrics
    // registry observing both, and an invalidator daemon fed by the ASD's
    // `serviceExpired` notifications.
    let metrics = MetricsRegistry::new();
    let pool = Arc::new(LinkPool::with_metrics(&net, "ctrl", me, &metrics));
    let cache = Arc::new(ResolutionCache::with_metrics(&metrics));
    let invalidator = Daemon::spawn(
        &net,
        fw.service_config(
            "invalidator",
            "Service.CacheInvalidator",
            "machineroom",
            "ctrl",
            5950,
        ),
        Box::new(ResolutionInvalidator::new(Arc::clone(&cache))),
    )
    .unwrap();
    let mut asd_link = ServiceClient::connect(&net, &"ctrl".into(), fw.asd_addr.clone(), &me)
        .expect("asd reachable");
    subscribe_expiry_invalidation(&mut asd_link, "invalidator", invalidator.addr()).unwrap();

    Scenario {
        net,
        fw,
        supervisor,
        app,
        invalidator,
        exec,
        incarnations,
        me,
        pool,
        cache,
        metrics,
    }
}

impl Scenario {
    fn bound_client(&self) -> FailoverClient {
        FailoverClient::bind(
            self.net.clone(),
            "ctrl",
            self.me,
            self.fw.asd_addr.clone(),
            "token1",
        )
        .with_retry_window(Duration::from_secs(5))
        .with_pool(Arc::clone(&self.pool))
        .with_resolution_cache(Arc::clone(&self.cache))
    }

    fn counter(&self, name: &str) -> u64 {
        self.metrics.counter(name).get()
    }

    fn teardown(self) {
        self.supervisor.shutdown();
        self.invalidator.shutdown();
        self.app.crash();
        self.fw.shutdown();
    }
}

/// Wait until the supervised app answers `token` again, returning the
/// incarnation that answered.
fn await_recovery(client: &mut FailoverClient) -> u64 {
    let deadline = Instant::now() + RECOVERY_DEADLINE;
    loop {
        match client.call_idempotent(&CmdLine::new("token")) {
            Ok(reply) => return reply.get_int("incarnation").unwrap_or(0) as u64,
            Err(e) => assert!(Instant::now() < deadline, "token1 never recovered: {e}"),
        }
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// Deterministic restart: the parked pool link is found stale, the cache
/// entry dies with the lease, and the fast path re-primes — the first
/// post-restart dial full-handshakes, later misses resume again.
#[test]
fn restart_discards_stale_links_and_reprimes_resumption() {
    let s = scenario(Duration::from_millis(500));
    let mut client = s.bound_client();

    client.call(&CmdLine::new("bump")).unwrap();
    drop(client); // parks the pooled link
    let target = Addr::new("app1", 4800);
    assert_eq!(s.pool.idle_count(&target), 1);

    // Prime resumption: empty the pool (first checkout reuses the parked
    // link), then force a dial — it must ride the harvested ticket.
    s.pool.checkout(&target).unwrap().discard();
    s.pool.checkout(&target).unwrap().discard();
    let resume_before = s.counter("link.resume_hits");
    assert!(resume_before >= 1, "fast path not primed");
    // Park one more live link so the restart has something to invalidate.
    drop(s.pool.checkout(&target).unwrap());
    assert_eq!(s.pool.idle_count(&target), 1);

    // Kill the host: the parked link must be found stale at checkout and
    // discarded, never handed out.
    s.net.kill_host(&"app1".into());
    assert!(
        s.pool.checkout(&target).is_err(),
        "checkout against a dead host must fail fast"
    );
    assert!(
        s.counter("pool.stale") >= 1,
        "the pre-restart parked link must be discarded as stale, not reused"
    );
    assert_eq!(s.pool.idle_count(&target), 0);

    // Revive and let the supervisor bring a new incarnation up.
    s.net.revive_host(&"app1".into());
    let mut client = s.bound_client();
    let incarnation = await_recovery(&mut client);
    assert!(incarnation >= 2, "expected a respawned incarnation");

    // Re-priming: the recovery dial fell back to a full handshake against
    // the fresh vault (the old ticket died with the server) and harvested
    // a new ticket; a pool-missing checkout now must resume again.
    let resumed = s.pool.checkout(&target).unwrap();
    assert!(resumed.resumed(), "fast path must re-prime after restart");
    assert!(
        s.counter("link.resume_hits") > resume_before,
        "resume counter must grow after re-priming"
    );
    s.teardown();
}

/// A reply lost after execution on an established pooled link: `call`
/// surfaces the error without re-sending (at-most-once), `call_idempotent`
/// retries to completion (at-least-once).  The execution counter lives
/// outside the daemon, so it survives the crash and counts exactly.
#[test]
fn at_most_once_is_preserved_on_pooled_links() {
    let s = scenario(Duration::from_millis(500));
    let mut client = s.bound_client();

    client.call(&CmdLine::new("bump")).unwrap();
    assert_eq!(s.exec.load(Ordering::SeqCst), 1);

    // Kill the host while `slowBump` stalls between execute and reply.
    let net = s.net.clone();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        net.kill_host(&"app1".into());
    });
    let err = client.call(&CmdLine::new("slowBump"));
    killer.join().unwrap();
    assert!(err.is_err(), "a lost reply must surface as an error");
    assert_eq!(
        s.exec.load(Ordering::SeqCst),
        2,
        "at-most-once: the stalled command executed exactly once, no retry"
    );

    // Same scenario through the idempotent path: the retry executes the
    // command again on the respawned incarnation.
    s.net.revive_host(&"app1".into());
    let mut client = s.bound_client();
    await_recovery(&mut client);
    let before = s.exec.load(Ordering::SeqCst);
    let net = s.net.clone();
    let killer = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        net.kill_host(&"app1".into());
        // Stay down past the handler's stall so the in-flight reply is
        // genuinely lost before the host returns.
        std::thread::sleep(Duration::from_millis(550));
        net.revive_host(&"app1".into());
    });
    let reply = client.call_idempotent(&CmdLine::new("slowBump"));
    killer.join().unwrap();
    assert!(reply.is_ok(), "idempotent retry must eventually succeed");
    assert!(
        s.exec.load(Ordering::SeqCst) >= before + 2,
        "at-least-once: the lost execution plus the successful retry"
    );
    s.teardown();
}

/// The full fast path under a seeded fault plan: crash windows restart the
/// app while a pooled, cache-backed client hammers it.  Replies must carry
/// monotonically non-decreasing incarnations (a decrease would be a stale
/// reply from a dead instance), and the stack must converge after the plan.
fn run_chaos_fastpath(seed: u64) {
    let s = scenario(Duration::from_millis(500));

    let mut fault_config = FaultPlanConfig::new(PLAN_LEN, vec![HostId::from("app1")]);
    fault_config.crash_windows = 3;
    fault_config.max_latency = Duration::from_millis(1);
    let plan = FaultPlan::generate(seed, &fault_config);
    assert_eq!(
        plan,
        FaultPlan::generate(seed, &fault_config),
        "fault schedule must be a pure function of the seed"
    );

    let runner = plan.spawn(&s.net);
    let mut client = s
        .bound_client()
        .with_retry_window(Duration::from_millis(300));
    let mut max_incarnation = 0u64;
    let mut ok_calls = 0u32;
    let start = Instant::now();
    while start.elapsed() < PLAN_LEN {
        if let Ok(reply) = client.call_idempotent(&CmdLine::new("token")) {
            let inc = reply.get_int("incarnation").unwrap_or(0) as u64;
            assert!(
                inc >= max_incarnation,
                "seed {seed}: stale reply — incarnation {inc} after {max_incarnation}"
            );
            max_incarnation = inc;
            ok_calls += 1;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    runner.join(); // network fully healed

    // Convergence: the supervised app answers again within the deadline.
    let mut converged = s.bound_client();
    let final_inc = await_recovery(&mut converged);
    assert!(
        final_inc >= max_incarnation,
        "seed {seed}: post-heal incarnation went backwards"
    );
    assert!(
        ok_calls > 0,
        "seed {seed}: no call ever succeeded mid-chaos — harness misconfigured"
    );

    // Steady state: with a live link and warm cache, repeated calls stop
    // resolving through the ASD entirely.
    let resolutions_before = converged.resolutions();
    for _ in 0..5 {
        converged.call_idempotent(&CmdLine::new("token")).unwrap();
    }
    assert!(
        converged.resolutions() <= resolutions_before + 1,
        "seed {seed}: steady-state calls must not re-resolve per call"
    );

    // The pool really carried traffic, and any post-restart misses that
    // found a live vault resumed rather than re-handshaking.
    assert!(s.counter("pool.checkouts") > 0);
    assert!(
        s.counter("link.full_handshakes") >= 1,
        "seed {seed}: at least the initial dial full-handshakes"
    );
    let restarts = s.incarnations.load(Ordering::SeqCst).saturating_sub(1);
    eprintln!(
        "chaos_fastpath seed {seed:#x}: {ok_calls} ok calls, {restarts} restarts, \
         checkouts={} reused={} stale={} resumes={} full={}",
        s.counter("pool.checkouts"),
        s.counter("pool.reused"),
        s.counter("pool.stale"),
        s.counter("link.resume_hits"),
        s.counter("link.full_handshakes"),
    );
    s.teardown();
}

#[test]
fn chaos_fastpath_seed_a() {
    run_chaos_fastpath(0xACE5);
}

#[test]
fn chaos_fastpath_seed_b() {
    run_chaos_fastpath(11);
}

/// Seed expansion hook for the CI soak job, mirroring `chaos_soak`:
/// `CHAOS_SEEDS="0xACE3,42,7"` runs each listed seed.
#[test]
fn chaos_fastpath_env_seeds() {
    let Ok(spec) = std::env::var("CHAOS_SEEDS") else {
        return;
    };
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let seed = match token.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => token.parse(),
        }
        .unwrap_or_else(|_| panic!("CHAOS_SEEDS: unparsable seed `{token}`"));
        eprintln!("chaos_fastpath: running env seed {seed:#x}");
        run_chaos_fastpath(seed);
    }
}
