//! The sharded, replicated directory plane.
//!
//! One ASD daemon answering every lookup in the building is the hard
//! ceiling on environment scale: §2.4's central directory serializes the
//! resolution path of every client.  This module partitions the
//! registration space across N shards and replicates each shard, so the
//! directory plane scales horizontally and survives replica crashes:
//!
//! * [`ShardMap`] — the cluster layout (replica addresses per shard) with
//!   rendezvous-hash placement.  Every replica of every shard carries the
//!   full map and serves it via the `shardMap` verb, so clients bootstrap
//!   from any well-known replica.
//! * [`ShardedAsdClient`] — routes registrations and name lookups to the
//!   owning shard through the shared [`LinkPool`] fast path, writes with a
//!   majority quorum ([`ace_core::quorum`] — the same discipline as the
//!   persistent store's replica client), and fans cross-shard queries out
//!   to every shard with smallest-set-first merging.
//! * [`spawn_sharded_asd`] — brings the plane up: `shards × replication`
//!   ASD daemons spread across hosts.
//!
//! # Placement
//!
//! Registrations are placed by **rendezvous (HRW) hash of the service
//! name**.  The name is the directory's unique key and the production
//! resolution path (`FailoverClient` resolves by name on every cache
//! miss), so name lookups touch exactly one shard — that is what makes
//! aggregate lookup throughput scale with the shard count.  Room and
//! class-segment remain *filter* dimensions: each shard keeps the PR 5
//! inverted indexes over its own registrations, and room/class queries
//! fan out to all shards, intersect server-side, and merge client-side.
//! (Placing by room or class-segment instead would send every *name*
//! lookup to every shard and cap aggregate throughput at a single
//! shard's, while renames of a room would migrate registrations; see
//! DESIGN.md "Directory plane".)
//!
//! # Replication and repair
//!
//! Each shard is a replica group with majority-quorum writes and
//! per-name incarnation fencing (PR 6): a register/renew carrying a
//! stale incarnation is rejected with `E_BADSTATE` by any replica that
//! knows better.  A replica that restarts empty is repaired by the
//! renewal traffic itself: a renew answered with `E_NOTFOUND` triggers
//! an immediate re-register on that replica — the directory analog of
//! the store's anti-entropy pull, driven by the writers that own the
//! data.  Reads are served by any replica (rotating round-robin), and a
//! name lookup that comes back empty falls through to the remaining
//! replicas before concluding the name is unregistered, so a repairing
//! replica never manufactures a false `NotFound`.

use crate::asd::Asd;
use ace_core::metrics::Histogram;
use ace_core::prelude::*;
use ace_core::protocol::{self, ServiceEntry};
use ace_core::SpawnError;
use ace_security::hash::fnv64;
use ace_security::keys::KeyPair;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// The shard map
// ---------------------------------------------------------------------------

/// The directory plane layout: replica addresses per shard, plus a map
/// epoch so clients can tell a newer layout from an older one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMap {
    epoch: u64,
    /// `shards[s]` is the replica set of shard `s`, in spawn order.
    shards: Vec<Vec<Addr>>,
}

impl ShardMap {
    /// A map over the given replica sets.
    pub fn new(epoch: u64, shards: Vec<Vec<Addr>>) -> ShardMap {
        ShardMap { epoch, shards }
    }

    /// The map epoch (bumped whenever the layout changes).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The replica set of shard `s`.
    pub fn replicas(&self, s: usize) -> &[Addr] {
        &self.shards[s]
    }

    /// Rendezvous (highest-random-weight) placement: every shard scores
    /// the name, the highest score owns it.  Unlike `hash % n`, adding a
    /// shard only moves the ~1/n of names the new shard now wins.
    pub fn shard_for(&self, name: &str) -> usize {
        let mut best = 0usize;
        let mut best_score = 0u64;
        for s in 0..self.shards.len() {
            let mut material = Vec::with_capacity(name.len() + 9);
            material.extend_from_slice(name.as_bytes());
            material.push(0);
            material.extend_from_slice(&(s as u64).to_le_bytes());
            let score = fnv64(&material);
            if s == 0 || score > best_score {
                best = s;
                best_score = score;
            }
        }
        best
    }

    /// The replica set owning `name`.
    pub fn replicas_for(&self, name: &str) -> &[Addr] {
        self.replicas(self.shard_for(name))
    }

    /// Majority quorum of shard `s`'s replica set.
    pub fn quorum(&self, s: usize) -> usize {
        ace_core::quorum::majority(self.shards[s].len())
    }

    /// Every replica address of every shard.
    pub fn all_replicas(&self) -> impl Iterator<Item = &Addr> {
        self.shards.iter().flatten()
    }

    /// Wire encoding: `{{shard,host,port},…}` rows.
    pub fn to_value(&self) -> Value {
        Value::Array(
            self.shards
                .iter()
                .enumerate()
                .flat_map(|(s, replicas)| {
                    replicas.iter().map(move |addr| {
                        vec![
                            Scalar::Str(s.to_string()),
                            Scalar::Str(addr.host.to_string()),
                            Scalar::Str(addr.port.to_string()),
                        ]
                    })
                })
                .collect(),
        )
    }

    /// Decode the `shards=` rows.  Malformed rows or a non-contiguous
    /// shard numbering reject the whole map — routing on a half-decoded
    /// layout would misplace registrations silently.
    pub fn from_value(epoch: u64, value: &Value) -> Option<ShardMap> {
        let rows = match value {
            v if v.as_vector().is_some_and(|s| s.is_empty()) => {
                return Some(ShardMap::new(epoch, Vec::new()))
            }
            v => v.as_array()?,
        };
        let mut shards: Vec<Vec<Addr>> = Vec::new();
        for row in rows {
            if row.len() != 3 {
                return None;
            }
            let s: usize = row[0].as_text()?.parse().ok()?;
            let port: u16 = row[2].as_text()?.parse().ok()?;
            if s > shards.len() {
                return None; // shard indexes must arrive contiguously
            }
            if s == shards.len() {
                shards.push(Vec::new());
            }
            shards[s].push(Addr::new(row[1].as_text()?, port));
        }
        if shards.iter().any(Vec::is_empty) {
            return None;
        }
        Some(ShardMap::new(epoch, shards))
    }

    /// The `shardMap` verb reply.
    pub fn to_reply(&self) -> Reply {
        let epoch = self.epoch as i64;
        let count = self.shard_count() as i64;
        let value = self.to_value();
        Reply::ok_with(|c| {
            c.arg("epoch", epoch)
                .arg("count", count)
                .arg("shards", value)
        })
    }

    /// Decode a `shardMap` reply.
    pub fn from_reply(reply: &CmdLine) -> Option<ShardMap> {
        let epoch = reply.get_int("epoch")?.max(0) as u64;
        Self::from_value(epoch, reply.get("shards")?)
    }

    /// Fetch the map from any replica (clients bootstrap by asking the
    /// well-known directory address).
    pub fn fetch(pool: &Arc<LinkPool>, replica: &Addr) -> Result<ShardMap, ClientError> {
        let reply = pool.checkout(replica)?.call(&CmdLine::new("shardMap"))?;
        ShardMap::from_reply(&reply).ok_or(ClientError::Service {
            code: ErrorCode::Internal,
            msg: "malformed shardMap reply".into(),
        })
    }
}

// ---------------------------------------------------------------------------
// The sharded client
// ---------------------------------------------------------------------------

/// A directory client that routes per-shard and writes with a quorum.
///
/// Registrations made through this client are remembered (name → entry +
/// incarnation) so renewals can repair replicas that answer `E_NOTFOUND`
/// after a restart.
pub struct ShardedAsdClient {
    pool: Arc<LinkPool>,
    map: ShardMap,
    registered: HashMap<String, (ServiceEntry, u64)>,
    /// Rotating start replica for reads, spreading lookup load across a
    /// shard's whole replica set.
    read_rr: usize,
    lookup_hist: Option<Arc<Histogram>>,
    fanouts: u64,
    repairs: u64,
}

impl ShardedAsdClient {
    /// A client over `map`, checking links out of `pool` per call.
    pub fn new(pool: Arc<LinkPool>, map: ShardMap) -> ShardedAsdClient {
        ShardedAsdClient {
            pool,
            map,
            registered: HashMap::new(),
            read_rr: 0,
            lookup_hist: None,
            fanouts: 0,
            repairs: 0,
        }
    }

    /// Record per-lookup latency into `metrics` (`dir.lookup` histogram).
    pub fn with_metrics(mut self, metrics: &MetricsRegistry) -> ShardedAsdClient {
        self.lookup_hist = Some(metrics.histogram("dir.lookup"));
        self
    }

    /// The shard map this client routes with.
    pub fn map(&self) -> &ShardMap {
        &self.map
    }

    /// Cross-shard fan-out queries performed.
    pub fn fanouts(&self) -> u64 {
        self.fanouts
    }

    /// Replicas repaired by renew-time re-registration.
    pub fn repairs(&self) -> u64 {
        self.repairs
    }

    fn call_replica(&self, addr: &Addr, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        self.pool.checkout(addr)?.call(cmd)
    }

    fn no_shards() -> ClientError {
        ClientError::Service {
            code: ErrorCode::Unavailable,
            msg: "empty shard map".into(),
        }
    }

    fn register_cmd(entry: &ServiceEntry, incarnation: u64) -> CmdLine {
        CmdLine::new("register")
            .arg("name", entry.name.as_str())
            .arg("host", entry.addr.host.as_str())
            .arg("port", entry.addr.port)
            .arg("room", entry.room.as_str())
            .arg("class", entry.class.as_str())
            .arg("incarnation", incarnation as i64)
    }

    /// Register `entry` on its owning shard with a majority quorum.
    /// `E_BADSTATE` from any replica (a newer incarnation is registered)
    /// outranks the quorum count: a fenced writer must stop, not win by
    /// outvoting the replica that knows better.
    pub fn register(
        &mut self,
        entry: &ServiceEntry,
        incarnation: u64,
    ) -> Result<Duration, ClientError> {
        if self.map.shard_count() == 0 {
            return Err(Self::no_shards());
        }
        let shard = self.map.shard_for(&entry.name);
        let cmd = Self::register_cmd(entry, incarnation);
        let mut round = QuorumRound::new(self.map.replicas(shard).len(), self.map.quorum(shard));
        let mut lease_ms = 0i64;
        let mut fenced: Option<ClientError> = None;
        for addr in self.map.replicas(shard).to_vec() {
            match self.call_replica(&addr, &cmd) {
                Ok(reply) => {
                    round.ack();
                    lease_ms = reply.get_int("lease").unwrap_or(lease_ms);
                }
                Err(err) if err.code() == Some(ErrorCode::BadState) => fenced = Some(err),
                Err(_) => {}
            }
        }
        if let Some(err) = fenced {
            return Err(err);
        }
        if !round.reached() {
            return Err(ClientError::Service {
                code: ErrorCode::Unavailable,
                msg: format!(
                    "register {}: {}/{} replicas acked, quorum {}",
                    entry.name,
                    round.acked(),
                    self.map.replicas(shard).len(),
                    round.quorum()
                ),
            });
        }
        self.registered
            .insert(entry.name.clone(), (entry.clone(), incarnation));
        Ok(Duration::from_millis(lease_ms.max(0) as u64))
    }

    /// Renew `name` on its owning shard with a majority quorum, repairing
    /// any replica that lost the registration (restart) by re-registering
    /// it on the spot.
    pub fn renew(&mut self, name: &str) -> Result<(), ClientError> {
        if self.map.shard_count() == 0 {
            return Err(Self::no_shards());
        }
        let (entry, incarnation) =
            self.registered
                .get(name)
                .cloned()
                .ok_or(ClientError::Service {
                    code: ErrorCode::NotFound,
                    msg: format!("{name} was not registered through this client"),
                })?;
        let shard = self.map.shard_for(name);
        let cmd = CmdLine::new("renewLease")
            .arg("name", name)
            .arg("incarnation", incarnation as i64);
        let mut round = QuorumRound::new(self.map.replicas(shard).len(), self.map.quorum(shard));
        let mut fenced: Option<ClientError> = None;
        for addr in self.map.replicas(shard).to_vec() {
            match self.call_replica(&addr, &cmd) {
                Ok(_) => round.ack(),
                Err(err) if err.code() == Some(ErrorCode::NotFound) => {
                    // The replica restarted without this lease: repair it
                    // with a full re-register (renewal-driven anti-entropy).
                    let reg = Self::register_cmd(&entry, incarnation);
                    if self.call_replica(&addr, &reg).is_ok() {
                        self.repairs += 1;
                        round.ack();
                    }
                }
                Err(err) if err.code() == Some(ErrorCode::BadState) => fenced = Some(err),
                Err(_) => {}
            }
        }
        if let Some(err) = fenced {
            return Err(err);
        }
        if round.reached() {
            Ok(())
        } else {
            Err(ClientError::Service {
                code: ErrorCode::Unavailable,
                msg: format!(
                    "renew {name}: {}/{} replicas acked, quorum {}",
                    round.acked(),
                    self.map.replicas(shard).len(),
                    round.quorum()
                ),
            })
        }
    }

    /// Deregister `name`.  A replica answering `E_NOTFOUND` already lacks
    /// the lease, which is the desired end state — it counts as an ack.
    pub fn remove(&mut self, name: &str) -> Result<(), ClientError> {
        if self.map.shard_count() == 0 {
            return Err(Self::no_shards());
        }
        let shard = self.map.shard_for(name);
        let cmd = CmdLine::new("removeService").arg("name", name);
        let mut round = QuorumRound::new(self.map.replicas(shard).len(), self.map.quorum(shard));
        for addr in self.map.replicas(shard).to_vec() {
            match self.call_replica(&addr, &cmd) {
                Ok(_) => round.ack(),
                Err(err) if err.code() == Some(ErrorCode::NotFound) => round.ack(),
                Err(_) => {}
            }
        }
        self.registered.remove(name);
        if round.reached() {
            Ok(())
        } else {
            Err(ClientError::Service {
                code: ErrorCode::Unavailable,
                msg: format!("remove {name}: quorum not reached"),
            })
        }
    }

    fn lookup_cmd(name: Option<&str>, class: Option<&str>, room: Option<&str>) -> CmdLine {
        let mut cmd = CmdLine::new("lookup");
        if let Some(n) = name {
            cmd.push_arg("name", n);
        }
        if let Some(c) = class {
            cmd.push_arg("class", c);
        }
        if let Some(r) = room {
            cmd.push_arg("room", r);
        }
        cmd
    }

    fn entries_from_reply(reply: &CmdLine) -> Result<Vec<ServiceEntry>, ClientError> {
        reply
            .get("services")
            .and_then(protocol::entries_from_value)
            .ok_or(ClientError::Service {
                code: ErrorCode::Internal,
                msg: "malformed lookup reply".into(),
            })
    }

    /// One shard's answer, trying replicas round-robin from a rotating
    /// start so read load spreads over the whole replica set.  When
    /// `retry_empty` is set (name lookups), an empty answer falls through
    /// to the remaining replicas: a freshly restarted replica that has
    /// not been repaired yet must not manufacture a false `NotFound`.
    fn lookup_shard(
        &mut self,
        shard: usize,
        cmd: &CmdLine,
        retry_empty: bool,
    ) -> Result<Vec<ServiceEntry>, ClientError> {
        let replicas = self.map.replicas(shard).to_vec();
        self.read_rr = self.read_rr.wrapping_add(1);
        let start = self.read_rr % replicas.len();
        let mut first_empty: Option<Vec<ServiceEntry>> = None;
        let mut last_err: Option<ClientError> = None;
        for i in 0..replicas.len() {
            let addr = &replicas[(start + i) % replicas.len()];
            match self.call_replica(addr, cmd) {
                Ok(reply) => {
                    let entries = Self::entries_from_reply(&reply)?;
                    if entries.is_empty() && retry_empty {
                        first_empty.get_or_insert(entries);
                        continue;
                    }
                    return Ok(entries);
                }
                Err(err) => last_err = Some(err),
            }
        }
        if let Some(empty) = first_empty {
            return Ok(empty); // every reachable replica agreed: not there
        }
        Err(last_err.unwrap_or(Self::no_shards()))
    }

    /// Look up services by any combination of name/class/room.
    ///
    /// A name lookup touches exactly the owning shard; class/room/
    /// unfiltered queries fan out to every shard and merge.  A fan-out
    /// fails if any shard has no reachable replica — a silently partial
    /// directory answer is worse than an error.
    pub fn lookup(
        &mut self,
        name: Option<&str>,
        class: Option<&str>,
        room: Option<&str>,
    ) -> Result<Vec<ServiceEntry>, ClientError> {
        if self.map.shard_count() == 0 {
            return Err(Self::no_shards());
        }
        let started = Instant::now();
        let cmd = Self::lookup_cmd(name, class, room);
        let result = match name {
            Some(n) => {
                let shard = self.map.shard_for(n);
                self.lookup_shard(shard, &cmd, true)
            }
            None => {
                self.fanouts += 1;
                let mut partials: Vec<Vec<ServiceEntry>> = Vec::new();
                for shard in 0..self.map.shard_count() {
                    partials.push(self.lookup_shard(shard, &cmd, false)?);
                }
                // Smallest-set-first merge: start from the smallest
                // partial so the dedup set stays minimal for as long as
                // possible, then present one sorted directory answer.
                partials.sort_by_key(Vec::len);
                let mut seen: HashSet<String> = HashSet::new();
                let mut merged: Vec<ServiceEntry> = Vec::new();
                for partial in partials {
                    for entry in partial {
                        if seen.insert(entry.name.clone()) {
                            merged.push(entry);
                        }
                    }
                }
                merged.sort_by(|a, b| a.name.cmp(&b.name));
                Ok(merged)
            }
        };
        if let Some(hist) = &self.lookup_hist {
            hist.record(started.elapsed());
        }
        result
    }

    /// Find one service by exact name.
    pub fn find(&mut self, name: &str) -> Result<Option<ServiceEntry>, ClientError> {
        Ok(self.lookup(Some(name), None, None)?.into_iter().next())
    }

    /// All registered names across every shard, sorted.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        if self.map.shard_count() == 0 {
            return Err(Self::no_shards());
        }
        let cmd = CmdLine::new("listServices");
        let mut names: HashSet<String> = HashSet::new();
        for shard in 0..self.map.shard_count() {
            let replicas = self.map.replicas(shard).to_vec();
            let mut answered = false;
            let mut last_err: Option<ClientError> = None;
            for addr in &replicas {
                match self.call_replica(addr, &cmd) {
                    Ok(reply) => {
                        if let Some(v) = reply.get_vector("names") {
                            names.extend(v.iter().filter_map(|s| s.as_text().map(str::to_string)));
                        }
                        answered = true;
                        break;
                    }
                    Err(err) => last_err = Some(err),
                }
            }
            if !answered {
                return Err(last_err.unwrap_or(Self::no_shards()));
            }
        }
        let mut names: Vec<String> = names.into_iter().collect();
        names.sort();
        Ok(names)
    }
}

impl std::fmt::Debug for ShardedAsdClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ShardedAsdClient({} shards, epoch {})",
            self.map.shard_count(),
            self.map.epoch()
        )
    }
}

// ---------------------------------------------------------------------------
// Spawning the plane
// ---------------------------------------------------------------------------

/// A running sharded directory plane: the map plus daemon handles,
/// `handles[shard][replica]` in spawn order.
pub struct ShardedDirectory {
    pub map: ShardMap,
    pub handles: Vec<Vec<DaemonHandle>>,
    lease: Duration,
}

impl ShardedDirectory {
    /// A routing client over this plane's shared link pool.
    pub fn client(&self, pool: Arc<LinkPool>) -> ShardedAsdClient {
        ShardedAsdClient::new(pool, self.map.clone())
    }

    /// The host a given replica runs on.
    pub fn replica_host(&self, shard: usize, replica: usize) -> HostId {
        self.map.replicas(shard)[replica].host.clone()
    }

    /// A [`FailoverClient`] for `service_name` that resolves through the
    /// owning shard's full replica set.
    pub fn failover_client(
        &self,
        net: &SimNet,
        from_host: impl Into<HostId>,
        identity: KeyPair,
        service_name: &str,
    ) -> FailoverClient {
        let replicas = self.map.replicas_for(service_name).to_vec();
        FailoverClient::bind(
            net.clone(),
            from_host,
            identity,
            replicas[0].clone(),
            service_name,
        )
        .with_directory_replicas(replicas)
    }

    /// Re-spawn one replica in place (post-crash recovery): a fresh empty
    /// ASD at the same address, carrying the same shard map.  Its leases
    /// repopulate through renewal-driven repair.
    pub fn respawn_replica(
        &mut self,
        net: &SimNet,
        shard: usize,
        replica: usize,
    ) -> Result<(), SpawnError> {
        let addr = self.map.replicas(shard)[replica].clone();
        let handle = Daemon::spawn(
            net,
            DaemonConfig::new(
                format!("asd-s{shard}r{replica}"),
                "Service.ServiceDirectory.Shard",
                "machineroom",
                addr.host.clone(),
                addr.port,
            ),
            Box::new(Asd::new(self.lease).with_shard_map(self.map.clone())),
        )?;
        self.handles[shard][replica] = handle;
        Ok(())
    }

    /// Stop every replica.
    pub fn shutdown(self) {
        for shard in self.handles {
            for handle in shard {
                handle.shutdown();
            }
        }
    }
}

/// Subscribe a [`ResolutionInvalidator`] listener to the `serviceExpired`
/// event of **every** replica of every shard, so lease expiry anywhere in
/// the plane evicts the matching cache entry.  Returns how many replicas
/// accepted the subscription.
pub fn subscribe_invalidation_all(
    net: &SimNet,
    from_host: &HostId,
    identity: &KeyPair,
    map: &ShardMap,
    listener_name: &str,
    listener_addr: &Addr,
) -> Result<usize, ClientError> {
    let mut subscribed = 0;
    let mut last_err: Option<ClientError> = None;
    for replica in map.all_replicas() {
        let attempt = ServiceClient::connect(net, from_host, replica.clone(), identity).and_then(
            |mut client| {
                ace_core::subscribe_expiry_invalidation(&mut client, listener_name, listener_addr)
            },
        );
        match attempt {
            Ok(()) => subscribed += 1,
            Err(err) => last_err = Some(err),
        }
    }
    if subscribed == 0 {
        if let Some(err) = last_err {
            return Err(err);
        }
    }
    Ok(subscribed)
}

/// Bring up `shards × replication` ASD daemons spread round-robin across
/// `hosts`, each granting `lease` and carrying the full shard map.  Ports
/// are `base_port + shard * replication + replica`.
pub fn spawn_sharded_asd(
    net: &SimNet,
    hosts: &[HostId],
    shards: usize,
    replication: usize,
    lease: Duration,
    base_port: u16,
) -> Result<ShardedDirectory, SpawnError> {
    assert!(shards > 0 && replication > 0, "empty plane");
    assert!(!hosts.is_empty(), "no hosts to place replicas on");
    let layout: Vec<Vec<Addr>> = (0..shards)
        .map(|s| {
            (0..replication)
                .map(|r| {
                    let idx = s * replication + r;
                    Addr::new(hosts[idx % hosts.len()].clone(), base_port + idx as u16)
                })
                .collect()
        })
        .collect();
    let map = ShardMap::new(1, layout);
    let mut handles = Vec::with_capacity(shards);
    for s in 0..shards {
        let mut shard_handles = Vec::with_capacity(replication);
        for (r, addr) in map.replicas(s).iter().enumerate() {
            let handle = Daemon::spawn(
                net,
                DaemonConfig::new(
                    format!("asd-s{s}r{r}"),
                    "Service.ServiceDirectory.Shard",
                    "machineroom",
                    addr.host.clone(),
                    addr.port,
                ),
                Box::new(Asd::new(lease).with_shard_map(map.clone())),
            )?;
            shard_handles.push(handle);
        }
        handles.push(shard_handles);
    }
    Ok(ShardedDirectory {
        map,
        handles,
        lease,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map(shards: usize, replication: usize) -> ShardMap {
        ShardMap::new(
            1,
            (0..shards)
                .map(|s| {
                    (0..replication)
                        .map(|r| Addr::new(format!("d{}", s * replication + r), 5900 + r as u16))
                        .collect()
                })
                .collect(),
        )
    }

    #[test]
    fn rendezvous_placement_is_stable_and_balanced() {
        let m = map(4, 3);
        // Deterministic.
        for i in 0..50 {
            let name = format!("svc{i}");
            assert_eq!(m.shard_for(&name), m.shard_for(&name));
        }
        // Roughly balanced: each of 4 shards should own a fair share of
        // 4,000 names (loose bound — FNV is not adversarial-grade).
        let mut counts = [0usize; 4];
        for i in 0..4000 {
            counts[m.shard_for(&format!("svc{i}"))] += 1;
        }
        for (s, &c) in counts.iter().enumerate() {
            assert!(
                (500..=1800).contains(&c),
                "shard {s} owns {c} of 4000 names — badly unbalanced"
            );
        }
    }

    #[test]
    fn growing_the_plane_only_moves_the_new_shards_share() {
        let before = map(4, 1);
        let layout: Vec<Vec<Addr>> = (0..5)
            .map(|s| vec![Addr::new(format!("d{s}"), 5900)])
            .collect();
        let after = ShardMap::new(2, layout);
        let total = 4000;
        let moved = (0..total)
            .filter(|i| {
                let name = format!("svc{i}");
                before.shard_for(&name) != after.shard_for(&name)
            })
            .count();
        // HRW moves ~1/5 of names to the new shard; `hash % n` would
        // reshuffle ~4/5.  Allow generous slack.
        assert!(
            moved < total * 2 / 5,
            "{moved}/{total} names moved — placement is not rendezvous-stable"
        );
    }

    #[test]
    fn shard_map_roundtrips_over_the_wire() {
        let m = map(3, 2);
        let reply = m.to_reply();
        let Reply::Ok(cmd) = reply else {
            panic!("map reply must be ok")
        };
        let decoded = ShardMap::from_reply(&cmd).expect("decode");
        assert_eq!(decoded, m);

        // Empty map (unsharded ASD) decodes as zero shards.
        let empty = ShardMap::from_value(0, &Value::Vector(Vec::new())).expect("empty");
        assert_eq!(empty.shard_count(), 0);

        // Non-contiguous shard numbering is rejected wholesale.
        let bad = Value::Array(vec![vec![
            Scalar::Str("1".into()),
            Scalar::Str("h".into()),
            Scalar::Str("5900".into()),
        ]]);
        assert!(ShardMap::from_value(1, &bad).is_none());
    }
}
