//! The ACE Service Directory (§2.4, Fig. 7).
//!
//! "A central listing or directory of services currently available and
//! running within the ACE environment."  Services register on startup,
//! renew leases periodically, deregister on shutdown, and are purged
//! automatically when their lease expires — "this mechanism accounts for
//! system failures whereby daemons that become inactive due to malfunction
//! are automatically removed from the ASD once their service lease expires."
//!
//! # Indexing
//!
//! The directory sits on every client's resolution path, so its command
//! cost matters.  Three structures keep it flat as the environment grows:
//!
//! * an **expiry min-heap** replaces the per-command full-map expiry scan —
//!   each purge pops only entries whose deadline has actually passed (stale
//!   heap entries from renewals are validated against the live lease and
//!   skipped, the classic lazy-deletion heap);
//! * a **room index** (`room → names`) and a **class-segment inverted
//!   index** (each dot-segment of the class path, plus the full path,
//!   `→ names`) make the corresponding `lookup` filters O(matches) instead
//!   of O(all leases).
//!
//! A `lookup` reply also carries the granted `lease` duration, which lets
//! clients bound how long a resolution may be cached.

use ace_core::prelude::*;
use ace_core::protocol::{self, ServiceEntry};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet};
use std::time::{Duration, Instant};

/// One live registration.
#[derive(Debug, Clone)]
struct Lease {
    entry: ServiceEntry,
    expires: Instant,
    /// Spawn generation of the registrant.  Monotone per name: a lower
    /// incarnation is a stale instance (pre-restart or pre-upgrade) whose
    /// late register/renew must not clobber its replacement.
    incarnation: u64,
}

/// Below this heap size compaction is never worth the rebuild.
const HEAP_COMPACT_MIN: usize = 128;

/// The ASD service behavior.
pub struct Asd {
    lease_duration: Duration,
    leases: HashMap<String, Lease>,
    /// Expiry deadlines, oldest first.  Lazy deletion: renewing pushes a
    /// fresh entry without removing the old one, so a popped deadline is
    /// only acted on when it still matches the live lease.  Bounded by
    /// [`Asd::maybe_compact_heap`]: when stale entries outnumber live
    /// leases the heap is rebuilt from the lease map.
    expiry: BinaryHeap<Reverse<(Instant, String)>>,
    /// room → registered names in that room.
    by_room: HashMap<String, HashSet<String>>,
    /// class segment (each dot-segment and the full path) → names.
    by_class_segment: HashMap<String, HashSet<String>>,
    /// Registrations since start (monotonic; for experiments).
    total_registrations: u64,
    /// Lazy-deletion heap rebuilds (surfaced as `asd.heapCompactions`).
    heap_compactions: u64,
    /// When this ASD is one shard of a partitioned directory plane, the
    /// full shard map it serves to clients via the `shardMap` verb.
    shard_map: Option<crate::shardmap::ShardMap>,
}

impl Asd {
    /// An ASD granting leases of the given duration.
    pub fn new(lease_duration: Duration) -> Asd {
        Asd {
            lease_duration,
            leases: HashMap::new(),
            expiry: BinaryHeap::new(),
            by_room: HashMap::new(),
            by_class_segment: HashMap::new(),
            total_registrations: 0,
            heap_compactions: 0,
            shard_map: None,
        }
    }

    /// The default production lease (30 s).  Tests use much shorter ones.
    pub fn with_default_lease() -> Asd {
        Asd::new(Duration::from_secs(30))
    }

    /// Serve `map` from the `shardMap` verb: every replica of every shard
    /// carries the full map, so clients can bootstrap from any of them.
    pub fn with_shard_map(mut self, map: crate::shardmap::ShardMap) -> Asd {
        self.shard_map = Some(map);
        self
    }

    /// The full path plus every dot-segment — the keys under which a class
    /// is indexed, mirroring [`Asd::class_matches`].
    fn class_keys(class_path: &str) -> impl Iterator<Item = &str> {
        std::iter::once(class_path)
            .chain(class_path.split('.'))
            .filter(|k| !k.is_empty())
    }

    fn index_insert(&mut self, entry: &ServiceEntry) {
        self.by_room
            .entry(entry.room.clone())
            .or_default()
            .insert(entry.name.clone());
        for key in Self::class_keys(&entry.class) {
            self.by_class_segment
                .entry(key.to_string())
                .or_default()
                .insert(entry.name.clone());
        }
    }

    fn index_remove(&mut self, entry: &ServiceEntry) {
        if let Some(names) = self.by_room.get_mut(&entry.room) {
            names.remove(&entry.name);
            if names.is_empty() {
                self.by_room.remove(&entry.room);
            }
        }
        // Drop only the keys this entry emptied (mirroring the room path
        // above) — a blanket `retain` over the whole index is O(all
        // segments) per unregister and dominates at 100k services.
        for key in Self::class_keys(&entry.class) {
            if let Some(names) = self.by_class_segment.get_mut(key) {
                names.remove(&entry.name);
                if names.is_empty() {
                    self.by_class_segment.remove(key);
                }
            }
        }
    }

    /// Drop a lease and its index entries, returning the removed lease.
    fn remove_lease(&mut self, name: &str) -> Option<Lease> {
        let lease = self.leases.remove(name)?;
        self.index_remove(&lease.entry);
        Some(lease)
    }

    /// Keep the lazy-deletion heap bounded.  Every renewal strands one
    /// stale entry, so under a renew-heavy workload the heap would grow
    /// without limit; once stale entries outnumber live leases (heap more
    /// than twice the lease count) rebuild it from the live deadlines.
    /// Amortised O(1) per renewal: a rebuild costs O(n) but only happens
    /// after O(n) strandings.
    fn maybe_compact_heap(&mut self) {
        if self.expiry.len() < HEAP_COMPACT_MIN
            || self.expiry.len() < self.leases.len().saturating_mul(2)
        {
            return;
        }
        self.expiry = self
            .leases
            .iter()
            .map(|(name, lease)| Reverse((lease.expires, name.clone())))
            .collect();
        self.heap_compactions += 1;
    }

    /// Renew the lease for `name` (the `renewLease` verb body; free of
    /// `ServiceCtx` so tests can drive renewal storms directly).
    fn apply_renewal(&mut self, name: &str, incarnation: u64) -> Reply {
        match self.leases.get_mut(name) {
            Some(lease) if incarnation < lease.incarnation => Reply::err(
                ErrorCode::BadState,
                format!(
                    "stale incarnation {incarnation} for {name} (registered: {})",
                    lease.incarnation
                ),
            ),
            Some(lease) => {
                let expires = Instant::now() + self.lease_duration;
                lease.expires = expires;
                // The old heap entry goes stale and is skipped by the
                // lazy-deletion check on pop.
                self.expiry.push(Reverse((expires, name.to_string())));
                self.maybe_compact_heap();
                Reply::ok_with(|c| c.arg("lease", self.lease_duration.as_millis() as i64))
            }
            None => Reply::err(ErrorCode::NotFound, format!("no lease for {name}")),
        }
    }

    /// Pop genuinely expired leases off the heap.  Cost is O(expired ·
    /// log n) rather than a scan of every lease per command.
    fn purge_expired(&mut self, ctx: &mut ServiceCtx) {
        let now = Instant::now();
        while let Some(Reverse((deadline, _))) = self.expiry.peek() {
            if *deadline > now {
                break;
            }
            let Reverse((deadline, name)) = self.expiry.pop().expect("peeked");
            // Lazy deletion: only act when this deadline is the lease's
            // *current* one — renewals and re-registrations leave stale
            // heap entries behind.
            let live = self
                .leases
                .get(&name)
                .is_some_and(|l| l.expires == deadline);
            if !live {
                continue;
            }
            self.remove_lease(&name);
            ctx.log("warn", format!("lease expired for service {name}"));
            // Listeners can watch `serviceExpired` to react to failures
            // (the restart-watcher service does exactly this).
            ctx.fire_event(CmdLine::new("serviceExpired").arg("name", name.as_str()));
        }
    }

    /// Does `class_path` match a query `class`?  A query matches the full
    /// path or any segment of it, so `lookup class=PTZCamera` finds a
    /// `Service.Device.PTZCamera.VCC3` (the Fig. 6 hierarchy).
    fn class_matches(class_path: &str, query: &str) -> bool {
        class_path == query || class_path.split('.').any(|seg| seg == query)
    }

    /// The smallest index set matching the lookup filters, or `None` for an
    /// unfiltered listing.  Name lookups hit the lease map directly; room
    /// and class queries use their indexes.
    fn candidate_names(
        &self,
        name: Option<&str>,
        class: Option<&str>,
        room: Option<&str>,
    ) -> Option<Vec<String>> {
        if let Some(n) = name {
            return Some(if self.leases.contains_key(n) {
                vec![n.to_string()]
            } else {
                Vec::new()
            });
        }
        let room_set = room.map(|r| self.by_room.get(r));
        let class_set = class.map(|c| self.by_class_segment.get(c));
        // A filter whose key has no index entry matches nothing.
        if matches!(room_set, Some(None)) || matches!(class_set, Some(None)) {
            return Some(Vec::new());
        }
        match (room_set.flatten(), class_set.flatten()) {
            // Both filtered: intersect starting from the smaller set.
            (Some(r), Some(c)) => {
                let (small, large) = if r.len() <= c.len() { (r, c) } else { (c, r) };
                Some(
                    small
                        .iter()
                        .filter(|n| large.contains(*n))
                        .cloned()
                        .collect(),
                )
            }
            (Some(r), None) => Some(r.iter().cloned().collect()),
            (None, Some(c)) => Some(c.iter().cloned().collect()),
            (None, None) => None,
        }
    }
}

impl ServiceBehavior for Asd {
    fn semantics(&self) -> Semantics {
        protocol::asd_semantics()
    }

    fn on_tick(&mut self, ctx: &mut ServiceCtx) {
        self.purge_expired(ctx);
    }

    fn on_stats(&mut self, ctx: &mut ServiceCtx) {
        let m = ctx.metrics();
        m.gauge("asd.leases").set(self.leases.len() as i64);
        m.gauge("asd.expiryHeap").set(self.expiry.len() as i64);
        m.gauge("asd.heapCompactions")
            .set(self.heap_compactions as i64);
        m.gauge("asd.registrations")
            .set(self.total_registrations as i64);
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        self.purge_expired(ctx);
        match cmd.name() {
            "register" => {
                let name = req_text!(cmd, "name").to_string();
                let incarnation = cmd.get_int("incarnation").unwrap_or(0).max(0) as u64;
                // Incarnation fence: a restarted/upgraded instance registers
                // under a higher generation; a stale instance's late
                // re-register (e.g. its lease loop saw NotFound mid-swap)
                // must not clobber the replacement's address.
                if let Some(existing) = self.leases.get(&name) {
                    if incarnation < existing.incarnation {
                        return Reply::err(
                            ErrorCode::BadState,
                            format!(
                                "stale incarnation {incarnation} for {name} (registered: {})",
                                existing.incarnation
                            ),
                        );
                    }
                }
                let entry = ServiceEntry {
                    name: name.clone(),
                    addr: Addr::new(req_text!(cmd, "host"), req_int!(cmd, "port") as u16),
                    class: req_text!(cmd, "class").to_string(),
                    room: req_text!(cmd, "room").to_string(),
                };
                // Re-registration may change room or class: drop the old
                // index entries before inserting the new ones.
                self.remove_lease(&name);
                let expires = Instant::now() + self.lease_duration;
                self.index_insert(&entry);
                self.leases.insert(
                    name.clone(),
                    Lease {
                        entry,
                        expires,
                        incarnation,
                    },
                );
                self.expiry.push(Reverse((expires, name)));
                self.maybe_compact_heap();
                self.total_registrations += 1;
                Reply::ok_with(|c| c.arg("lease", self.lease_duration.as_millis() as i64))
            }
            "renewLease" => {
                let name = req_text!(cmd, "name").to_string();
                let incarnation = cmd.get_int("incarnation").unwrap_or(0).max(0) as u64;
                self.apply_renewal(&name, incarnation)
            }
            "removeService" => {
                let name = req_text!(cmd, "name");
                if self.remove_lease(name).is_some() {
                    Reply::ok()
                } else {
                    Reply::err(ErrorCode::NotFound, format!("{name} not registered"))
                }
            }
            "lookup" => {
                let name = cmd.get_text("name");
                let class = cmd.get_text("class");
                let room = cmd.get_text("room");
                let mut matches: Vec<ServiceEntry> = match self.candidate_names(name, class, room) {
                    Some(candidates) => candidates
                        .iter()
                        .filter_map(|n| self.leases.get(n))
                        .map(|l| &l.entry)
                        // The indexes narrow; the filters still decide —
                        // a name hit must also satisfy class/room, and a
                        // class-segment hit re-checks the hierarchy rule.
                        .filter(|e| name.is_none_or(|n| e.name == n))
                        .filter(|e| class.is_none_or(|c| Self::class_matches(&e.class, c)))
                        .filter(|e| room.is_none_or(|r| e.room == r))
                        .cloned()
                        .collect(),
                    None => self.leases.values().map(|l| l.entry.clone()).collect(),
                };
                matches.sort_by(|a, b| a.name.cmp(&b.name));
                Reply::ok_with(|c| {
                    c.arg("count", matches.len() as i64)
                        .arg("services", protocol::entries_to_value(&matches))
                        // Resolution-cache TTL bound: an entry the client
                        // caches can be trusted at most one lease long.
                        .arg("lease", self.lease_duration.as_millis() as i64)
                })
            }
            "shardMap" => match &self.shard_map {
                Some(map) => map.to_reply(),
                // An unsharded ASD answers with an empty map: the client
                // treats it as "this one daemon owns everything".
                None => {
                    Reply::ok_with(|c| c.arg("epoch", 0).arg("shards", Value::Array(Vec::new())))
                }
            },
            "listServices" => {
                let mut names: Vec<Scalar> =
                    self.leases.keys().map(|n| Scalar::Str(n.clone())).collect();
                names.sort_by(|a, b| match (a, b) {
                    (Scalar::Str(x), Scalar::Str(y)) => x.cmp(y),
                    _ => std::cmp::Ordering::Equal,
                });
                Reply::ok_with(|c| {
                    c.arg("count", names.len() as i64)
                        .arg("names", Value::Vector(names))
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        // Rows sorted by name so the snapshot is deterministic; the
        // incarnation vector is index-aligned with the services array.
        let mut leases: Vec<&Lease> = self.leases.values().collect();
        leases.sort_by(|a, b| a.entry.name.cmp(&b.entry.name));
        let entries: Vec<ServiceEntry> = leases.iter().map(|l| l.entry.clone()).collect();
        let incarnations: Vec<Scalar> = leases
            .iter()
            .map(|l| Scalar::Int(l.incarnation as i64))
            .collect();
        let state = CmdLine::new("asdState")
            .arg("total", self.total_registrations)
            .arg("services", protocol::entries_to_value(&entries))
            .arg("incarnations", Value::Vector(incarnations));
        Some(protocol::seal_snapshot("asd", state))
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let state = protocol::open_snapshot("asd", snapshot)?;
        let entries = state
            .get("services")
            .and_then(protocol::entries_from_value)
            .ok_or_else(|| "asd snapshot: malformed services".to_string())?;
        let incarnations: Vec<u64> = state
            .get("incarnations")
            .and_then(Value::as_vector)
            .ok_or_else(|| "asd snapshot: malformed incarnations".to_string())?
            .iter()
            .map(|s| match s {
                Scalar::Int(i) if *i >= 0 => Ok(*i as u64),
                _ => Err("asd snapshot: malformed incarnations".to_string()),
            })
            .collect::<Result<_, _>>()?;
        if incarnations.len() != entries.len() {
            return Err("asd snapshot: incarnations do not align with services".to_string());
        }
        let total = state
            .get_int("total")
            .ok_or_else(|| "asd snapshot: missing total".to_string())?;
        self.leases.clear();
        self.expiry.clear();
        self.by_room.clear();
        self.by_class_segment.clear();
        // Every restored lease gets a fresh full deadline: registrants keep
        // renewing against the replacement, and anything truly dead still
        // expires one lease after the swap.
        let expires = Instant::now() + self.lease_duration;
        for (entry, incarnation) in entries.into_iter().zip(incarnations) {
            let name = entry.name.clone();
            self.index_insert(&entry);
            self.leases.insert(
                name.clone(),
                Lease {
                    entry,
                    expires,
                    incarnation,
                },
            );
            self.expiry.push(Reverse((expires, name)));
        }
        self.total_registrations = total.max(0) as u64;
        Ok(())
    }
}

/// How an [`AsdClient`] reaches the directory: a dedicated link, or
/// checkouts from a shared [`LinkPool`] (one per call, returned after).
enum AsdConn {
    Direct(Box<ServiceClient>),
    Pooled {
        pool: std::sync::Arc<LinkPool>,
        asd: Addr,
    },
}

/// Typed client for the ASD.
pub struct AsdClient {
    conn: AsdConn,
}

impl AsdClient {
    /// Connect to the ASD at `asd` over a dedicated link.
    pub fn connect(
        net: &SimNet,
        from_host: &HostId,
        asd: Addr,
        identity: &ace_security::keys::KeyPair,
    ) -> Result<AsdClient, ClientError> {
        Ok(AsdClient {
            conn: AsdConn::Direct(Box::new(ServiceClient::connect(
                net, from_host, asd, identity,
            )?)),
        })
    }

    /// Talk to the ASD through a shared link pool: each call checks a link
    /// out (riding session resumption on pool misses) and returns it after.
    pub fn connect_pooled(pool: std::sync::Arc<LinkPool>, asd: Addr) -> AsdClient {
        AsdClient {
            conn: AsdConn::Pooled { pool, asd },
        }
    }

    fn call(&mut self, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        match &mut self.conn {
            AsdConn::Direct(client) => client.call(cmd),
            AsdConn::Pooled { pool, asd } => pool.checkout(asd)?.call(cmd),
        }
    }

    /// Look up services by any combination of name/class/room.
    pub fn lookup(
        &mut self,
        name: Option<&str>,
        class: Option<&str>,
        room: Option<&str>,
    ) -> Result<Vec<ServiceEntry>, ClientError> {
        let mut cmd = CmdLine::new("lookup");
        if let Some(n) = name {
            cmd.push_arg("name", n);
        }
        if let Some(c) = class {
            cmd.push_arg("class", c);
        }
        if let Some(r) = room {
            cmd.push_arg("room", r);
        }
        let reply = self.call(&cmd)?;
        reply
            .get("services")
            .and_then(protocol::entries_from_value)
            .ok_or(ClientError::Service {
                code: ErrorCode::Internal,
                msg: "malformed lookup reply".into(),
            })
    }

    /// Find one service by exact name.
    pub fn find(&mut self, name: &str) -> Result<Option<ServiceEntry>, ClientError> {
        Ok(self.lookup(Some(name), None, None)?.into_iter().next())
    }

    /// All registered service names.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        let reply = self.call(&CmdLine::new("listServices"))?;
        let names = reply
            .get_vector("names")
            .map(|v| {
                v.iter()
                    .filter_map(|s| s.as_text().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Ok(names)
    }

    /// Register a service (used by tests and non-daemon actors; daemons
    /// register automatically at spawn).
    pub fn register(&mut self, entry: &ServiceEntry) -> Result<Duration, ClientError> {
        let reply = self.call(
            &CmdLine::new("register")
                .arg("name", entry.name.as_str())
                .arg("host", entry.addr.host.as_str())
                .arg("port", entry.addr.port)
                .arg("room", entry.room.as_str())
                .arg("class", entry.class.as_str()),
        )?;
        Ok(Duration::from_millis(
            reply.get_int("lease").unwrap_or(0) as u64
        ))
    }

    /// Renew a lease.
    pub fn renew(&mut self, name: &str) -> Result<(), ClientError> {
        self.call(&CmdLine::new("renewLease").arg("name", name))
            .map(|_| ())
    }

    /// Deregister a service.
    pub fn remove(&mut self, name: &str) -> Result<(), ClientError> {
        self.call(&CmdLine::new("removeService").arg("name", name))
            .map(|_| ())
    }

    /// Access the raw dedicated client (for `addNotification` etc.).
    /// `None` when this client talks through a pool — pooled checkouts are
    /// per-call and cannot be borrowed out.
    pub fn raw(&mut self) -> Option<&mut ServiceClient> {
        match &mut self.conn {
            AsdConn::Direct(client) => Some(client),
            AsdConn::Pooled { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_matching_follows_hierarchy() {
        assert!(Asd::class_matches(
            "Service.Device.PTZCamera.VCC3",
            "PTZCamera"
        ));
        assert!(Asd::class_matches("Service.Device.PTZCamera.VCC3", "VCC3"));
        assert!(Asd::class_matches(
            "Service.Device.PTZCamera.VCC3",
            "Service"
        ));
        assert!(Asd::class_matches(
            "Service.Device.PTZCamera.VCC3",
            "Service.Device.PTZCamera.VCC3"
        ));
        assert!(!Asd::class_matches("Service.Device.PTZCamera.VCC3", "PTZ"));
        assert!(!Asd::class_matches(
            "Service.Device.PTZCamera.VCC3",
            "Projector"
        ));
    }

    fn entry(name: &str, class: &str, room: &str) -> ServiceEntry {
        ServiceEntry {
            name: name.to_string(),
            addr: Addr::new("host", 1),
            class: class.to_string(),
            room: room.to_string(),
        }
    }

    fn seeded() -> Asd {
        let mut asd = Asd::new(Duration::from_secs(30));
        for e in [
            entry("cam1", "Service.Device.PTZCamera.VCC3", "hawk"),
            entry("cam2", "Service.Device.PTZCamera.EVI30", "dove"),
            entry("proj1", "Service.Device.Projector", "hawk"),
        ] {
            asd.index_insert(&e);
            let expires = Instant::now() + asd.lease_duration;
            asd.expiry.push(Reverse((expires, e.name.clone())));
            asd.leases.insert(
                e.name.clone(),
                Lease {
                    entry: e,
                    expires,
                    incarnation: 0,
                },
            );
        }
        asd
    }

    #[test]
    fn candidate_indexes_narrow_correctly() {
        let asd = seeded();
        // Name: direct hit.
        assert_eq!(
            asd.candidate_names(Some("cam1"), None, None),
            Some(vec!["cam1".to_string()])
        );
        assert_eq!(asd.candidate_names(Some("nope"), None, None), Some(vec![]));
        // Room index.
        let mut hawk = asd.candidate_names(None, None, Some("hawk")).unwrap();
        hawk.sort();
        assert_eq!(hawk, vec!["cam1".to_string(), "proj1".to_string()]);
        // Class-segment index.
        let mut cams = asd.candidate_names(None, Some("PTZCamera"), None).unwrap();
        cams.sort();
        assert_eq!(cams, vec!["cam1".to_string(), "cam2".to_string()]);
        // Intersection.
        assert_eq!(
            asd.candidate_names(None, Some("PTZCamera"), Some("hawk")),
            Some(vec!["cam1".to_string()])
        );
        // Unknown index keys: empty, not full-scan.
        assert_eq!(
            asd.candidate_names(None, Some("Toaster"), None),
            Some(vec![])
        );
        // No filters: full listing.
        assert_eq!(asd.candidate_names(None, None, None), None);
    }

    #[test]
    fn index_follows_reregistration_and_removal() {
        let mut asd = seeded();
        // cam1 moves rooms via re-registration.
        let moved = entry("cam1", "Service.Device.PTZCamera.VCC3", "dove");
        asd.remove_lease("cam1");
        asd.index_insert(&moved);
        let expires = Instant::now() + asd.lease_duration;
        asd.expiry.push(Reverse((expires, moved.name.clone())));
        asd.leases.insert(
            moved.name.clone(),
            Lease {
                entry: moved,
                expires,
                incarnation: 0,
            },
        );
        assert_eq!(
            asd.candidate_names(None, None, Some("hawk")),
            Some(vec!["proj1".to_string()])
        );
        let mut dove = asd.candidate_names(None, None, Some("dove")).unwrap();
        dove.sort();
        assert_eq!(dove, vec!["cam1".to_string(), "cam2".to_string()]);

        // Removal cleans both indexes.
        asd.remove_lease("cam2");
        let cams = asd.candidate_names(None, Some("PTZCamera"), None).unwrap();
        assert_eq!(cams, vec!["cam1".to_string()]);
        assert_eq!(asd.candidate_names(None, Some("EVI30"), None), Some(vec![]));
    }

    #[test]
    fn expiry_heap_skips_stale_renewal_entries() {
        let mut asd = Asd::new(Duration::from_millis(40));
        let e = entry("svc", "Service.Test", "lab");
        let first = Instant::now() + asd.lease_duration;
        asd.index_insert(&e);
        asd.leases.insert(
            "svc".to_string(),
            Lease {
                entry: e,
                expires: first,
                incarnation: 0,
            },
        );
        asd.expiry.push(Reverse((first, "svc".to_string())));
        // Renew: fresh deadline, stale heap entry left behind.
        let renewed = first + Duration::from_millis(200);
        asd.leases.get_mut("svc").unwrap().expires = renewed;
        asd.expiry.push(Reverse((renewed, "svc".to_string())));

        std::thread::sleep(Duration::from_millis(60));
        // Simulate the purge loop's heap discipline without a ServiceCtx.
        let now = Instant::now();
        let mut purged = Vec::new();
        while let Some(Reverse((deadline, _))) = asd.expiry.peek() {
            if *deadline > now {
                break;
            }
            let Reverse((deadline, name)) = asd.expiry.pop().unwrap();
            if asd.leases.get(&name).is_some_and(|l| l.expires == deadline) {
                asd.remove_lease(&name);
                purged.push(name);
            }
        }
        assert!(
            purged.is_empty(),
            "renewed lease must survive its stale heap entry"
        );
        assert!(asd.leases.contains_key("svc"));
    }

    /// Full index-consistency check: every indexed name is a live lease
    /// indexed under exactly its keys, every lease is fully indexed, and
    /// no index bucket is empty (emptied keys must be dropped eagerly —
    /// the O(all-segments) `retain` this replaces hid leaks like that).
    fn assert_indexes_consistent(asd: &Asd) {
        for (room, names) in &asd.by_room {
            assert!(!names.is_empty(), "empty room bucket {room:?} leaked");
            for name in names {
                let lease = asd.leases.get(name).expect("indexed name has no lease");
                assert_eq!(&lease.entry.room, room);
            }
        }
        for (key, names) in &asd.by_class_segment {
            assert!(!names.is_empty(), "empty class bucket {key:?} leaked");
            for name in names {
                let lease = asd.leases.get(name).expect("indexed name has no lease");
                assert!(
                    Asd::class_keys(&lease.entry.class).any(|k| k == key),
                    "{name} indexed under foreign key {key:?}"
                );
            }
        }
        for lease in asd.leases.values() {
            assert!(asd.by_room[&lease.entry.room].contains(&lease.entry.name));
            for key in Asd::class_keys(&lease.entry.class) {
                assert!(
                    asd.by_class_segment[key].contains(&lease.entry.name),
                    "{} missing from class key {key:?}",
                    lease.entry.name
                );
            }
        }
    }

    #[test]
    fn unregister_drops_only_emptied_class_keys() {
        let mut asd = Asd::new(Duration::from_secs(30));
        // Overlapping segment sets: removing one entry must only delete
        // keys it emptied, never buckets other entries still occupy.
        for i in 0..40 {
            let e = entry(
                &format!("svc{i}"),
                &format!("Service.Device.Kind{}.Model{i}", i % 4),
                &format!("room{}", i % 5),
            );
            asd.index_insert(&e);
            let expires = Instant::now() + asd.lease_duration;
            asd.leases.insert(
                e.name.clone(),
                Lease {
                    entry: e,
                    expires,
                    incarnation: 0,
                },
            );
        }
        assert_indexes_consistent(&asd);
        for i in (0..40).step_by(2) {
            assert!(asd.remove_lease(&format!("svc{i}")).is_some());
            assert_indexes_consistent(&asd);
        }
        // Shared segments survive while any holder remains…
        assert!(asd.by_class_segment.contains_key("Service"));
        assert!(asd.by_class_segment.contains_key("Kind1"));
        // …and per-entry keys vanish with their entry.
        assert!(!asd.by_class_segment.contains_key("Model0"));
        assert!(asd.by_class_segment.contains_key("Model1"));
        for i in (1..40).step_by(2) {
            assert!(asd.remove_lease(&format!("svc{i}")).is_some());
        }
        assert!(asd.by_class_segment.is_empty(), "all buckets must drain");
        assert!(asd.by_room.is_empty());
    }

    #[test]
    fn renewal_storm_keeps_expiry_heap_bounded() {
        let mut asd = Asd::new(Duration::from_secs(30));
        for i in 0..10 {
            let e = entry(&format!("svc{i}"), "Service.Test", "lab");
            asd.index_insert(&e);
            let expires = Instant::now() + asd.lease_duration;
            asd.expiry.push(Reverse((expires, e.name.clone())));
            asd.leases.insert(
                e.name.clone(),
                Lease {
                    entry: e,
                    expires,
                    incarnation: 0,
                },
            );
        }
        // 5,000 renewals used to strand 5,000 stale heap entries.
        for round in 0..500 {
            for i in 0..10 {
                let reply = asd.apply_renewal(&format!("svc{i}"), 0);
                assert!(reply.is_ok(), "renewal failed on round {round}");
            }
        }
        assert!(
            asd.expiry.len() <= HEAP_COMPACT_MIN,
            "heap must stay bounded under renewals, got {}",
            asd.expiry.len()
        );
        assert!(
            asd.heap_compactions > 0,
            "soak must actually exercise compaction"
        );
        // Compaction preserves exactly the live deadlines: every lease
        // keeps a heap entry matching its current expiry.
        for (name, lease) in &asd.leases {
            assert!(
                asd.expiry
                    .iter()
                    .any(|Reverse((at, n))| n == name && *at == lease.expires),
                "live deadline for {name} lost by compaction"
            );
        }
    }

    #[test]
    fn snapshot_roundtrips_leases_and_incarnations() {
        let mut asd = seeded();
        asd.leases.get_mut("cam1").unwrap().incarnation = 3;
        asd.total_registrations = 7;
        let blob = asd.snapshot_state().expect("asd is stateful");

        let mut restored = Asd::new(Duration::from_secs(30));
        restored.restore_state(&blob).expect("restore");
        assert_eq!(restored.leases.len(), 3);
        assert_eq!(restored.leases["cam1"].incarnation, 3);
        assert_eq!(restored.leases["cam2"].incarnation, 0);
        assert_eq!(restored.total_registrations, 7);
        // Indexes are rebuilt, not just the lease map.
        let mut hawk = restored.candidate_names(None, None, Some("hawk")).unwrap();
        hawk.sort();
        assert_eq!(hawk, vec!["cam1".to_string(), "proj1".to_string()]);

        // A flipped byte refuses the snapshot.
        let mut torn = blob.clone();
        let mid = torn.len() / 2;
        torn[mid] ^= 0x40;
        let mut fresh = Asd::new(Duration::from_secs(30));
        assert!(fresh.restore_state(&torn).is_err());
    }
}
