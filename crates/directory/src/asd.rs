//! The ACE Service Directory (§2.4, Fig. 7).
//!
//! "A central listing or directory of services currently available and
//! running within the ACE environment."  Services register on startup,
//! renew leases periodically, deregister on shutdown, and are purged
//! automatically when their lease expires — "this mechanism accounts for
//! system failures whereby daemons that become inactive due to malfunction
//! are automatically removed from the ASD once their service lease expires."

use ace_core::prelude::*;
use ace_core::protocol::{self, ServiceEntry};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// One live registration.
#[derive(Debug, Clone)]
struct Lease {
    entry: ServiceEntry,
    expires: Instant,
}

/// The ASD service behavior.
pub struct Asd {
    lease_duration: Duration,
    leases: HashMap<String, Lease>,
    /// Registrations since start (monotonic; for experiments).
    total_registrations: u64,
}

impl Asd {
    /// An ASD granting leases of the given duration.
    pub fn new(lease_duration: Duration) -> Asd {
        Asd {
            lease_duration,
            leases: HashMap::new(),
            total_registrations: 0,
        }
    }

    /// The default production lease (30 s).  Tests use much shorter ones.
    pub fn with_default_lease() -> Asd {
        Asd::new(Duration::from_secs(30))
    }

    fn purge_expired(&mut self, ctx: &mut ServiceCtx) {
        let now = Instant::now();
        let expired: Vec<String> = self
            .leases
            .iter()
            .filter(|(_, l)| l.expires <= now)
            .map(|(name, _)| name.clone())
            .collect();
        for name in expired {
            self.leases.remove(&name);
            ctx.log("warn", format!("lease expired for service {name}"));
            // Listeners can watch `serviceExpired` to react to failures
            // (the restart-watcher service does exactly this).
            ctx.fire_event(CmdLine::new("serviceExpired").arg("name", name.as_str()));
        }
    }

    /// Does `class_path` match a query `class`?  A query matches the full
    /// path or any segment of it, so `lookup class=PTZCamera` finds a
    /// `Service.Device.PTZCamera.VCC3` (the Fig. 6 hierarchy).
    fn class_matches(class_path: &str, query: &str) -> bool {
        class_path == query || class_path.split('.').any(|seg| seg == query)
    }
}

impl ServiceBehavior for Asd {
    fn semantics(&self) -> Semantics {
        protocol::asd_semantics()
    }

    fn on_tick(&mut self, ctx: &mut ServiceCtx) {
        self.purge_expired(ctx);
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        self.purge_expired(ctx);
        match cmd.name() {
            "register" => {
                let name = cmd.get_text("name").expect("validated").to_string();
                let entry = ServiceEntry {
                    name: name.clone(),
                    addr: Addr::new(
                        cmd.get_text("host").expect("validated"),
                        cmd.get_int("port").expect("validated") as u16,
                    ),
                    class: cmd.get_text("class").expect("validated").to_string(),
                    room: cmd.get_text("room").expect("validated").to_string(),
                };
                self.leases.insert(
                    name,
                    Lease {
                        entry,
                        expires: Instant::now() + self.lease_duration,
                    },
                );
                self.total_registrations += 1;
                Reply::ok_with(|c| c.arg("lease", self.lease_duration.as_millis() as i64))
            }
            "renewLease" => {
                let name = cmd.get_text("name").expect("validated");
                match self.leases.get_mut(name) {
                    Some(lease) => {
                        lease.expires = Instant::now() + self.lease_duration;
                        Reply::ok_with(|c| c.arg("lease", self.lease_duration.as_millis() as i64))
                    }
                    None => Reply::err(ErrorCode::NotFound, format!("no lease for {name}")),
                }
            }
            "removeService" => {
                let name = cmd.get_text("name").expect("validated");
                if self.leases.remove(name).is_some() {
                    Reply::ok()
                } else {
                    Reply::err(ErrorCode::NotFound, format!("{name} not registered"))
                }
            }
            "lookup" => {
                let name = cmd.get_text("name");
                let class = cmd.get_text("class");
                let room = cmd.get_text("room");
                let mut matches: Vec<ServiceEntry> = self
                    .leases
                    .values()
                    .map(|l| &l.entry)
                    .filter(|e| name.is_none_or(|n| e.name == n))
                    .filter(|e| class.is_none_or(|c| Self::class_matches(&e.class, c)))
                    .filter(|e| room.is_none_or(|r| e.room == r))
                    .cloned()
                    .collect();
                matches.sort_by(|a, b| a.name.cmp(&b.name));
                Reply::ok_with(|c| {
                    c.arg("count", matches.len() as i64)
                        .arg("services", protocol::entries_to_value(&matches))
                })
            }
            "listServices" => {
                let mut names: Vec<Scalar> =
                    self.leases.keys().map(|n| Scalar::Str(n.clone())).collect();
                names.sort_by(|a, b| match (a, b) {
                    (Scalar::Str(x), Scalar::Str(y)) => x.cmp(y),
                    _ => std::cmp::Ordering::Equal,
                });
                Reply::ok_with(|c| {
                    c.arg("count", names.len() as i64)
                        .arg("names", Value::Vector(names))
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Typed client for the ASD.
pub struct AsdClient {
    client: ServiceClient,
}

impl AsdClient {
    /// Connect to the ASD at `asd`.
    pub fn connect(
        net: &SimNet,
        from_host: &HostId,
        asd: Addr,
        identity: &ace_security::keys::KeyPair,
    ) -> Result<AsdClient, ClientError> {
        Ok(AsdClient {
            client: ServiceClient::connect(net, from_host, asd, identity)?,
        })
    }

    /// Look up services by any combination of name/class/room.
    pub fn lookup(
        &mut self,
        name: Option<&str>,
        class: Option<&str>,
        room: Option<&str>,
    ) -> Result<Vec<ServiceEntry>, ClientError> {
        let mut cmd = CmdLine::new("lookup");
        if let Some(n) = name {
            cmd.push_arg("name", n);
        }
        if let Some(c) = class {
            cmd.push_arg("class", c);
        }
        if let Some(r) = room {
            cmd.push_arg("room", r);
        }
        let reply = self.client.call(&cmd)?;
        reply
            .get("services")
            .and_then(protocol::entries_from_value)
            .ok_or(ClientError::Service {
                code: ErrorCode::Internal,
                msg: "malformed lookup reply".into(),
            })
    }

    /// Find one service by exact name.
    pub fn find(&mut self, name: &str) -> Result<Option<ServiceEntry>, ClientError> {
        Ok(self.lookup(Some(name), None, None)?.into_iter().next())
    }

    /// All registered service names.
    pub fn list(&mut self) -> Result<Vec<String>, ClientError> {
        let reply = self.client.call(&CmdLine::new("listServices"))?;
        let names = reply
            .get_vector("names")
            .map(|v| {
                v.iter()
                    .filter_map(|s| s.as_text().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        Ok(names)
    }

    /// Register a service (used by tests and non-daemon actors; daemons
    /// register automatically at spawn).
    pub fn register(&mut self, entry: &ServiceEntry) -> Result<Duration, ClientError> {
        let reply = self.client.call(
            &CmdLine::new("register")
                .arg("name", entry.name.as_str())
                .arg("host", entry.addr.host.as_str())
                .arg("port", entry.addr.port)
                .arg("room", entry.room.as_str())
                .arg("class", entry.class.as_str()),
        )?;
        Ok(Duration::from_millis(
            reply.get_int("lease").unwrap_or(0) as u64
        ))
    }

    /// Renew a lease.
    pub fn renew(&mut self, name: &str) -> Result<(), ClientError> {
        self.client
            .call_ok(&CmdLine::new("renewLease").arg("name", name))
    }

    /// Deregister a service.
    pub fn remove(&mut self, name: &str) -> Result<(), ClientError> {
        self.client
            .call_ok(&CmdLine::new("removeService").arg("name", name))
    }

    /// Access the raw client (for `addNotification` etc.).
    pub fn raw(&mut self) -> &mut ServiceClient {
        &mut self.client
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_matching_follows_hierarchy() {
        assert!(Asd::class_matches(
            "Service.Device.PTZCamera.VCC3",
            "PTZCamera"
        ));
        assert!(Asd::class_matches("Service.Device.PTZCamera.VCC3", "VCC3"));
        assert!(Asd::class_matches(
            "Service.Device.PTZCamera.VCC3",
            "Service"
        ));
        assert!(Asd::class_matches(
            "Service.Device.PTZCamera.VCC3",
            "Service.Device.PTZCamera.VCC3"
        ));
        assert!(!Asd::class_matches("Service.Device.PTZCamera.VCC3", "PTZ"));
        assert!(!Asd::class_matches(
            "Service.Device.PTZCamera.VCC3",
            "Projector"
        ));
    }
}
