//! # ace-directory — the ACE directory tier
//!
//! The three framework services every daemon talks to at startup (Fig. 9):
//!
//! * [`Asd`] — the ACE Service Directory (§2.4): registration, leases,
//!   lease-expiry purging, and lookup by name/class/room;
//! * [`RoomDb`] — the Room Database (§4.11): buildings, rooms, dimensions,
//!   and service placements;
//! * [`NetLogger`] — the Network Logger (§4.14): the bounded activity
//!   history used for security auditing and debugging.
//!
//! [`bootstrap`] brings all three up in dependency order on a given host —
//! the first thing every environment (and most tests) does.
//!
//! For environments that outgrow a single directory daemon, [`shardmap`]
//! partitions the ASD across replicated shards ([`spawn_sharded_asd`],
//! [`ShardedAsdClient`]) while keeping the same wire protocol per shard.

pub mod asd;
pub mod netlogger;
pub mod roomdb;
pub mod shardmap;

pub use asd::{Asd, AsdClient};
pub use netlogger::{EventRecord, EventRow, LogRow, LoggerClient, NetLogger};
pub use roomdb::{Placement, RoomDb, RoomDbClient, RoomInfo};
pub use shardmap::{
    spawn_sharded_asd, subscribe_invalidation_all, ShardMap, ShardedAsdClient, ShardedDirectory,
};

use ace_core::prelude::*;
use ace_core::protocol::{ASD_PORT, LOGGER_PORT, ROOMDB_PORT};
use ace_core::SpawnError;
use std::time::Duration;

/// Handles to the three framework daemons plus the addresses services need.
pub struct Framework {
    pub asd: DaemonHandle,
    pub roomdb: DaemonHandle,
    pub logger: DaemonHandle,
    pub asd_addr: Addr,
    pub roomdb_addr: Addr,
    pub logger_addr: Addr,
}

impl Framework {
    /// Configure a service daemon with all three framework registrations.
    pub fn service_config(
        &self,
        name: &str,
        class: &str,
        room: &str,
        host: impl Into<HostId>,
        port: u16,
    ) -> DaemonConfig {
        DaemonConfig::new(name, class, room, host, port)
            .with_asd(self.asd_addr.clone())
            .with_roomdb(self.roomdb_addr.clone())
            .with_logger(self.logger_addr.clone())
    }

    /// Gracefully stop the tier (reverse dependency order).
    pub fn shutdown(self) {
        self.logger.shutdown();
        self.roomdb.shutdown();
        self.asd.shutdown();
    }
}

/// Bring up ASD → Room DB → Net Logger on `host` with the given ASD lease.
///
/// The ASD registers with nothing (it is the root); the Room DB and Logger
/// register with the ASD so they are discoverable like any other service.
pub fn bootstrap(
    net: &SimNet,
    host: impl Into<HostId>,
    lease: Duration,
) -> Result<Framework, SpawnError> {
    let host = host.into();
    let asd_addr = Addr::new(host.clone(), ASD_PORT);
    let roomdb_addr = Addr::new(host.clone(), ROOMDB_PORT);
    let logger_addr = Addr::new(host.clone(), LOGGER_PORT);

    let asd = Daemon::spawn(
        net,
        DaemonConfig::new(
            "asd",
            "Service.ServiceDirectory",
            "machineroom",
            host.clone(),
            ASD_PORT,
        ),
        Box::new(Asd::new(lease)),
    )?;
    let roomdb = Daemon::spawn(
        net,
        DaemonConfig::new(
            "roomdb",
            "Service.Database.Room",
            "machineroom",
            host.clone(),
            ROOMDB_PORT,
        )
        .with_asd(asd_addr.clone()),
        Box::new(RoomDb::new()),
    )?;
    let logger = Daemon::spawn(
        net,
        DaemonConfig::new(
            "netlogger",
            "Service.Logger",
            "machineroom",
            host.clone(),
            LOGGER_PORT,
        )
        .with_asd(asd_addr.clone())
        .with_roomdb(roomdb_addr.clone()),
        Box::new(NetLogger::default()),
    )?;

    Ok(Framework {
        asd,
        roomdb,
        logger,
        asd_addr,
        roomdb_addr,
        logger_addr,
    })
}
