//! The ACE Network Logger service (§4.14).
//!
//! "This service simply stores service activity information within a set of
//! logging files … to record what kinds of activities are present within an
//! ACE system and to serve as a history" for security auditing and
//! debugging.  Records live in a bounded ring; `tail` and `logStats` expose
//! them to administrators.

use ace_core::prelude::*;
use ace_core::protocol;
use std::collections::VecDeque;
use std::time::Instant;

/// One activity record.
#[derive(Debug, Clone)]
pub struct LogRecord {
    pub seq: u64,
    pub level: String,
    pub service: String,
    pub host: String,
    pub msg: String,
    pub at: Instant,
}

/// The Network Logger behavior.
pub struct NetLogger {
    records: VecDeque<LogRecord>,
    capacity: usize,
    next_seq: u64,
}

impl NetLogger {
    /// A logger retaining the most recent `capacity` records.
    pub fn new(capacity: usize) -> NetLogger {
        NetLogger {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
        }
    }
}

impl Default for NetLogger {
    fn default() -> Self {
        NetLogger::new(10_000)
    }
}

fn records_to_value(records: &[&LogRecord]) -> Value {
    Value::Array(
        records
            .iter()
            .map(|r| {
                vec![
                    Scalar::Str(r.seq.to_string()),
                    Scalar::Str(r.level.clone()),
                    Scalar::Str(r.service.clone()),
                    Scalar::Str(r.host.clone()),
                    Scalar::Str(r.msg.clone()),
                ]
            })
            .collect(),
    )
}

/// One decoded `tail` row: `(seq, level, service, host, msg)`.
pub type LogRow = (u64, String, String, String, String);

/// Decode a `records=` array of a `tail` reply into [`LogRow`] tuples.
pub fn records_from_value(value: &Value) -> Option<Vec<LogRow>> {
    let rows = match value {
        // An empty array encodes as `{}`, which re-parses as an empty
        // vector — treat it as zero rows.
        v if v.as_vector().is_some_and(|s| s.is_empty()) => return Some(Vec::new()),
        v => v.as_array()?,
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != 5 {
            return None;
        }
        let cell = |i: usize| row[i].as_text();
        out.push((
            cell(0)?.parse().ok()?,
            cell(1)?.to_string(),
            cell(2)?.to_string(),
            cell(3)?.to_string(),
            cell(4)?.to_string(),
        ));
    }
    Some(out)
}

impl ServiceBehavior for NetLogger {
    fn semantics(&self) -> Semantics {
        protocol::logger_semantics()
    }

    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, from: &ClientInfo) -> Reply {
        match cmd.name() {
            "log" => {
                let record = LogRecord {
                    seq: self.next_seq,
                    level: cmd.get_text("level").expect("validated").to_string(),
                    service: cmd.get_text("service").unwrap_or("-").to_string(),
                    host: cmd
                        .get_text("host")
                        .unwrap_or(from.addr.host.as_str())
                        .to_string(),
                    msg: cmd.get_text("msg").expect("validated").to_string(),
                    at: Instant::now(),
                };
                self.next_seq += 1;
                if self.records.len() == self.capacity {
                    self.records.pop_front();
                }
                self.records.push_back(record);
                Reply::ok_with(|c| c.arg("seq", (self.next_seq - 1) as i64))
            }
            "tail" => {
                let count = cmd.get_int("count").unwrap_or(10).max(0) as usize;
                let level = cmd.get_text("level");
                let matches: Vec<&LogRecord> = self
                    .records
                    .iter()
                    .rev()
                    .filter(|r| level.is_none_or(|l| r.level == l))
                    .take(count)
                    .collect();
                // Oldest-first in the reply.
                let ordered: Vec<&LogRecord> = matches.into_iter().rev().collect();
                Reply::ok_with(|c| {
                    c.arg("count", ordered.len() as i64)
                        .arg("records", records_to_value(&ordered))
                })
            }
            "logStats" => {
                let mut info = 0i64;
                let mut warn = 0i64;
                let mut error = 0i64;
                let mut security = 0i64;
                for r in &self.records {
                    match r.level.as_str() {
                        "info" => info += 1,
                        "warn" => warn += 1,
                        "error" => error += 1,
                        "security" => security += 1,
                        _ => {}
                    }
                }
                Reply::ok_with(|c| {
                    c.arg("total", self.next_seq as i64)
                        .arg("retained", self.records.len() as i64)
                        .arg("info", info)
                        .arg("warn", warn)
                        .arg("error", error)
                        .arg("security", security)
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Typed client for the Network Logger.
pub struct LoggerClient {
    client: ServiceClient,
}

impl LoggerClient {
    pub fn connect(
        net: &SimNet,
        from_host: &HostId,
        logger: Addr,
        identity: &ace_security::keys::KeyPair,
    ) -> Result<LoggerClient, ClientError> {
        Ok(LoggerClient {
            client: ServiceClient::connect(net, from_host, logger, identity)?,
        })
    }

    /// Append one record.
    pub fn log(&mut self, level: &str, msg: &str) -> Result<(), ClientError> {
        self.client.call_ok(
            &CmdLine::new("log")
                .arg("level", level)
                .arg("msg", Value::Str(msg.to_string())),
        )
    }

    /// The most recent records, oldest first.
    pub fn tail(&mut self, count: usize, level: Option<&str>) -> Result<Vec<LogRow>, ClientError> {
        let mut cmd = CmdLine::new("tail").arg("count", count as i64);
        if let Some(l) = level {
            cmd.push_arg("level", l);
        }
        let reply = self.client.call(&cmd)?;
        reply
            .get("records")
            .and_then(records_from_value)
            .ok_or(ClientError::Service {
                code: ErrorCode::Internal,
                msg: "malformed tail reply".into(),
            })
    }

    /// `(total ever, retained, info, warn, error, security)` counts.
    pub fn stats(&mut self) -> Result<(u64, u64, u64, u64, u64, u64), ClientError> {
        let reply = self.client.call(&CmdLine::new("logStats"))?;
        let g = |k: &str| reply.get_int(k).unwrap_or(0) as u64;
        Ok((
            g("total"),
            g("retained"),
            g("info"),
            g("warn"),
            g("error"),
            g("security"),
        ))
    }
}
