//! The ACE Network Logger service (§4.14).
//!
//! "This service simply stores service activity information within a set of
//! logging files … to record what kinds of activities are present within an
//! ACE system and to serve as a history" for security auditing and
//! debugging.  Records live in a bounded ring; `tail` and `logStats` expose
//! them to administrators.

use ace_core::prelude::*;
use ace_core::protocol;
use ace_core::Counter;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;
use std::time::Instant;

/// One activity record.
#[derive(Debug, Clone)]
pub struct LogRecord {
    pub seq: u64,
    pub level: String,
    pub service: String,
    pub host: String,
    pub msg: String,
    pub at: Instant,
}

/// One typed event record: a parsed command line of fields, not free text.
/// Daemons push these automatically (kind `stats` carries each daemon's
/// metrics snapshot); `queryEvents` retrieves them per service.
#[derive(Debug, Clone)]
pub struct EventRecord {
    pub seq: u64,
    pub service: String,
    pub kind: String,
    pub host: String,
    /// The decoded payload — e.g. a `stats` command whose `counters` /
    /// `gauges` / `histograms` arrays parse via `StatsReport::from_cmdline`.
    pub fields: CmdLine,
    pub at: Instant,
}

/// Default per-service retention bound for typed event records.
pub const DEFAULT_EVENTS_PER_SERVICE: usize = 256;

/// The Network Logger behavior.
pub struct NetLogger {
    records: VecDeque<LogRecord>,
    capacity: usize,
    next_seq: u64,
    /// Typed events, bounded per originating service so one chatty daemon
    /// cannot evict everyone else's history.
    events: HashMap<String, VecDeque<EventRecord>>,
    events_per_service: usize,
    next_event_seq: u64,
    /// Ring evictions, i.e. history lost to bounded retention.  Mirrored
    /// into the daemon's metrics as `shed.records` / `shed.events` so a
    /// flood that outruns the rings is visible, never silent.
    records_shed: u64,
    events_shed: u64,
    shed_records_counter: Option<Arc<Counter>>,
    shed_events_counter: Option<Arc<Counter>>,
}

impl NetLogger {
    /// A logger retaining the most recent `capacity` records.
    pub fn new(capacity: usize) -> NetLogger {
        NetLogger {
            records: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            next_seq: 0,
            events: HashMap::new(),
            events_per_service: DEFAULT_EVENTS_PER_SERVICE,
            next_event_seq: 0,
            records_shed: 0,
            events_shed: 0,
            shed_records_counter: None,
            shed_events_counter: None,
        }
    }

    /// Override the per-service typed-event retention bound.
    pub fn with_event_capacity(mut self, per_service: usize) -> NetLogger {
        self.events_per_service = per_service.max(1);
        self
    }
}

impl Default for NetLogger {
    fn default() -> Self {
        NetLogger::new(10_000)
    }
}

fn records_to_value(records: &[&LogRecord]) -> Value {
    Value::Array(
        records
            .iter()
            .map(|r| {
                vec![
                    Scalar::Str(r.seq.to_string()),
                    Scalar::Str(r.level.clone()),
                    Scalar::Str(r.service.clone()),
                    Scalar::Str(r.host.clone()),
                    Scalar::Str(r.msg.clone()),
                ]
            })
            .collect(),
    )
}

fn events_to_value(events: &[&EventRecord]) -> Value {
    Value::Array(
        events
            .iter()
            .map(|e| {
                vec![
                    Scalar::Str(e.seq.to_string()),
                    Scalar::Str(e.service.clone()),
                    Scalar::Str(e.kind.clone()),
                    Scalar::Str(e.host.clone()),
                    Scalar::Str(protocol::hex_encode(e.fields.to_wire().as_bytes())),
                ]
            })
            .collect(),
    )
}

/// One decoded `queryEvents` row: `(seq, service, kind, host, fields)`.
pub type EventRow = (u64, String, String, String, CmdLine);

/// Decode an `events=` array of a `queryEvents` reply into [`EventRow`]s.
pub fn events_from_value(value: &Value) -> Option<Vec<EventRow>> {
    let rows = match value {
        v if v.as_vector().is_some_and(|s| s.is_empty()) => return Some(Vec::new()),
        v => v.as_array()?,
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != 5 {
            return None;
        }
        let cell = |i: usize| row[i].as_text();
        let bytes = protocol::hex_decode(cell(4)?)?;
        let wire = String::from_utf8(bytes).ok()?;
        out.push((
            cell(0)?.parse().ok()?,
            cell(1)?.to_string(),
            cell(2)?.to_string(),
            cell(3)?.to_string(),
            CmdLine::parse(&wire).ok()?,
        ));
    }
    Some(out)
}

/// One decoded `tail` row: `(seq, level, service, host, msg)`.
pub type LogRow = (u64, String, String, String, String);

/// Decode a `records=` array of a `tail` reply into [`LogRow`] tuples.
pub fn records_from_value(value: &Value) -> Option<Vec<LogRow>> {
    let rows = match value {
        // An empty array encodes as `{}`, which re-parses as an empty
        // vector — treat it as zero rows.
        v if v.as_vector().is_some_and(|s| s.is_empty()) => return Some(Vec::new()),
        v => v.as_array()?,
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != 5 {
            return None;
        }
        let cell = |i: usize| row[i].as_text();
        out.push((
            cell(0)?.parse().ok()?,
            cell(1)?.to_string(),
            cell(2)?.to_string(),
            cell(3)?.to_string(),
            cell(4)?.to_string(),
        ));
    }
    Some(out)
}

impl ServiceBehavior for NetLogger {
    fn semantics(&self) -> Semantics {
        protocol::logger_semantics()
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, from: &ClientInfo) -> Reply {
        match cmd.name() {
            "log" => {
                let record = LogRecord {
                    seq: self.next_seq,
                    level: req_text!(cmd, "level").to_string(),
                    service: cmd.get_text("service").unwrap_or("-").to_string(),
                    host: cmd
                        .get_text("host")
                        .unwrap_or(from.addr.host.as_str())
                        .to_string(),
                    msg: req_text!(cmd, "msg").to_string(),
                    at: Instant::now(),
                };
                self.next_seq += 1;
                if self.records.len() == self.capacity {
                    self.records.pop_front();
                    self.records_shed += 1;
                    self.shed_records_counter
                        .get_or_insert_with(|| ctx.metrics().counter("shed.records"))
                        .incr();
                }
                self.records.push_back(record);
                Reply::ok_with(|c| c.arg("seq", (self.next_seq - 1) as i64))
            }
            "tail" => {
                let count = cmd.get_int("count").unwrap_or(10).max(0) as usize;
                let level = cmd.get_text("level");
                let matches: Vec<&LogRecord> = self
                    .records
                    .iter()
                    .rev()
                    .filter(|r| level.is_none_or(|l| r.level == l))
                    .take(count)
                    .collect();
                // Oldest-first in the reply.
                let ordered: Vec<&LogRecord> = matches.into_iter().rev().collect();
                Reply::ok_with(|c| {
                    c.arg("count", ordered.len() as i64)
                        .arg("records", records_to_value(&ordered))
                })
            }
            "event" => {
                let service = req_text!(cmd, "service").to_string();
                let kind = req_text!(cmd, "kind").to_string();
                let data = req_text!(cmd, "data");
                let Some(bytes) = protocol::hex_decode(data) else {
                    return Reply::err(ErrorCode::Semantics, "data is not valid hex");
                };
                let Ok(wire) = String::from_utf8(bytes) else {
                    return Reply::err(ErrorCode::Semantics, "data is not valid UTF-8");
                };
                let fields = match CmdLine::parse(&wire) {
                    Ok(fields) => fields,
                    Err(e) => {
                        return Reply::err(
                            ErrorCode::Semantics,
                            format!("data does not parse as a command line: {e}"),
                        )
                    }
                };
                let record = EventRecord {
                    seq: self.next_event_seq,
                    service: service.clone(),
                    kind,
                    host: cmd
                        .get_text("host")
                        .unwrap_or(from.addr.host.as_str())
                        .to_string(),
                    fields,
                    at: Instant::now(),
                };
                self.next_event_seq += 1;
                let ring = self.events.entry(service).or_default();
                if ring.len() == self.events_per_service {
                    ring.pop_front();
                    self.events_shed += 1;
                    self.shed_events_counter
                        .get_or_insert_with(|| ctx.metrics().counter("shed.events"))
                        .incr();
                }
                ring.push_back(record);
                Reply::ok_with(|c| c.arg("seq", (self.next_event_seq - 1) as i64))
            }
            "queryEvents" => {
                let service = req_text!(cmd, "service");
                let kind = cmd.get_text("kind");
                let count = cmd.get_int("count").unwrap_or(10).max(0) as usize;
                let matches: Vec<&EventRecord> = self
                    .events
                    .get(service)
                    .map(|ring| {
                        ring.iter()
                            .rev()
                            .filter(|e| kind.is_none_or(|k| e.kind == k))
                            .take(count)
                            .collect()
                    })
                    .unwrap_or_default();
                // Oldest-first in the reply.
                let ordered: Vec<&EventRecord> = matches.into_iter().rev().collect();
                Reply::ok_with(|c| {
                    c.arg("count", ordered.len() as i64)
                        .arg("events", events_to_value(&ordered))
                })
            }
            "logStats" => {
                let mut info = 0i64;
                let mut warn = 0i64;
                let mut error = 0i64;
                let mut security = 0i64;
                for r in &self.records {
                    match r.level.as_str() {
                        "info" => info += 1,
                        "warn" => warn += 1,
                        "error" => error += 1,
                        "security" => security += 1,
                        _ => {}
                    }
                }
                let events_retained: usize = self.events.values().map(VecDeque::len).sum();
                Reply::ok_with(|c| {
                    c.arg("total", self.next_seq as i64)
                        .arg("retained", self.records.len() as i64)
                        .arg("info", info)
                        .arg("warn", warn)
                        .arg("error", error)
                        .arg("security", security)
                        .arg("eventsTotal", self.next_event_seq as i64)
                        .arg("eventsRetained", events_retained as i64)
                        .arg("recordsShed", self.records_shed as i64)
                        .arg("eventsShed", self.events_shed as i64)
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// Typed client for the Network Logger.
pub struct LoggerClient {
    client: ServiceClient,
}

impl LoggerClient {
    pub fn connect(
        net: &SimNet,
        from_host: &HostId,
        logger: Addr,
        identity: &ace_security::keys::KeyPair,
    ) -> Result<LoggerClient, ClientError> {
        Ok(LoggerClient {
            client: ServiceClient::connect(net, from_host, logger, identity)?,
        })
    }

    /// Append one record.
    pub fn log(&mut self, level: &str, msg: &str) -> Result<(), ClientError> {
        self.client.call_ok(
            &CmdLine::new("log")
                .arg("level", level)
                .arg("msg", Value::Str(msg.to_string())),
        )
    }

    /// The most recent records, oldest first.
    pub fn tail(&mut self, count: usize, level: Option<&str>) -> Result<Vec<LogRow>, ClientError> {
        let mut cmd = CmdLine::new("tail").arg("count", count as i64);
        if let Some(l) = level {
            cmd.push_arg("level", l);
        }
        let reply = self.client.call(&cmd)?;
        reply
            .get("records")
            .and_then(records_from_value)
            .ok_or(ClientError::Service {
                code: ErrorCode::Internal,
                msg: "malformed tail reply".into(),
            })
    }

    /// Push one typed event; `fields` is carried hex-encoded on the wire.
    pub fn event(
        &mut self,
        service: &str,
        kind: &str,
        fields: &CmdLine,
    ) -> Result<(), ClientError> {
        self.client.call_ok(
            &CmdLine::new("event")
                .arg("service", service)
                .arg("kind", kind)
                .arg(
                    "data",
                    Value::Word(protocol::hex_encode(fields.to_wire().as_bytes())),
                ),
        )
    }

    /// The most recent events for `service`, oldest first.
    pub fn query_events(
        &mut self,
        service: &str,
        kind: Option<&str>,
        count: usize,
    ) -> Result<Vec<EventRow>, ClientError> {
        let mut cmd = CmdLine::new("queryEvents")
            .arg("service", service)
            .arg("count", count as i64);
        if let Some(k) = kind {
            cmd.push_arg("kind", k);
        }
        let reply = self.client.call(&cmd)?;
        reply
            .get("events")
            .and_then(events_from_value)
            .ok_or(ClientError::Service {
                code: ErrorCode::Internal,
                msg: "malformed queryEvents reply".into(),
            })
    }

    /// `(total ever, retained, info, warn, error, security)` counts.
    pub fn stats(&mut self) -> Result<(u64, u64, u64, u64, u64, u64), ClientError> {
        let reply = self.client.call(&CmdLine::new("logStats"))?;
        let g = |k: &str| reply.get_int(k).unwrap_or(0) as u64;
        Ok((
            g("total"),
            g("retained"),
            g("info"),
            g("warn"),
            g("error"),
            g("security"),
        ))
    }
}
