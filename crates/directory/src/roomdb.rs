//! The ACE Room Database service (§4.11).
//!
//! "For ACE services to be spatially aware of their surroundings … their
//! location information is kept within an ACE Room Database service":
//! buildings, rooms, physical dimensions, and which services sit where
//! within each room (so a camera can build a 3-D coordinate frame and a GUI
//! can list the devices of the room the user stands in).

use ace_core::prelude::*;
use ace_core::protocol;
use std::collections::HashMap;

/// Room metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct RoomInfo {
    pub building: String,
    /// Width × depth × height in metres.
    pub dimensions: (f64, f64, f64),
}

/// A service placed in a room, optionally at a 3-D position.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub service: String,
    pub addr: Addr,
    pub room: String,
    pub position: Option<(f64, f64, f64)>,
}

/// The Room Database behavior.
#[derive(Default)]
pub struct RoomDb {
    rooms: HashMap<String, RoomInfo>,
    placements: HashMap<String, Placement>,
}

impl RoomDb {
    pub fn new() -> RoomDb {
        RoomDb::default()
    }

    /// Pre-define a room (environments usually seed their floor plan).
    pub fn with_room(mut self, room: &str, building: &str, dimensions: (f64, f64, f64)) -> RoomDb {
        self.rooms.insert(
            room.to_string(),
            RoomInfo {
                building: building.to_string(),
                dimensions,
            },
        );
        self
    }
}

/// Encode placements as an array of quoted-string rows:
/// `{name, host, port, room, x, y, z}` (position cells empty when unknown).
fn placements_to_value(placements: &[&Placement]) -> Value {
    Value::Array(
        placements
            .iter()
            .map(|p| {
                let (x, y, z) = p
                    .position
                    .map(|(x, y, z)| (x.to_string(), y.to_string(), z.to_string()))
                    .unwrap_or_default();
                vec![
                    Scalar::Str(p.service.clone()),
                    Scalar::Str(p.addr.host.to_string()),
                    Scalar::Str(p.addr.port.to_string()),
                    Scalar::Str(p.room.clone()),
                    Scalar::Str(x),
                    Scalar::Str(y),
                    Scalar::Str(z),
                ]
            })
            .collect(),
    )
}

/// Decode the `placements=` array of a `roomServices` reply.
pub fn placements_from_value(value: &Value) -> Option<Vec<Placement>> {
    let rows = match value {
        // An empty array encodes as `{}`, which re-parses as an empty
        // vector — treat it as zero rows.
        v if v.as_vector().is_some_and(|s| s.is_empty()) => return Some(Vec::new()),
        v => v.as_array()?,
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != 7 {
            return None;
        }
        let cell = |i: usize| row[i].as_text();
        let port: u16 = cell(2)?.parse().ok()?;
        let position = match (cell(4)?, cell(5)?, cell(6)?) {
            ("", "", "") => None,
            (x, y, z) => Some((x.parse().ok()?, y.parse().ok()?, z.parse().ok()?)),
        };
        out.push(Placement {
            service: cell(0)?.to_string(),
            addr: Addr::new(cell(1)?, port),
            room: cell(3)?.to_string(),
            position,
        });
    }
    Some(out)
}

impl ServiceBehavior for RoomDb {
    fn semantics(&self) -> Semantics {
        protocol::roomdb_semantics()
    }

    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "defineRoom" => {
                let room = req_text!(cmd, "room").to_string();
                let info = RoomInfo {
                    building: req_text!(cmd, "building").to_string(),
                    dimensions: (
                        cmd.get_f64("width").unwrap_or(0.0),
                        cmd.get_f64("depth").unwrap_or(0.0),
                        cmd.get_f64("height").unwrap_or(0.0),
                    ),
                };
                self.rooms.insert(room, info);
                Reply::ok()
            }
            "roomRegister" => {
                let service = req_text!(cmd, "service").to_string();
                let room = req_text!(cmd, "room").to_string();
                // Auto-create unknown rooms so daemon startup never depends
                // on floor-plan seeding order.
                self.rooms.entry(room.clone()).or_insert_with(|| RoomInfo {
                    building: "unknown".into(),
                    dimensions: (0.0, 0.0, 0.0),
                });
                let position = match (cmd.get_f64("x"), cmd.get_f64("y"), cmd.get_f64("z")) {
                    (Some(x), Some(y), Some(z)) => Some((x, y, z)),
                    _ => None,
                };
                self.placements.insert(
                    service.clone(),
                    Placement {
                        service,
                        addr: Addr::new(req_text!(cmd, "host"), req_int!(cmd, "port") as u16),
                        room,
                        position,
                    },
                );
                Reply::ok()
            }
            "roomRemove" => {
                let service = req_text!(cmd, "service");
                if self.placements.remove(service).is_some() {
                    Reply::ok()
                } else {
                    Reply::err(ErrorCode::NotFound, format!("{service} not placed"))
                }
            }
            "roomServices" => {
                let room = req_text!(cmd, "room");
                let mut matches: Vec<&Placement> = self
                    .placements
                    .values()
                    .filter(|p| p.room == room)
                    .collect();
                matches.sort_by(|a, b| a.service.cmp(&b.service));
                Reply::ok_with(|c| {
                    c.arg("count", matches.len() as i64)
                        .arg("placements", placements_to_value(&matches))
                })
            }
            "roomInfo" => {
                let room = req_text!(cmd, "room");
                match self.rooms.get(room) {
                    Some(info) => Reply::ok_with(|c| {
                        c.arg("room", room)
                            .arg("building", info.building.as_str())
                            .arg("width", info.dimensions.0)
                            .arg("depth", info.dimensions.1)
                            .arg("height", info.dimensions.2)
                    }),
                    None => Reply::err(ErrorCode::NotFound, format!("no room {room}")),
                }
            }
            "listRooms" => {
                let mut names: Vec<Scalar> =
                    self.rooms.keys().map(|n| Scalar::Str(n.clone())).collect();
                names.sort_by(|a, b| match (a, b) {
                    (Scalar::Str(x), Scalar::Str(y)) => x.cmp(y),
                    _ => std::cmp::Ordering::Equal,
                });
                Reply::ok_with(|c| c.arg("rooms", Value::Vector(names)))
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }

    fn snapshot_state(&self) -> Option<Vec<u8>> {
        // Rooms as `{name, building, w, d, h}` rows, placements via the
        // wire codec `roomServices` already uses; both sorted by name so
        // the snapshot is deterministic.
        let mut rooms: Vec<(&String, &RoomInfo)> = self.rooms.iter().collect();
        rooms.sort_by(|a, b| a.0.cmp(b.0));
        let room_rows = Value::Array(
            rooms
                .iter()
                .map(|(name, info)| {
                    vec![
                        Scalar::Str((*name).clone()),
                        Scalar::Str(info.building.clone()),
                        Scalar::Str(info.dimensions.0.to_string()),
                        Scalar::Str(info.dimensions.1.to_string()),
                        Scalar::Str(info.dimensions.2.to_string()),
                    ]
                })
                .collect(),
        );
        let mut placements: Vec<&Placement> = self.placements.values().collect();
        placements.sort_by(|a, b| a.service.cmp(&b.service));
        let state = CmdLine::new("roomDbState")
            .arg("rooms", room_rows)
            .arg("placements", placements_to_value(&placements));
        Some(protocol::seal_snapshot("roomdb", state))
    }

    fn restore_state(&mut self, snapshot: &[u8]) -> Result<(), String> {
        let state = protocol::open_snapshot("roomdb", snapshot)?;
        let room_rows = state
            .get("rooms")
            .ok_or_else(|| "roomdb snapshot: missing rooms".to_string())?;
        let mut rooms = HashMap::new();
        if !room_rows.as_vector().is_some_and(|s| s.is_empty()) {
            for row in room_rows
                .as_array()
                .ok_or_else(|| "roomdb snapshot: malformed rooms".to_string())?
            {
                let cell = |i: usize| {
                    row.get(i)
                        .and_then(Scalar::as_text)
                        .ok_or_else(|| "roomdb snapshot: malformed room row".to_string())
                };
                if row.len() != 5 {
                    return Err("roomdb snapshot: malformed room row".to_string());
                }
                let dim = |i: usize| -> Result<f64, String> {
                    cell(i)?
                        .parse()
                        .map_err(|_| "roomdb snapshot: malformed room row".to_string())
                };
                rooms.insert(
                    cell(0)?.to_string(),
                    RoomInfo {
                        building: cell(1)?.to_string(),
                        dimensions: (dim(2)?, dim(3)?, dim(4)?),
                    },
                );
            }
        }
        let placements = state
            .get("placements")
            .and_then(placements_from_value)
            .ok_or_else(|| "roomdb snapshot: malformed placements".to_string())?;
        self.rooms = rooms;
        self.placements = placements
            .into_iter()
            .map(|p| (p.service.clone(), p))
            .collect();
        Ok(())
    }
}

/// Typed client for the Room Database.
pub struct RoomDbClient {
    client: ServiceClient,
}

impl RoomDbClient {
    pub fn connect(
        net: &SimNet,
        from_host: &HostId,
        roomdb: Addr,
        identity: &ace_security::keys::KeyPair,
    ) -> Result<RoomDbClient, ClientError> {
        Ok(RoomDbClient {
            client: ServiceClient::connect(net, from_host, roomdb, identity)?,
        })
    }

    /// Services placed within a room.
    pub fn room_services(&mut self, room: &str) -> Result<Vec<Placement>, ClientError> {
        let reply = self
            .client
            .call(&CmdLine::new("roomServices").arg("room", room))?;
        reply
            .get("placements")
            .and_then(placements_from_value)
            .ok_or(ClientError::Service {
                code: ErrorCode::Internal,
                msg: "malformed roomServices reply".into(),
            })
    }

    /// Room metadata.
    pub fn room_info(&mut self, room: &str) -> Result<RoomInfo, ClientError> {
        let reply = self
            .client
            .call(&CmdLine::new("roomInfo").arg("room", room))?;
        Ok(RoomInfo {
            building: reply.get_text("building").unwrap_or("unknown").to_string(),
            dimensions: (
                reply.get_f64("width").unwrap_or(0.0),
                reply.get_f64("depth").unwrap_or(0.0),
                reply.get_f64("height").unwrap_or(0.0),
            ),
        })
    }

    /// Define a room.
    pub fn define_room(
        &mut self,
        room: &str,
        building: &str,
        dimensions: (f64, f64, f64),
    ) -> Result<(), ClientError> {
        self.client.call_ok(
            &CmdLine::new("defineRoom")
                .arg("room", room)
                .arg("building", building)
                .arg("width", dimensions.0)
                .arg("depth", dimensions.1)
                .arg("height", dimensions.2),
        )
    }

    /// All room names.
    pub fn list_rooms(&mut self) -> Result<Vec<String>, ClientError> {
        let reply = self.client.call(&CmdLine::new("listRooms"))?;
        Ok(reply
            .get_vector("rooms")
            .map(|v| {
                v.iter()
                    .filter_map(|s| s.as_text().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_encoding_roundtrip() {
        let placements = vec![
            Placement {
                service: "cam1".into(),
                addr: Addr::new("bar", 1234),
                room: "hawk".into(),
                position: Some((1.0, 2.5, 3.0)),
            },
            Placement {
                service: "proj".into(),
                addr: Addr::new("tube", 99),
                room: "hawk".into(),
                position: None,
            },
        ];
        let refs: Vec<&Placement> = placements.iter().collect();
        let v = placements_to_value(&refs);
        // Survive the wire too.
        let cmd = CmdLine::new("ok").arg("placements", v);
        let back = CmdLine::parse(&cmd.to_wire()).unwrap();
        assert_eq!(
            placements_from_value(back.get("placements").unwrap()),
            Some(placements)
        );
    }

    #[test]
    fn malformed_placements_rejected() {
        let bad = Value::Array(vec![vec![Scalar::Str("short".into())]]);
        assert_eq!(placements_from_value(&bad), None);
    }

    #[test]
    fn snapshot_roundtrips_rooms_and_placements() {
        let mut db = RoomDb::new().with_room("hawk", "research", (6.0, 4.0, 3.0));
        db.placements.insert(
            "cam1".into(),
            Placement {
                service: "cam1".into(),
                addr: Addr::new("bar", 1234),
                room: "hawk".into(),
                position: Some((1.0, 2.0, 2.5)),
            },
        );
        let blob = db.snapshot_state().expect("roomdb is stateful");

        let mut restored = RoomDb::new();
        restored.restore_state(&blob).expect("restore");
        assert_eq!(restored.rooms, db.rooms);
        assert_eq!(restored.placements, db.placements);

        // Corruption is refused, never half-applied.
        let mut torn = blob.clone();
        torn.truncate(torn.len() / 2);
        let mut fresh = RoomDb::new();
        assert!(fresh.restore_state(&torn).is_err());
        assert!(fresh.rooms.is_empty());
    }
}
