//! The service behavior trait and its execution context.
//!
//! A daemon is "an independent and highly efficient shell that serves as the
//! basis for ACE services" (§2.1.1).  The shell (threads, sockets, security,
//! registration, notifications) lives in [`crate::daemon`]; what a specific
//! service *does* is a [`ServiceBehavior`].  Implementing a new ACE service
//! is exactly what §2.3 promises: define the command semantics, implement
//! `handle`, and the framework does the rest.

use crate::client::{ClientError, ServiceClient};
use crate::metrics::MetricsRegistry;
use crate::notify::Notifier;
use crate::protocol::{self, ServiceEntry};
use ace_lang::{CmdLine, Reply, Semantics};
use ace_net::{Addr, Datagram, HostId, SimNet};
use ace_security::keys::KeyPair;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Who issued the command being handled.
#[derive(Debug, Clone)]
pub struct ClientInfo {
    /// Authenticated principal (public-key string) from the link handshake.
    pub principal: String,
    /// Network address of the caller.
    pub addr: Addr,
}

/// What a specific ACE service does.  One instance runs per daemon, driven
/// exclusively by the daemon's control thread — so `&mut self` methods need
/// no internal locking.
pub trait ServiceBehavior: Send + 'static {
    /// The service's command vocabulary.  The framework automatically adds
    /// the built-in commands (`ping`, `describe`, notifications, …), i.e.
    /// every service inherits from the base of the Fig. 6 hierarchy.
    fn semantics(&self) -> Semantics;

    /// Execute one validated, authorized command.
    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, from: &ClientInfo) -> Reply;

    /// Called once after registration completes, before any command.
    fn on_start(&mut self, _ctx: &mut ServiceCtx) {}

    /// A datagram arrived on the daemon's UDP data channel (§2.1.1).
    fn on_data(&mut self, _ctx: &mut ServiceCtx, _datagram: Datagram) {}

    /// Periodic tick (device polling, timers).  Cadence is
    /// `DaemonConfig::tick`.
    fn on_tick(&mut self, _ctx: &mut ServiceCtx) {}

    /// Called once when the daemon stops (graceful shutdown only).
    fn on_stop(&mut self, _ctx: &mut ServiceCtx) {}

    /// Called just before a metrics snapshot is taken — on every `aceStats`
    /// command and before each periodic stats event.  Behaviors export
    /// service-internal state here (e.g. the store replica publishes WAL
    /// batch counters as gauges) via `ctx.metrics()`.
    fn on_stats(&mut self, _ctx: &mut ServiceCtx) {}

    /// Serialize this behavior's state for a live upgrade.  Called on the
    /// control thread after the daemon has quiesced (no command is in
    /// flight, new work is being refused with `E_UPGRADING`).  Stateless
    /// services return `None` (the default): the replacement incarnation
    /// starts fresh.  Stateful services seal their state with
    /// [`crate::protocol::seal_snapshot`] so corruption is detected at
    /// restore time.
    fn snapshot_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Rebuild state from a [`ServiceBehavior::snapshot_state`] blob on
    /// the *replacement* behavior, before its daemon registers with the
    /// ASD or admits any traffic.  An `Err` refuses the snapshot — the
    /// upgrade driver must then abort the swap and leave the old
    /// incarnation serving.
    fn restore_state(&mut self, _snapshot: &[u8]) -> Result<(), String> {
        Ok(())
    }
}

/// The daemon-provided capabilities a behavior can use while executing:
/// identity, outbound calls, ASD lookup, event emission, logging.
pub struct ServiceCtx {
    net: SimNet,
    name: String,
    class: String,
    room: String,
    host: HostId,
    port: u16,
    identity: Arc<KeyPair>,
    asd: Option<Addr>,
    logger: Option<Addr>,
    notifier: Notifier,
    metrics: Arc<MetricsRegistry>,
    clients: HashMap<Addr, ServiceClient>,
    /// Events fired by the behavior during this dispatch, drained by the
    /// control thread into the notification registry.
    pub(crate) pending_events: Vec<CmdLine>,
    /// Set by the behavior to request daemon shutdown.
    pub(crate) stop_requested: bool,
    /// Absolute expiry of the command currently being dispatched, derived
    /// from its `deadline=` header; set by the control thread around each
    /// dispatch.
    deadline: Option<Instant>,
    /// The shared runtime this daemon runs on, when in
    /// [`crate::runtime::RuntimeMode::Shared`] — lets stats paths publish
    /// `runtime.*` gauges into this daemon's registry.
    pub(crate) runtime: Option<crate::runtime::Runtime>,
}

impl ServiceCtx {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        net: SimNet,
        name: String,
        class: String,
        room: String,
        host: HostId,
        port: u16,
        identity: Arc<KeyPair>,
        asd: Option<Addr>,
        logger: Option<Addr>,
        notifier: Notifier,
        metrics: Arc<MetricsRegistry>,
    ) -> ServiceCtx {
        ServiceCtx {
            net,
            name,
            class,
            room,
            host,
            port,
            identity,
            asd,
            logger,
            notifier,
            metrics,
            clients: HashMap::new(),
            pending_events: Vec::new(),
            stop_requested: false,
            deadline: None,
            runtime: None,
        }
    }

    /// Install (or clear) the deadline of the command being dispatched.
    pub(crate) fn set_deadline(&mut self, deadline: Option<Instant>) {
        self.deadline = deadline;
    }

    /// Wall-clock budget left before the current command's client gives
    /// up, if the caller stamped a `deadline=`.  Long-running handlers can
    /// check this and bail out early instead of computing a reply nobody
    /// will read.
    pub fn time_remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Has the current command's deadline already lapsed?
    pub fn deadline_expired(&self) -> bool {
        matches!(self.time_remaining(), Some(r) if r.is_zero())
    }

    /// This service's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// This service's class (hierarchy path).
    pub fn class(&self) -> &str {
        &self.class
    }

    /// The room this service lives in.
    pub fn room(&self) -> &str {
        &self.room
    }

    /// The host this daemon runs on.
    pub fn host(&self) -> &HostId {
        &self.host
    }

    /// This daemon's service address.
    pub fn addr(&self) -> Addr {
        Addr::new(self.host.clone(), self.port)
    }

    /// This daemon's principal.
    pub fn principal(&self) -> String {
        self.identity.principal()
    }

    /// This daemon's key pair (for signing credentials it issues).
    pub fn identity(&self) -> &KeyPair {
        &self.identity
    }

    /// The shared network handle.
    pub fn net(&self) -> &SimNet {
        &self.net
    }

    /// The ASD address, if this daemon was configured with one.
    pub fn asd_addr(&self) -> Option<&Addr> {
        self.asd.as_ref()
    }

    /// Call another ACE service, reusing a cached connection.  On a link
    /// failure the connection is discarded and retried once (services may
    /// have restarted on the same address).
    ///
    /// When the command being dispatched carried a `deadline=`, the
    /// remaining budget is stamped onto the outbound command so downstream
    /// hops inherit (and decrement) the caller's deadline.
    pub fn call(&mut self, addr: &Addr, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        let stamped;
        let cmd = match self.time_remaining() {
            Some(remaining) if cmd.deadline_ms().is_none() => {
                let mut c = cmd.clone();
                c.set_deadline_ms(remaining.as_millis() as i64);
                stamped = c;
                &stamped
            }
            _ => cmd,
        };
        for attempt in 0..2 {
            if !self.clients.contains_key(addr) {
                let client =
                    ServiceClient::connect(&self.net, &self.host, addr.clone(), &self.identity)?;
                self.clients.insert(addr.clone(), client);
            }
            let client = self.clients.get_mut(addr).expect("just inserted");
            match client.call(cmd) {
                Ok(reply) => return Ok(reply),
                err @ Err(ClientError::Service { .. }) => return err,
                Err(link_err @ ClientError::Link(_)) => {
                    self.clients.remove(addr);
                    if attempt == 1 {
                        return Err(link_err);
                    }
                }
            }
        }
        unreachable!("loop returns on second attempt")
    }

    /// Look up services in the ASD (Fig. 7).  Any combination of filters.
    pub fn lookup(
        &mut self,
        name: Option<&str>,
        class: Option<&str>,
        room: Option<&str>,
    ) -> Result<Vec<ServiceEntry>, ClientError> {
        let asd = self.asd.clone().ok_or(ClientError::Service {
            code: ace_lang::ErrorCode::Unavailable,
            msg: "daemon configured without an ASD".into(),
        })?;
        let mut cmd = CmdLine::new("lookup");
        if let Some(n) = name {
            cmd.push_arg("name", n);
        }
        if let Some(c) = class {
            cmd.push_arg("class", c);
        }
        if let Some(r) = room {
            cmd.push_arg("room", r);
        }
        let reply = self.call(&asd, &cmd)?;
        let entries = reply
            .get("services")
            .and_then(protocol::entries_from_value)
            .ok_or(ClientError::Service {
                code: ace_lang::ErrorCode::Internal,
                msg: "malformed lookup reply".into(),
            })?;
        Ok(entries)
    }

    /// Find exactly one service by name; `None` if absent.
    pub fn lookup_one(&mut self, name: &str) -> Result<Option<ServiceEntry>, ClientError> {
        Ok(self.lookup(Some(name), None, None)?.into_iter().next())
    }

    /// Fire an event through this daemon's notification registry (§2.5) —
    /// e.g. the FIU daemon fires `userIdentified` when a fingerprint
    /// matches.  Listeners registered with `addNotification cmd=<event>`
    /// are invoked asynchronously.
    pub fn fire_event(&mut self, event: CmdLine) {
        self.pending_events.push(event);
    }

    /// Queue a fire-and-forget command to another service (delivered by the
    /// notifier worker; never blocks).
    pub fn send_async(&self, addr: Addr, cmd: CmdLine) {
        self.notifier.send(addr, cmd);
    }

    /// Append a record to the Network Logger, if configured.  Asynchronous
    /// and best-effort.
    pub fn log(&self, level: &str, msg: impl Into<String>) {
        if let Some(logger) = &self.logger {
            let cmd = CmdLine::new("log")
                .arg("level", level)
                .arg("msg", ace_lang::Value::Str(msg.into()))
                .arg("service", self.name.as_str())
                .arg("host", self.host.as_str());
            self.notifier.send(logger.clone(), cmd);
        }
    }

    /// This daemon's metrics registry.  Handles are cheap `Arc`s over
    /// atomics — grab one once and keep it if the call site is hot.
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Push the current metrics snapshot to the Net Logger as a structured
    /// `stats` event (asynchronous, best-effort).  Called periodically by
    /// the control thread; `on_stats` has already run.
    pub(crate) fn push_stats_event(&self) {
        if let Some(logger) = &self.logger {
            let payload = self.metrics.snapshot().to_event_payload();
            let cmd = CmdLine::new("event")
                .arg("service", self.name.as_str())
                .arg("kind", "stats")
                .arg("host", self.host.as_str())
                .arg(
                    "data",
                    ace_lang::Value::Word(protocol::hex_encode(payload.to_wire().as_bytes())),
                );
            self.notifier.send(logger.clone(), cmd);
        }
    }

    /// Request a graceful daemon shutdown once this dispatch completes.
    pub fn request_stop(&mut self) {
        self.stop_requested = true;
    }

    /// Sleep helper for behaviors simulating device movement etc.
    pub fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

impl std::fmt::Debug for ServiceCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ServiceCtx({} @ {}:{})", self.name, self.host, self.port)
    }
}
