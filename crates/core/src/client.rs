//! The client side of an ACE service conversation.
//!
//! Anything that issues commands to a daemon — a user GUI, another daemon,
//! a scenario driver — holds a [`ServiceClient`]: a secure link plus the
//! call/reply discipline ("return commands are used to reply on the status
//! of the attempted command", §2.2).

use crate::link::{LinkError, SecureLink, TicketCache};
use ace_lang::{CmdLine, ErrorCode, Reply};
use ace_net::{Addr, HostId, NetError, SimNet};
use ace_security::keys::KeyPair;
use std::fmt;
use std::time::Duration;

/// Default per-call deadline.
pub const DEFAULT_CALL_TIMEOUT: Duration = Duration::from_secs(5);

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Could not reach or talk to the service.
    Link(LinkError),
    /// The service replied with an error return command.
    Service { code: ErrorCode, msg: String },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Link(e) => write!(f, "link error: {e}"),
            ClientError::Service { code, msg } => write!(f, "service error {code}: {msg}"),
        }
    }
}
impl std::error::Error for ClientError {}

impl From<LinkError> for ClientError {
    fn from(e: LinkError) -> Self {
        ClientError::Link(e)
    }
}
impl From<NetError> for ClientError {
    fn from(e: NetError) -> Self {
        ClientError::Link(LinkError::Net(e))
    }
}

impl ClientError {
    /// The service-level error code, if this is a service error.
    pub fn code(&self) -> Option<ErrorCode> {
        match self {
            ClientError::Service { code, .. } => Some(*code),
            ClientError::Link(_) => None,
        }
    }
}

/// A connected, authenticated client of one ACE service.
pub struct ServiceClient {
    link: SecureLink,
    timeout: Duration,
    target: Addr,
}

impl ServiceClient {
    /// Connect from `from_host` to the daemon at `target`, authenticating
    /// with `identity`.
    pub fn connect(
        net: &SimNet,
        from_host: &HostId,
        target: Addr,
        identity: &KeyPair,
    ) -> Result<ServiceClient, ClientError> {
        let conn = net.connect(from_host, target.clone())?;
        let link = SecureLink::connect(conn, identity)?;
        Ok(ServiceClient {
            link,
            timeout: DEFAULT_CALL_TIMEOUT,
            target,
        })
    }

    /// Connect via the session-resumption fast path: a ticket cached in
    /// `tickets` skips the DH + signature handshake; otherwise (or on
    /// rejection) a full handshake runs and re-primes the cache.
    pub fn connect_resumable(
        net: &SimNet,
        from_host: &HostId,
        target: Addr,
        identity: &KeyPair,
        tickets: &TicketCache,
    ) -> Result<ServiceClient, ClientError> {
        let conn = net.connect(from_host, target.clone())?;
        let link = SecureLink::connect_resumable(conn, identity, tickets)?;
        Ok(ServiceClient {
            link,
            timeout: DEFAULT_CALL_TIMEOUT,
            target,
        })
    }

    /// Did this client's link skip the full handshake via a resumption
    /// ticket?
    pub fn resumed(&self) -> bool {
        self.link.resumed()
    }

    /// Is the underlying idle link still worth reusing?  (Pool checkout
    /// health probe — see [`SecureLink::is_healthy_idle`].)
    pub fn is_healthy_idle(&self) -> bool {
        self.link.is_healthy_idle()
    }

    /// Adjust the per-call deadline.
    pub fn set_timeout(&mut self, timeout: Duration) {
        self.timeout = timeout;
    }

    /// The service's address.
    pub fn target(&self) -> &Addr {
        &self.target
    }

    /// The service's authenticated principal.
    pub fn peer_principal(&self) -> &str {
        self.link.peer_principal()
    }

    /// Issue one command and wait for its return command.
    ///
    /// `Ok(reply)` is the service's `ok …;` result; service-level failures
    /// (`error code=… msg=…;`) surface as [`ClientError::Service`].
    ///
    /// Commands without an explicit `deadline=` are stamped with this
    /// client's call timeout, so the server can shed the request once we
    /// have given up waiting for its reply.
    pub fn call(&mut self, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        let stamped;
        let cmd = if cmd.deadline_ms().is_none() {
            let mut c = cmd.clone();
            c.set_deadline_ms(self.timeout.as_millis() as i64);
            stamped = c;
            &stamped
        } else {
            cmd
        };
        self.link.send_cmd(cmd)?;
        let reply_cmd = self.link.recv_cmd(self.timeout)?;
        match Reply::from_cmdline(&reply_cmd) {
            Reply::Ok(result) => Ok(result),
            Reply::Err { code, msg } => Err(ClientError::Service { code, msg }),
        }
    }

    /// Issue a command, discarding a successful result (convenience for
    /// imperative commands like `log` or `ptzOn`).
    pub fn call_ok(&mut self, cmd: &CmdLine) -> Result<(), ClientError> {
        self.call(cmd).map(|_| ())
    }

    /// Close the link.
    pub fn close(&self) {
        self.link.close();
    }
}

impl fmt::Debug for ServiceClient {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ServiceClient({})", self.target)
    }
}
