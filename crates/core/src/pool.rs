//! Pooled secure links: reuse established (and resumable) connections
//! instead of paying a handshake per client object.
//!
//! The PR-1 failover work made every re-resolution open a brand-new
//! [`ServiceClient`] — correct, but each one costs a TCP-equivalent dial
//! plus a full DH + signature handshake.  A [`LinkPool`] amortises that:
//! clients *check out* a connected link for the duration of one
//! conversation and return it on drop.  Checkout health-checks the idle
//! link first (see [`ace_net::Connection::is_healthy_idle`]): a pooled link
//! to a daemon that has since restarted or partitioned fails fast and is
//! discarded, so pooling can never surface a stale reply — the staleness
//! rule is *discard, never repair*.
//!
//! When the pool must dial, it goes through the shared [`TicketCache`], so
//! pool misses still ride the session-resumption fast path whenever the
//! target granted a ticket.
//!
//! Counters (bindable to a daemon's registry for `aceStats`):
//! `pool.checkouts`, `pool.reused`, `pool.stale`, `pool.dials`,
//! `link.resume_hits`, `link.full_handshakes`.

use crate::client::{ClientError, ServiceClient};
use crate::link::TicketCache;
use crate::metrics::{Counter, MetricsRegistry};
use ace_lang::CmdLine;
use ace_net::{Addr, HostId, SimNet};
use ace_security::keys::KeyPair;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// Default cap on idle links retained per target address.
const DEFAULT_MAX_IDLE_PER_TARGET: usize = 8;

/// A shared pool of authenticated secure links, keyed by target address.
pub struct LinkPool {
    net: SimNet,
    from_host: HostId,
    identity: KeyPair,
    tickets: TicketCache,
    idle: Mutex<HashMap<Addr, Vec<ServiceClient>>>,
    max_idle_per_target: usize,
    checkouts: Arc<Counter>,
    reused: Arc<Counter>,
    stale: Arc<Counter>,
    dials: Arc<Counter>,
    resume_hits: Arc<Counter>,
    full_handshakes: Arc<Counter>,
}

impl LinkPool {
    /// A pool dialing from `from_host` as `identity`, with its own private
    /// metrics registry.
    pub fn new(net: &SimNet, from_host: impl Into<HostId>, identity: KeyPair) -> LinkPool {
        Self::with_metrics(net, from_host, identity, &MetricsRegistry::new())
    }

    /// A pool whose counters live in `metrics` (so `aceStats` can observe
    /// them alongside the daemon's own).
    pub fn with_metrics(
        net: &SimNet,
        from_host: impl Into<HostId>,
        identity: KeyPair,
        metrics: &MetricsRegistry,
    ) -> LinkPool {
        LinkPool {
            net: net.clone(),
            from_host: from_host.into(),
            identity,
            tickets: TicketCache::new(),
            idle: Mutex::new(HashMap::new()),
            max_idle_per_target: DEFAULT_MAX_IDLE_PER_TARGET,
            checkouts: metrics.counter("pool.checkouts"),
            reused: metrics.counter("pool.reused"),
            stale: metrics.counter("pool.stale"),
            dials: metrics.counter("pool.dials"),
            resume_hits: metrics.counter("link.resume_hits"),
            full_handshakes: metrics.counter("link.full_handshakes"),
        }
    }

    /// Adjust the per-target idle cap (builder style).
    pub fn with_max_idle(mut self, max_idle_per_target: usize) -> LinkPool {
        self.max_idle_per_target = max_idle_per_target;
        self
    }

    /// The shared ticket cache (e.g. to pre-invalidate a target).
    pub fn tickets(&self) -> &TicketCache {
        &self.tickets
    }

    /// The identity this pool dials with.
    pub fn identity(&self) -> &KeyPair {
        &self.identity
    }

    /// Idle links currently parked for `target`.
    pub fn idle_count(&self, target: &Addr) -> usize {
        self.idle.lock().get(target).map_or(0, Vec::len)
    }

    /// Check a link to `target` out of the pool, reusing a healthy idle one
    /// or dialing (resumably) on miss.  Stale idle links are discarded here
    /// — their staleness is counted but never propagated to the caller.
    pub fn checkout(self: &Arc<Self>, target: &Addr) -> Result<PooledLink, ClientError> {
        self.checkouts.incr();
        loop {
            let candidate = self.idle.lock().get_mut(target).and_then(Vec::pop);
            let Some(client) = candidate else { break };
            if client.is_healthy_idle() {
                self.reused.incr();
                return Ok(PooledLink {
                    client: Some(client),
                    pool: Arc::clone(self),
                    broken: false,
                    reused: true,
                });
            }
            self.stale.incr();
            client.close();
        }

        self.dials.incr();
        let client = ServiceClient::connect_resumable(
            &self.net,
            &self.from_host,
            target.clone(),
            &self.identity,
            &self.tickets,
        )?;
        if client.resumed() {
            self.resume_hits.incr();
        } else {
            self.full_handshakes.incr();
        }
        Ok(PooledLink {
            client: Some(client),
            pool: Arc::clone(self),
            broken: false,
            reused: false,
        })
    }

    /// Drop every idle link (e.g. when tearing a scenario down).
    pub fn drain(&self) {
        self.idle.lock().clear();
    }

    /// Close and forget every idle link parked for `target`.  Used when a
    /// daemon at that address announces it is upgrading: parked links would
    /// otherwise hand the next checkout a connection to the quiescing
    /// instance.
    pub fn evict(&self, target: &Addr) {
        if let Some(links) = self.idle.lock().remove(target) {
            for client in links {
                client.close();
            }
        }
    }

    fn park(&self, client: ServiceClient) {
        let mut idle = self.idle.lock();
        let slot = idle.entry(client.target().clone()).or_default();
        if slot.len() < self.max_idle_per_target {
            slot.push(client);
        }
        // Over the cap the client just drops, closing the link.
    }
}

impl fmt::Debug for LinkPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let idle: usize = self.idle.lock().values().map(Vec::len).sum();
        write!(f, "LinkPool(from {}, idle: {})", self.from_host, idle)
    }
}

/// A checked-out pool link.  Dropping it returns the link to the pool
/// unless a call failed at the link layer (in which case it is discarded —
/// a link that has timed out mid-conversation may have a reply in flight,
/// and parking it would hand that stale reply to the next caller).
pub struct PooledLink {
    client: Option<ServiceClient>,
    pool: Arc<LinkPool>,
    broken: bool,
    reused: bool,
}

impl PooledLink {
    /// Issue one command on the pooled link.  Service-level error replies
    /// leave the link healthy; link-level failures mark it broken so it is
    /// never returned to the pool.
    pub fn call(&mut self, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        let client = self.client.as_mut().expect("pooled link already consumed");
        match client.call(cmd) {
            Ok(reply) => Ok(reply),
            Err(e @ ClientError::Service { .. }) => Err(e),
            Err(e) => {
                self.broken = true;
                Err(e)
            }
        }
    }

    /// As [`PooledLink::call`], discarding a successful result.
    pub fn call_ok(&mut self, cmd: &CmdLine) -> Result<(), ClientError> {
        self.call(cmd).map(|_| ())
    }

    /// Did the underlying link resume rather than full-handshake?
    pub fn resumed(&self) -> bool {
        self.client.as_ref().is_some_and(ServiceClient::resumed)
    }

    /// Was this link taken from the idle pool (as opposed to freshly
    /// dialed)?  At-most-once callers treat a reused link like an
    /// established connection: a failure after send is ambiguous.
    pub fn was_reused(&self) -> bool {
        self.reused
    }

    /// The target this link talks to.
    pub fn target(&self) -> &Addr {
        self.client
            .as_ref()
            .expect("pooled link already consumed")
            .target()
    }

    /// The service's authenticated principal.
    pub fn peer_principal(&self) -> &str {
        self.client
            .as_ref()
            .expect("pooled link already consumed")
            .peer_principal()
    }

    /// Adjust the per-call deadline for this checkout.
    pub fn set_timeout(&mut self, timeout: std::time::Duration) {
        if let Some(c) = self.client.as_mut() {
            c.set_timeout(timeout);
        }
    }

    /// Explicitly discard instead of returning to the pool.
    pub fn discard(mut self) {
        if let Some(client) = self.client.take() {
            client.close();
        }
    }
}

impl Drop for PooledLink {
    fn drop(&mut self) {
        if let Some(client) = self.client.take() {
            if !self.broken {
                self.pool.park(client);
            } else {
                client.close();
            }
        }
    }
}

impl fmt::Debug for PooledLink {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.client {
            Some(c) => write!(f, "PooledLink({}, broken: {})", c.target(), self.broken),
            None => write!(f, "PooledLink(consumed)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::{ClientInfo, ServiceBehavior, ServiceCtx};
    use crate::daemon::{Daemon, DaemonConfig, DaemonHandle};
    use ace_lang::{CmdSpec, Reply, Semantics};

    struct Echo;
    impl ServiceBehavior for Echo {
        fn semantics(&self) -> Semantics {
            Semantics::new().with(CmdSpec::new("echo", "echo back"))
        }
        fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
            Reply::ok()
        }
    }

    fn spawn_echo(net: &SimNet, host: &str, port: u16) -> DaemonHandle {
        net.add_host(host);
        Daemon::spawn(
            net,
            DaemonConfig::new("echo", "Service.Echo", "lab", host, port),
            Box::new(Echo),
        )
        .unwrap()
    }

    fn pool_on(net: &SimNet, host: &str) -> Arc<LinkPool> {
        net.add_host(host);
        Arc::new(LinkPool::new(
            net,
            host,
            KeyPair::generate(&mut rand::thread_rng()),
        ))
    }

    #[test]
    fn checkout_reuses_parked_links() {
        let net = SimNet::new();
        let _daemon = spawn_echo(&net, "svc", 700);
        let pool = pool_on(&net, "cli");
        let target = Addr::new("svc", 700);

        let mut a = pool.checkout(&target).unwrap();
        assert!(!a.resumed(), "first dial is a full handshake");
        a.call_ok(&CmdLine::new("echo")).unwrap();
        drop(a); // parks
        assert_eq!(pool.idle_count(&target), 1);

        let mut b = pool.checkout(&target).unwrap();
        b.call_ok(&CmdLine::new("echo")).unwrap();
        assert_eq!(pool.reused.get(), 1);
        assert_eq!(pool.dials.get(), 1);
        drop(b);
    }

    #[test]
    fn pool_miss_resumes_when_ticket_cached() {
        let net = SimNet::new();
        let _daemon = spawn_echo(&net, "svc", 700);
        let pool = pool_on(&net, "cli");
        let target = Addr::new("svc", 700);

        // First checkout dials fully (and harvests a ticket); discard it so
        // the second checkout must dial again.
        pool.checkout(&target).unwrap().discard();
        let b = pool.checkout(&target).unwrap();
        assert!(b.resumed(), "second dial must ride the ticket");
        assert_eq!(pool.resume_hits.get(), 1);
        assert_eq!(pool.full_handshakes.get(), 1);
    }

    #[test]
    fn stale_link_to_dead_host_is_discarded_at_checkout() {
        let net = SimNet::new();
        let _daemon = spawn_echo(&net, "svc", 700);
        let pool = pool_on(&net, "cli");
        let target = Addr::new("svc", 700);

        let mut a = pool.checkout(&target).unwrap();
        a.call_ok(&CmdLine::new("echo")).unwrap();
        drop(a);
        assert_eq!(pool.idle_count(&target), 1);

        net.kill_host(&"svc".into());
        let err = pool.checkout(&target);
        assert!(err.is_err(), "checkout to a dead host must fail fast");
        assert_eq!(pool.stale.get(), 1, "the parked link was found stale");
        assert_eq!(pool.idle_count(&target), 0);
    }

    #[test]
    fn broken_links_are_not_returned_to_the_pool() {
        let net = SimNet::new();
        let _daemon = spawn_echo(&net, "svc", 700);
        let pool = pool_on(&net, "cli");
        let target = Addr::new("svc", 700);

        let mut a = pool.checkout(&target).unwrap();
        a.set_timeout(std::time::Duration::from_millis(50));
        net.kill_host(&"svc".into());
        assert!(a.call(&CmdLine::new("echo")).is_err());
        drop(a);
        assert_eq!(
            pool.idle_count(&target),
            0,
            "a link that failed mid-call must not be parked"
        );
    }

    #[test]
    fn idle_cap_bounds_parked_links() {
        let net = SimNet::new();
        let _daemon = spawn_echo(&net, "svc", 700);
        net.add_host("cli");
        let pool = Arc::new(
            LinkPool::new(&net, "cli", KeyPair::generate(&mut rand::thread_rng())).with_max_idle(1),
        );
        let target = Addr::new("svc", 700);
        let a = pool.checkout(&target).unwrap();
        let b = pool.checkout(&target).unwrap();
        drop(a);
        drop(b);
        assert_eq!(pool.idle_count(&target), 1, "cap is enforced");
    }
}
