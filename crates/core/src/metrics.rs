//! Unified per-daemon observability (§2.4 Net Logger companion).
//!
//! Every daemon owns one [`MetricsRegistry`] — a lock-cheap bag of named
//! [`Counter`]s, [`Gauge`]s, and fixed-bucket latency [`Histogram`]s that the
//! runtime feeds automatically: per-verb service time, control-queue depth and
//! wait, notify fan-out latency and drops, link seal/open bytes, retry
//! backoffs, and (via [`ServiceBehavior::on_stats`]) whatever the service
//! itself wants to export, e.g. WAL batch stats from the store.
//!
//! The registry is surfaced two ways with no per-service code:
//!
//! * the standard `aceStats` verb answers with a [`RegistrySnapshot`]
//!   rendered as homogeneous string arrays (`counters`, `gauges`,
//!   `histograms`), parseable back via [`StatsReport::from_cmdline`];
//! * the control thread periodically pushes the same snapshot to the Net
//!   Logger as a structured `event` record (kind `stats`).
//!
//! Handles are `Arc`s over atomics: the registry lock is touched only on
//! first use of a name, never on the hot path.
//!
//! [`ServiceBehavior::on_stats`]: crate::behavior::ServiceBehavior::on_stats
//!
//! ```
//! use ace_core::metrics::MetricsRegistry;
//! use std::time::Duration;
//!
//! let reg = MetricsRegistry::new();
//! reg.counter("cmd.errors").incr();
//! reg.gauge("queue.depth").set(3);
//! let h = reg.histogram("cmd.ping");
//! h.record(Duration::from_micros(120));
//! let snap = reg.snapshot();
//! assert_eq!(snap.counters["cmd.errors"], 1);
//! assert_eq!(snap.histograms["cmd.ping"].count, 1);
//! ```

use ace_lang::{CmdLine, Reply, Scalar, Value};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// A monotonically increasing event count.
#[derive(Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Add one.
    pub fn incr(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// An instantaneous signed level (queue depth, bytes resident, …).
#[derive(Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicI64::new(0))
    }

    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl fmt::Debug for Gauge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// Number of histogram buckets.  Bucket `i ≥ 1` covers durations in
/// `[2^(i-1), 2^i)` microseconds; bucket 0 is exactly 0µs.  The top bucket
/// (`2^26`µs ≈ 67s and beyond) is open-ended — far past any command timeout.
pub const HISTOGRAM_BUCKETS: usize = 28;

/// A fixed-bucket latency histogram over power-of-two microsecond buckets.
///
/// Recording is three relaxed atomic ops (bucket, count+sum, max); quantile
/// extraction walks the 28 buckets with linear interpolation inside the
/// target bucket, so p99 error is bounded by the bucket width (≤ 2x).
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            max_us: AtomicU64::new(0),
        }
    }

    fn bucket_index(us: u64) -> usize {
        ((64 - us.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive lower bound of bucket `i`, in microseconds.
    fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Exclusive upper bound of bucket `i`, in microseconds.
    fn bucket_ceil(i: usize) -> u64 {
        1u64 << i
    }

    /// Record one observation.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one observation given directly in microseconds.
    pub fn record_us(&self, us: u64) {
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy suitable for quantile extraction.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.snapshot();
        write!(
            f,
            "Histogram(count={}, p50={:.0}us, p99={:.0}us, max={}us)",
            s.count,
            s.quantile(0.5),
            s.quantile(0.99),
            s.max_us
        )
    }
}

/// Frozen histogram state with quantile extraction.
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    pub count: u64,
    pub sum_us: u64,
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// The `q`-quantile (`q` in `[0, 1]`) in microseconds, interpolated
    /// linearly inside the covering bucket and clamped to the observed max.
    /// Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).max(1.0);
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= rank {
                let lo = Histogram::bucket_floor(i) as f64;
                let hi = Histogram::bucket_ceil(i) as f64;
                let frac = (rank - cum as f64) / n as f64;
                return (lo + (hi - lo) * frac).min(self.max_us as f64);
            }
            cum = next;
        }
        self.max_us as f64
    }

    /// Arithmetic mean in microseconds (0 for an empty histogram).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }
}

/// A lock-cheap bag of named metrics.  Lookup by name takes a read lock;
/// callers hold the returned `Arc` handle and thereafter touch only atomics.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

fn get_or_create<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = map
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .get(name)
        .cloned()
    {
        return v;
    }
    let mut w = map.write().unwrap_or_else(|e| e.into_inner());
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl MetricsRegistry {
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get-or-create the counter named `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_create(&self.counters, name)
    }

    /// Get-or-create the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_create(&self.gauges, name)
    }

    /// Get-or-create the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_create(&self.histograms, name)
    }

    /// Freeze every metric into a point-in-time snapshot.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .counters
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

impl fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("MetricsRegistry")
    }
}

/// A frozen registry, ready to encode as a reply, event payload, or JSON.
#[derive(Debug, Clone, Default)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

fn str_row(cells: Vec<String>) -> Vec<Scalar> {
    cells.into_iter().map(Scalar::Str).collect()
}

impl RegistrySnapshot {
    /// Drop every metric whose name does not start with `prefix`.
    pub fn retain_prefix(&mut self, prefix: &str) {
        self.counters.retain(|k, _| k.starts_with(prefix));
        self.gauges.retain(|k, _| k.starts_with(prefix));
        self.histograms.retain(|k, _| k.starts_with(prefix));
    }

    /// Render as the three wire arrays shared by `aceStats` replies and
    /// `stats` event payloads.  Rows are homogeneous all-string cells (the
    /// array grammar requires one scalar type across the whole array, and
    /// metric names are dotted, so nothing fits a bare word).
    fn encode_into(&self, mut cmd: CmdLine) -> CmdLine {
        let counters: Vec<Vec<Scalar>> = self
            .counters
            .iter()
            .map(|(k, v)| str_row(vec![k.clone(), v.to_string()]))
            .collect();
        let gauges: Vec<Vec<Scalar>> = self
            .gauges
            .iter()
            .map(|(k, v)| str_row(vec![k.clone(), v.to_string()]))
            .collect();
        let histograms: Vec<Vec<Scalar>> = self
            .histograms
            .iter()
            .map(|(k, h)| {
                str_row(vec![
                    k.clone(),
                    h.count.to_string(),
                    format!("{:.1}", h.quantile(0.50)),
                    format!("{:.1}", h.quantile(0.90)),
                    format!("{:.1}", h.quantile(0.99)),
                    h.max_us.to_string(),
                    format!("{:.1}", h.mean_us()),
                ])
            })
            .collect();
        if !counters.is_empty() {
            cmd.push_arg("counters", Value::Array(counters));
        }
        if !gauges.is_empty() {
            cmd.push_arg("gauges", Value::Array(gauges));
        }
        if !histograms.is_empty() {
            cmd.push_arg("histograms", Value::Array(histograms));
        }
        cmd
    }

    /// The `aceStats` reply for this snapshot.
    pub fn to_reply(&self) -> Reply {
        Reply::ok_with(|c| self.encode_into(c))
    }

    /// The inner payload command carried (hex-encoded) by a `stats` event
    /// record pushed to the Net Logger.
    pub fn to_event_payload(&self) -> CmdLine {
        self.encode_into(CmdLine::new("stats"))
    }

    /// Hand-rolled JSON for bench artifacts (`BENCH_pr4.json`); no external
    /// serializer available in this tree.
    pub fn to_json(&self, indent: &str) -> String {
        let pad = |s: &str| format!("{indent}{s}");
        let mut out = String::from("{\n");
        out.push_str(&pad("  \"counters\": {\n"));
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&pad(&format!("    \"{k}\": {v}")));
        }
        out.push('\n');
        out.push_str(&pad("  },\n"));
        out.push_str(&pad("  \"gauges\": {\n"));
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&pad(&format!("    \"{k}\": {v}")));
        }
        out.push('\n');
        out.push_str(&pad("  },\n"));
        out.push_str(&pad("  \"histograms\": {\n"));
        first = true;
        for (k, h) in &self.histograms {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&pad(&format!(
                "    \"{k}\": {{\"count\": {}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {}, \"mean_us\": {:.1}}}",
                h.count,
                h.quantile(0.50),
                h.quantile(0.90),
                h.quantile(0.99),
                h.max_us,
                h.mean_us()
            )));
        }
        out.push('\n');
        out.push_str(&pad("  }\n"));
        out.push_str(&pad("}"));
        out
    }
}

/// Per-histogram quantiles as decoded from an `aceStats` reply.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantileRow {
    pub count: u64,
    pub p50_us: f64,
    pub p90_us: f64,
    pub p99_us: f64,
    pub max_us: u64,
    pub mean_us: f64,
}

/// Client-side decoded view of an `aceStats` reply or `stats` event payload.
#[derive(Debug, Clone, Default)]
pub struct StatsReport {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, QuantileRow>,
}

impl StatsReport {
    /// Decode the three stats arrays out of a reply result or event payload.
    /// Rows that do not parse are skipped (forward compatibility beats
    /// strictness on the read side).
    pub fn from_cmdline(cmd: &CmdLine) -> StatsReport {
        fn cell(row: &[Scalar], i: usize) -> Option<&str> {
            row.get(i).and_then(Scalar::as_text)
        }
        let mut report = StatsReport::default();
        if let Some(rows) = cmd.get_array("counters") {
            for row in rows {
                if let (Some(name), Some(v)) = (cell(row, 0), cell(row, 1)) {
                    if let Ok(v) = v.parse::<u64>() {
                        report.counters.insert(name.to_string(), v);
                    }
                }
            }
        }
        if let Some(rows) = cmd.get_array("gauges") {
            for row in rows {
                if let (Some(name), Some(v)) = (cell(row, 0), cell(row, 1)) {
                    if let Ok(v) = v.parse::<i64>() {
                        report.gauges.insert(name.to_string(), v);
                    }
                }
            }
        }
        if let Some(rows) = cmd.get_array("histograms") {
            for row in rows {
                let parsed = (|| {
                    Some((
                        cell(row, 0)?.to_string(),
                        QuantileRow {
                            count: cell(row, 1)?.parse().ok()?,
                            p50_us: cell(row, 2)?.parse().ok()?,
                            p90_us: cell(row, 3)?.parse().ok()?,
                            p99_us: cell(row, 4)?.parse().ok()?,
                            max_us: cell(row, 5)?.parse().ok()?,
                            mean_us: cell(row, 6)?.parse().ok()?,
                        },
                    ))
                })();
                if let Some((name, row)) = parsed {
                    report.histograms.insert(name, row);
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricsRegistry::new();
        reg.counter("a").incr();
        reg.counter("a").add(4);
        reg.gauge("g").set(7);
        reg.gauge("g").add(-2);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 5);
        assert_eq!(snap.gauges["g"], 5);
        // Handles are shared, not cloned-by-value.
        let h = reg.counter("a");
        h.incr();
        assert_eq!(reg.snapshot().counters["a"], 6);
    }

    #[test]
    fn histogram_buckets_cover_the_line() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        for i in 1..HISTOGRAM_BUCKETS - 1 {
            // Floors and ceils tile the line with no gaps.
            assert_eq!(
                Histogram::bucket_ceil(i - 1),
                Histogram::bucket_floor(i).max(1)
            );
        }
    }

    #[test]
    fn histogram_quantiles_are_sane() {
        let h = Histogram::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 10_000] {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10);
        assert_eq!(s.max_us, 10_000);
        let p50 = s.quantile(0.50);
        let p90 = s.quantile(0.90);
        let p99 = s.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99, "{p50} {p90} {p99}");
        assert!(p99 <= s.max_us as f64);
        // p50 of mostly-tens values sits in the tens, not the thousands.
        assert!((8.0..=128.0).contains(&p50), "{p50}");
        // p99 must land in the outlier's bucket region.
        assert!(p99 >= 1_000.0, "{p99}");
        assert!((s.mean_us() - 1_045.0).abs() < 1.0);
    }

    #[test]
    fn empty_histogram_reports_zeroes() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0.0);
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn snapshot_round_trips_through_reply() {
        let reg = MetricsRegistry::new();
        reg.counter("cmd.errors").add(3);
        reg.gauge("queue.depth").set(2);
        let h = reg.histogram("cmd.ping");
        for us in [100u64, 200, 300] {
            h.record_us(us);
        }
        let reply = reg.snapshot().to_reply();
        let result = reply.result().expect("ok reply").clone();
        // The encoded form survives the wire grammar.
        let wire = result.to_wire();
        let parsed = CmdLine::parse(&wire).expect("wire parse");
        let report = StatsReport::from_cmdline(&parsed);
        assert_eq!(report.counters["cmd.errors"], 3);
        assert_eq!(report.gauges["queue.depth"], 2);
        let row = &report.histograms["cmd.ping"];
        assert_eq!(row.count, 3);
        assert!(row.p50_us <= row.p99_us);
        assert_eq!(row.max_us, 300);
    }

    #[test]
    fn retain_prefix_filters_all_kinds() {
        let reg = MetricsRegistry::new();
        reg.counter("cmd.a").incr();
        reg.counter("notify.drops").incr();
        reg.gauge("cmd.depth").set(1);
        reg.histogram("notify.latency").record_us(5);
        let mut snap = reg.snapshot();
        snap.retain_prefix("notify.");
        assert_eq!(snap.counters.len(), 1);
        assert!(snap.gauges.is_empty());
        assert_eq!(snap.histograms.len(), 1);
    }

    #[test]
    fn json_is_structurally_sound() {
        let reg = MetricsRegistry::new();
        reg.counter("c").incr();
        reg.histogram("h").record_us(42);
        let json = reg.snapshot().to_json("");
        assert!(json.contains("\"c\": 1"));
        assert!(json.contains("\"count\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
