//! Supervised recovery: the watchdog service daemon (§5.2, §9).
//!
//! §9 calls for watcher services that "can be utilized to alert … of closed
//! applications and can also work in conjunction with the ASD".  The
//! [`Supervisor`] is that watchdog grown into a full recovery subsystem.
//! It is itself an ordinary ACE service daemon that:
//!
//! * subscribes to the ASD's `serviceExpired` event (lease lapses reach it
//!   as `onServiceExpired` notifications);
//! * periodically *health-probes* every supervised service — an ASD lookup
//!   followed by a `ping` — catching instances that are wedged or whose
//!   host died even before their lease runs out;
//! * restarts failed services from caller-provided respawn factories,
//!   under a [`RestartPolicy`]: backoff between attempts, a bounded number
//!   of restarts per sliding window, and escalation to the Net Logger when
//!   the budget is exhausted.
//!
//! Respawn factories decide what state a restarted instance recovers —
//! a store replica's factory re-attaches the surviving `DiskImage`, so
//! anti-entropy pulls the replica back to convergence (§5.3 "robust"
//! class); a stateless service's factory just rebuilds it (§5.2 "restart"
//! class).

use crate::behavior::{ClientInfo, ServiceBehavior, ServiceCtx};
use crate::daemon::{DaemonHandle, SpawnError};
use crate::retry::RetryPolicy;
use ace_lang::{ArgType, CmdLine, CmdSpec, ErrorCode, Reply, Scalar, Semantics, Value};
use ace_net::SimNet;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// A successful respawn: the new instance plus an optional recovery note
/// (e.g. what the store replica's WAL replay found), surfaced in the
/// supervisor's restart log line.
pub struct Respawn {
    pub handle: DaemonHandle,
    pub note: Option<String>,
}

impl Respawn {
    pub fn with_note(handle: DaemonHandle, note: impl Into<String>) -> Respawn {
        Respawn {
            handle,
            note: Some(note.into()),
        }
    }
}

impl From<DaemonHandle> for Respawn {
    fn from(handle: DaemonHandle) -> Respawn {
        Respawn { handle, note: None }
    }
}

/// How a respawned instance is created.  The factory owns whatever state
/// the new instance must recover (disk images, checkpoints, ports).
pub type RespawnFn = Box<dyn FnMut(&SimNet) -> Result<Respawn, SpawnError> + Send>;

/// One service under supervision.
pub struct SupervisedSpec {
    /// The ASD registration name to watch.
    pub name: String,
    /// Factory invoked to bring a failed instance back.
    pub respawn: RespawnFn,
}

impl SupervisedSpec {
    pub fn new(name: impl Into<String>, respawn: RespawnFn) -> SupervisedSpec {
        SupervisedSpec {
            name: name.into(),
            respawn,
        }
    }
}

/// Limits on how hard the supervisor tries to keep a service alive.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Successful restarts allowed within [`RestartPolicy::window`] before
    /// the service is declared permanently failed.
    pub max_restarts: u32,
    /// Sliding window over which restarts are counted.
    pub window: Duration,
    /// Backoff between consecutive respawn *attempts* for one incident.
    pub backoff: RetryPolicy,
    /// Failed respawn attempts in a row before escalation.
    pub max_spawn_attempts: u32,
    /// Consecutive failed health probes before a restart is triggered.
    pub probe_failures: u32,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            max_restarts: 5,
            window: Duration::from_secs(10),
            backoff: RetryPolicy::new(Duration::from_millis(50)).with_cap(Duration::from_secs(1)),
            max_spawn_attempts: 8,
            probe_failures: 2,
        }
    }
}

impl RestartPolicy {
    pub fn with_max_restarts(mut self, max: u32) -> RestartPolicy {
        self.max_restarts = max;
        self
    }

    pub fn with_window(mut self, window: Duration) -> RestartPolicy {
        self.window = window;
        self
    }

    pub fn with_backoff(mut self, backoff: RetryPolicy) -> RestartPolicy {
        self.backoff = backoff;
        self
    }

    pub fn with_max_spawn_attempts(mut self, attempts: u32) -> RestartPolicy {
        self.max_spawn_attempts = attempts.max(1);
        self
    }

    pub fn with_probe_failures(mut self, failures: u32) -> RestartPolicy {
        self.probe_failures = failures.max(1);
        self
    }
}

/// Supervision failures surfaced to callers of [`Supervisor`] helpers.
#[derive(Debug)]
pub enum SuperviseError {
    /// Subscribing to the ASD's `serviceExpired` event failed.
    Subscribe(crate::client::ClientError),
}

impl std::fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuperviseError::Subscribe(e) => write!(f, "subscribe to serviceExpired: {e}"),
        }
    }
}
impl std::error::Error for SuperviseError {}

/// Where one supervised service currently stands.
enum ServiceState {
    /// Believed alive; `failures` consecutive probes have gone unanswered.
    Watching { failures: u32 },
    /// Down; a respawn attempt is scheduled.
    Pending { attempt: u32, next_try: Instant },
    /// Restart budget exhausted; escalated, no further attempts.
    Failed,
}

struct Supervised {
    spec: SupervisedSpec,
    state: ServiceState,
    /// The most recent instance this supervisor spawned (kept alive; shut
    /// down with the supervisor).
    handle: Option<DaemonHandle>,
    /// Instants of successful restarts, pruned to the policy window.
    restarts: VecDeque<Instant>,
    total_restarts: u64,
}

/// A point-in-time view of the supervisor's bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorReport {
    pub supervised: usize,
    pub restarts: u64,
    pub escalations: u64,
    pub pending: Vec<String>,
    pub failed: Vec<String>,
}

/// The watchdog behavior.  Run it under a [`crate::Daemon`] configured with
/// the ASD and Net Logger, then subscribe it with [`wire_supervisor`].
pub struct Supervisor {
    services: BTreeMap<String, Supervised>,
    policy: RestartPolicy,
    probe_interval: Duration,
    last_probe: Option<Instant>,
    escalations: u64,
}

impl Supervisor {
    pub fn new(specs: Vec<SupervisedSpec>, policy: RestartPolicy) -> Supervisor {
        Supervisor {
            services: specs
                .into_iter()
                .map(|spec| {
                    (
                        spec.name.clone(),
                        Supervised {
                            spec,
                            state: ServiceState::Watching { failures: 0 },
                            handle: None,
                            restarts: VecDeque::new(),
                            total_restarts: 0,
                        },
                    )
                })
                .collect(),
            policy,
            probe_interval: Duration::from_millis(200),
            last_probe: None,
            escalations: 0,
        }
    }

    /// Override the health-probe cadence (per `on_tick`, so the effective
    /// cadence is also bounded below by `DaemonConfig::tick`).
    pub fn with_probe_interval(mut self, interval: Duration) -> Supervisor {
        self.probe_interval = interval;
        self
    }

    fn report(&self) -> SupervisorReport {
        let mut pending = Vec::new();
        let mut failed = Vec::new();
        for (name, s) in &self.services {
            match s.state {
                ServiceState::Pending { .. } => pending.push(name.clone()),
                ServiceState::Failed => failed.push(name.clone()),
                ServiceState::Watching { .. } => {}
            }
        }
        SupervisorReport {
            supervised: self.services.len(),
            restarts: self.services.values().map(|s| s.total_restarts).sum(),
            escalations: self.escalations,
            pending,
            failed,
        }
    }

    /// Mark a service down and schedule its first respawn attempt now.
    fn mark_down(&mut self, name: &str) {
        if let Some(s) = self.services.get_mut(name) {
            if matches!(s.state, ServiceState::Watching { .. }) {
                s.state = ServiceState::Pending {
                    attempt: 0,
                    next_try: Instant::now(),
                };
            }
        }
    }

    /// Drive every due respawn attempt.
    fn run_pending(&mut self, ctx: &mut ServiceCtx) {
        let now = Instant::now();
        let due: Vec<String> = self
            .services
            .iter()
            .filter(|(_, s)| matches!(s.state, ServiceState::Pending { next_try, .. } if next_try <= now))
            .map(|(name, _)| name.clone())
            .collect();
        for name in due {
            self.attempt_respawn(ctx, &name);
        }
    }

    fn attempt_respawn(&mut self, ctx: &mut ServiceCtx, name: &str) {
        let policy = self.policy.clone();
        let Some(s) = self.services.get_mut(name) else {
            return;
        };
        let ServiceState::Pending { attempt, .. } = s.state else {
            return;
        };

        // Budget check: prune restarts that have aged out of the window.
        let now = Instant::now();
        while let Some(&oldest) = s.restarts.front() {
            if now.duration_since(oldest) > policy.window {
                s.restarts.pop_front();
            } else {
                break;
            }
        }
        if s.restarts.len() as u32 >= policy.max_restarts {
            s.state = ServiceState::Failed;
            self.escalations += 1;
            ctx.log(
                "error",
                format!(
                    "supervised service {name} exceeded {} restarts in {:?}; giving up",
                    policy.max_restarts, policy.window
                ),
            );
            ctx.fire_event(CmdLine::new("servicePermanentlyFailed").arg("name", name));
            return;
        }

        match (s.spec.respawn)(ctx.net()) {
            Ok(Respawn { handle, note }) => {
                // The old instance (if we held one) is dead; reap it.
                if let Some(old) = s.handle.take() {
                    old.crash();
                }
                s.handle = Some(handle);
                s.restarts.push_back(now);
                s.total_restarts += 1;
                s.state = ServiceState::Watching { failures: 0 };
                match note {
                    Some(note) => ctx.log(
                        "warn",
                        format!("restarted supervised service {name} ({note})"),
                    ),
                    None => ctx.log("warn", format!("restarted supervised service {name}")),
                }
                ctx.fire_event(CmdLine::new("serviceRestarted").arg("name", name));
            }
            Err(e) => {
                let next_attempt = attempt + 1;
                if next_attempt >= policy.max_spawn_attempts {
                    s.state = ServiceState::Failed;
                    self.escalations += 1;
                    ctx.log(
                        "error",
                        format!(
                            "respawn of {name} failed {next_attempt} times (last: {e}); giving up"
                        ),
                    );
                    ctx.fire_event(CmdLine::new("servicePermanentlyFailed").arg("name", name));
                } else {
                    s.state = ServiceState::Pending {
                        attempt: next_attempt,
                        next_try: now + policy.backoff.delay_for(attempt),
                    };
                    ctx.log(
                        "warn",
                        format!("respawn of {name} failed: {e}; backing off"),
                    );
                }
            }
        }
    }

    /// Probe one service: is it registered, and does it answer `ping`?
    fn probe(&mut self, ctx: &mut ServiceCtx, name: &str) {
        let threshold = self.policy.probe_failures;
        let Some(s) = self.services.get_mut(name) else {
            return;
        };
        let ServiceState::Watching { failures } = s.state else {
            return;
        };
        let alive = match ctx.lookup_one(name) {
            // ASD unreachable: no verdict either way — don't count it.
            Err(_) => return,
            Ok(None) => false,
            Ok(Some(entry)) => ctx.call(&entry.addr, &CmdLine::new("ping")).is_ok(),
        };
        if alive {
            s.state = ServiceState::Watching { failures: 0 };
        } else {
            let failures = failures + 1;
            if failures >= threshold {
                ctx.log("warn", format!("{name} failed {failures} health probes"));
                s.state = ServiceState::Pending {
                    attempt: 0,
                    next_try: Instant::now(),
                };
            } else {
                s.state = ServiceState::Watching { failures };
            }
        }
    }

    fn run_probes(&mut self, ctx: &mut ServiceCtx) {
        let now = Instant::now();
        if self
            .last_probe
            .is_some_and(|last| now.duration_since(last) < self.probe_interval)
        {
            return;
        }
        self.last_probe = Some(now);
        let names: Vec<String> = self.services.keys().cloned().collect();
        for name in names {
            self.probe(ctx, &name);
        }
    }
}

impl ServiceBehavior for Supervisor {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("onServiceExpired", "notification from the ASD")
                    .optional("service", ArgType::Str, "origin (the ASD)")
                    .optional("cmd", ArgType::Str, "origin event")
                    .optional("name", ArgType::Word, "the expired service"),
            )
            .with(CmdSpec::new(
                "superviseStats",
                "supervision counters and state",
            ))
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "onServiceExpired" => {
                let Some(name) = cmd.get_text("name").map(str::to_string) else {
                    return Reply::err(ErrorCode::Semantics, "notification without name");
                };
                if !self.services.contains_key(&name) {
                    return Reply::ok_with(|c| c.arg("restarted", false));
                }
                // A lapse notification can trail our own probe-triggered
                // restart; only act if the service is genuinely absent.
                let still_registered = matches!(ctx.lookup_one(&name), Ok(Some(_)));
                if still_registered {
                    return Reply::ok_with(|c| c.arg("restarted", false));
                }
                ctx.log("warn", format!("{name} lease expired; restarting"));
                self.mark_down(&name);
                self.run_pending(ctx);
                let restarted = matches!(
                    self.services.get(&name).map(|s| &s.state),
                    Some(ServiceState::Watching { .. })
                );
                Reply::ok_with(|c| c.arg("restarted", restarted))
            }
            "superviseStats" => {
                let report = self.report();
                Reply::ok_with(|c| {
                    c.arg("supervised", report.supervised as i64)
                        .arg("restarts", report.restarts as i64)
                        .arg("escalations", report.escalations as i64)
                        .arg(
                            "pending",
                            Value::Vector(
                                report
                                    .pending
                                    .iter()
                                    .map(|n| Scalar::Word(n.clone()))
                                    .collect(),
                            ),
                        )
                        .arg(
                            "failed",
                            Value::Vector(
                                report
                                    .failed
                                    .iter()
                                    .map(|n| Scalar::Word(n.clone()))
                                    .collect(),
                            ),
                        )
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }

    fn on_tick(&mut self, ctx: &mut ServiceCtx) {
        self.run_pending(ctx);
        self.run_probes(ctx);
        self.run_pending(ctx);
    }

    fn on_stop(&mut self, _ctx: &mut ServiceCtx) {
        for s in self.services.values_mut() {
            if let Some(handle) = s.handle.take() {
                handle.shutdown();
            }
        }
    }
}

/// Subscribe a running supervisor daemon to the ASD's `serviceExpired`
/// event, so lease lapses reach it as `onServiceExpired` notifications.
pub fn wire_supervisor(
    net: &SimNet,
    supervisor: &DaemonHandle,
    asd: &ace_net::Addr,
    identity: &ace_security::keys::KeyPair,
) -> Result<(), SuperviseError> {
    let mut client =
        crate::client::ServiceClient::connect(net, &supervisor.addr().host, asd.clone(), identity)
            .map_err(SuperviseError::Subscribe)?;
    client
        .call_ok(
            &CmdLine::new("addNotification")
                .arg("cmd", "serviceExpired")
                .arg("service", supervisor.name())
                .arg("host", supervisor.addr().host.as_str())
                .arg("port", supervisor.addr().port)
                .arg("notifyCmd", "onServiceExpired"),
        )
        .map_err(SuperviseError::Subscribe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = RestartPolicy::default();
        assert!(p.max_restarts > 0);
        assert!(p.max_spawn_attempts > 0);
        assert!(p.probe_failures > 0);
        assert!(p.window > Duration::ZERO);
    }

    #[test]
    fn report_starts_clean() {
        let sup = Supervisor::new(Vec::new(), RestartPolicy::default());
        let report = sup.report();
        assert_eq!(report.supervised, 0);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.escalations, 0);
        assert!(report.pending.is_empty());
        assert!(report.failed.is_empty());
    }
}
