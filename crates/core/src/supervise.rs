//! Supervised recovery: the watchdog service daemon (§5.2, §9).
//!
//! §9 calls for watcher services that "can be utilized to alert … of closed
//! applications and can also work in conjunction with the ASD".  The
//! [`Supervisor`] is that watchdog grown into a full recovery subsystem.
//! It is itself an ordinary ACE service daemon that:
//!
//! * subscribes to the ASD's `serviceExpired` event (lease lapses reach it
//!   as `onServiceExpired` notifications);
//! * periodically *health-probes* every supervised service — an ASD lookup
//!   followed by a `ping` — catching instances that are wedged or whose
//!   host died even before their lease runs out;
//! * restarts failed services from caller-provided respawn factories,
//!   under a [`RestartPolicy`]: backoff between attempts, a bounded number
//!   of restarts per sliding window, and escalation to the Net Logger when
//!   the budget is exhausted.
//!
//! Respawn factories decide what state a restarted instance recovers —
//! a store replica's factory re-attaches the surviving `DiskImage`, so
//! anti-entropy pulls the replica back to convergence (§5.3 "robust"
//! class); a stateless service's factory just rebuilds it (§5.2 "restart"
//! class).

use crate::behavior::{ClientInfo, ServiceBehavior, ServiceCtx};
use crate::client::ServiceClient;
use crate::daemon::{Daemon, DaemonConfig, DaemonHandle, SpawnError};
use crate::protocol;
use crate::retry::RetryPolicy;
use ace_lang::{ArgType, CmdLine, CmdSpec, ErrorCode, Reply, Scalar, Semantics, Value};
use ace_net::{HostId, SimNet};
use ace_security::keys::KeyPair;
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// A successful respawn: the new instance plus an optional recovery note
/// (e.g. what the store replica's WAL replay found), surfaced in the
/// supervisor's restart log line.
pub struct Respawn {
    pub handle: DaemonHandle,
    pub note: Option<String>,
}

impl Respawn {
    pub fn with_note(handle: DaemonHandle, note: impl Into<String>) -> Respawn {
        Respawn {
            handle,
            note: Some(note.into()),
        }
    }
}

impl From<DaemonHandle> for Respawn {
    fn from(handle: DaemonHandle) -> Respawn {
        Respawn { handle, note: None }
    }
}

/// How a respawned instance is created.  The factory owns whatever state
/// the new instance must recover (disk images, checkpoints, ports).
pub type RespawnFn = Box<dyn FnMut(&SimNet) -> Result<Respawn, SpawnError> + Send>;

/// How a *replacement behavior* for a live upgrade is created.  Unlike
/// [`RespawnFn`] it builds an unspawned behavior: the upgrade protocol
/// itself decides when the old instance retires and the new one starts.
pub type UpgradeFn = Box<dyn FnMut() -> Box<dyn ServiceBehavior> + Send>;

/// One service under supervision.
pub struct SupervisedSpec {
    /// The ASD registration name to watch.
    pub name: String,
    /// Factory invoked to bring a failed instance back.
    pub respawn: RespawnFn,
    /// Factory for a live-upgrade replacement behavior; enables the
    /// `upgradeService` verb for this service.
    pub upgrade: Option<UpgradeFn>,
}

impl SupervisedSpec {
    pub fn new(name: impl Into<String>, respawn: RespawnFn) -> SupervisedSpec {
        SupervisedSpec {
            name: name.into(),
            respawn,
            upgrade: None,
        }
    }

    /// Enable wire-driven live upgrades (`upgradeService name=<w>`) with
    /// `factory` building each replacement behavior.
    pub fn with_upgrade(mut self, factory: UpgradeFn) -> SupervisedSpec {
        self.upgrade = Some(factory);
        self
    }
}

/// Limits on how hard the supervisor tries to keep a service alive.
#[derive(Debug, Clone)]
pub struct RestartPolicy {
    /// Successful restarts allowed within [`RestartPolicy::window`] before
    /// the service is declared permanently failed.
    pub max_restarts: u32,
    /// Sliding window over which restarts are counted.
    pub window: Duration,
    /// Backoff between consecutive respawn *attempts* for one incident.
    pub backoff: RetryPolicy,
    /// Failed respawn attempts in a row before escalation.
    pub max_spawn_attempts: u32,
    /// Consecutive failed health probes before a restart is triggered.
    pub probe_failures: u32,
}

impl Default for RestartPolicy {
    fn default() -> RestartPolicy {
        RestartPolicy {
            max_restarts: 5,
            window: Duration::from_secs(10),
            backoff: RetryPolicy::new(Duration::from_millis(50)).with_cap(Duration::from_secs(1)),
            max_spawn_attempts: 8,
            probe_failures: 2,
        }
    }
}

impl RestartPolicy {
    pub fn with_max_restarts(mut self, max: u32) -> RestartPolicy {
        self.max_restarts = max;
        self
    }

    pub fn with_window(mut self, window: Duration) -> RestartPolicy {
        self.window = window;
        self
    }

    pub fn with_backoff(mut self, backoff: RetryPolicy) -> RestartPolicy {
        self.backoff = backoff;
        self
    }

    pub fn with_max_spawn_attempts(mut self, attempts: u32) -> RestartPolicy {
        self.max_spawn_attempts = attempts.max(1);
        self
    }

    pub fn with_probe_failures(mut self, failures: u32) -> RestartPolicy {
        self.probe_failures = failures.max(1);
        self
    }
}

/// Supervision failures surfaced to callers of [`Supervisor`] helpers.
#[derive(Debug)]
pub enum SuperviseError {
    /// Subscribing to the ASD's `serviceExpired` event failed.
    Subscribe(crate::client::ClientError),
}

impl std::fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SuperviseError::Subscribe(e) => write!(f, "subscribe to serviceExpired: {e}"),
        }
    }
}
impl std::error::Error for SuperviseError {}

/// Where one supervised service currently stands.
enum ServiceState {
    /// Believed alive; `failures` consecutive probes have gone unanswered.
    Watching { failures: u32 },
    /// Down; a respawn attempt is scheduled.
    Pending { attempt: u32, next_try: Instant },
    /// Restart budget exhausted; escalated, no further attempts.
    Failed,
}

struct Supervised {
    spec: SupervisedSpec,
    state: ServiceState,
    /// The most recent instance this supervisor spawned (kept alive; shut
    /// down with the supervisor).
    handle: Option<DaemonHandle>,
    /// Instants of successful restarts, pruned to the policy window.
    restarts: VecDeque<Instant>,
    total_restarts: u64,
}

/// A point-in-time view of the supervisor's bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SupervisorReport {
    pub supervised: usize,
    pub restarts: u64,
    pub escalations: u64,
    pub pending: Vec<String>,
    pub failed: Vec<String>,
}

/// The watchdog behavior.  Run it under a [`crate::Daemon`] configured with
/// the ASD and Net Logger, then subscribe it with [`wire_supervisor`].
pub struct Supervisor {
    services: BTreeMap<String, Supervised>,
    policy: RestartPolicy,
    probe_interval: Duration,
    last_probe: Option<Instant>,
    escalations: u64,
}

impl Supervisor {
    pub fn new(specs: Vec<SupervisedSpec>, policy: RestartPolicy) -> Supervisor {
        Supervisor {
            services: specs
                .into_iter()
                .map(|spec| {
                    (
                        spec.name.clone(),
                        Supervised {
                            spec,
                            state: ServiceState::Watching { failures: 0 },
                            handle: None,
                            restarts: VecDeque::new(),
                            total_restarts: 0,
                        },
                    )
                })
                .collect(),
            policy,
            probe_interval: Duration::from_millis(200),
            last_probe: None,
            escalations: 0,
        }
    }

    /// Override the health-probe cadence (per `on_tick`, so the effective
    /// cadence is also bounded below by `DaemonConfig::tick`).
    pub fn with_probe_interval(mut self, interval: Duration) -> Supervisor {
        self.probe_interval = interval;
        self
    }

    /// Hand the supervisor an already-running instance of a supervised
    /// service, making it eligible for `upgradeService` before its first
    /// respawn.  Handles for unknown names are dropped (shut down).
    pub fn adopt(mut self, handle: DaemonHandle) -> Supervisor {
        if let Some(s) = self.services.get_mut(handle.name()) {
            s.handle = Some(handle);
        }
        self
    }

    fn report(&self) -> SupervisorReport {
        let mut pending = Vec::new();
        let mut failed = Vec::new();
        for (name, s) in &self.services {
            match s.state {
                ServiceState::Pending { .. } => pending.push(name.clone()),
                ServiceState::Failed => failed.push(name.clone()),
                ServiceState::Watching { .. } => {}
            }
        }
        SupervisorReport {
            supervised: self.services.len(),
            restarts: self.services.values().map(|s| s.total_restarts).sum(),
            escalations: self.escalations,
            pending,
            failed,
        }
    }

    /// Mark a service down and schedule its first respawn attempt now.
    fn mark_down(&mut self, name: &str) {
        if let Some(s) = self.services.get_mut(name) {
            if matches!(s.state, ServiceState::Watching { .. }) {
                s.state = ServiceState::Pending {
                    attempt: 0,
                    next_try: Instant::now(),
                };
            }
        }
    }

    /// Drive every due respawn attempt.
    fn run_pending(&mut self, ctx: &mut ServiceCtx) {
        let now = Instant::now();
        let due: Vec<String> = self
            .services
            .iter()
            .filter(|(_, s)| matches!(s.state, ServiceState::Pending { next_try, .. } if next_try <= now))
            .map(|(name, _)| name.clone())
            .collect();
        for name in due {
            self.attempt_respawn(ctx, &name);
        }
    }

    fn attempt_respawn(&mut self, ctx: &mut ServiceCtx, name: &str) {
        let policy = self.policy.clone();
        let Some(s) = self.services.get_mut(name) else {
            return;
        };
        let ServiceState::Pending { attempt, .. } = s.state else {
            return;
        };

        // Budget check: prune restarts that have aged out of the window.
        let now = Instant::now();
        while let Some(&oldest) = s.restarts.front() {
            if now.duration_since(oldest) > policy.window {
                s.restarts.pop_front();
            } else {
                break;
            }
        }
        if s.restarts.len() as u32 >= policy.max_restarts {
            s.state = ServiceState::Failed;
            self.escalations += 1;
            ctx.log(
                "error",
                format!(
                    "supervised service {name} exceeded {} restarts in {:?}; giving up",
                    policy.max_restarts, policy.window
                ),
            );
            ctx.fire_event(CmdLine::new("servicePermanentlyFailed").arg("name", name));
            return;
        }

        match (s.spec.respawn)(ctx.net()) {
            Ok(Respawn { handle, note }) => {
                // The old instance (if we held one) is dead; reap it.
                if let Some(old) = s.handle.take() {
                    old.crash();
                }
                s.handle = Some(handle);
                s.restarts.push_back(now);
                s.total_restarts += 1;
                s.state = ServiceState::Watching { failures: 0 };
                match note {
                    Some(note) => ctx.log(
                        "warn",
                        format!("restarted supervised service {name} ({note})"),
                    ),
                    None => ctx.log("warn", format!("restarted supervised service {name}")),
                }
                ctx.fire_event(CmdLine::new("serviceRestarted").arg("name", name));
            }
            Err(e) => {
                let next_attempt = attempt + 1;
                if next_attempt >= policy.max_spawn_attempts {
                    s.state = ServiceState::Failed;
                    self.escalations += 1;
                    ctx.log(
                        "error",
                        format!(
                            "respawn of {name} failed {next_attempt} times (last: {e}); giving up"
                        ),
                    );
                    ctx.fire_event(CmdLine::new("servicePermanentlyFailed").arg("name", name));
                } else {
                    s.state = ServiceState::Pending {
                        attempt: next_attempt,
                        next_try: now + policy.backoff.delay_for(attempt),
                    };
                    ctx.log(
                        "warn",
                        format!("respawn of {name} failed: {e}; backing off"),
                    );
                }
            }
        }
    }

    /// Probe one service: is it registered, and does it answer `ping`?
    fn probe(&mut self, ctx: &mut ServiceCtx, name: &str) {
        let threshold = self.policy.probe_failures;
        let Some(s) = self.services.get_mut(name) else {
            return;
        };
        let ServiceState::Watching { failures } = s.state else {
            return;
        };
        let alive = match ctx.lookup_one(name) {
            // ASD unreachable: no verdict either way — don't count it.
            Err(_) => return,
            Ok(None) => false,
            Ok(Some(entry)) => ctx.call(&entry.addr, &CmdLine::new("ping")).is_ok(),
        };
        if alive {
            s.state = ServiceState::Watching { failures: 0 };
        } else {
            let failures = failures + 1;
            if failures >= threshold {
                ctx.log("warn", format!("{name} failed {failures} health probes"));
                s.state = ServiceState::Pending {
                    attempt: 0,
                    next_try: Instant::now(),
                };
            } else {
                s.state = ServiceState::Watching { failures };
            }
        }
    }

    /// Live-upgrade a supervised service whose handle this supervisor owns:
    /// quiesce → snapshot → swap to `replacement` under the next
    /// incarnation (see [`live_upgrade`]).  On an abort-class failure the
    /// old instance keeps serving and stays supervised; if the replacement
    /// fails to spawn after the old one retired, the service is marked down
    /// so the normal respawn factory brings it back.
    pub fn upgrade(
        &mut self,
        ctx: &mut ServiceCtx,
        name: &str,
        config: DaemonConfig,
        replacement: Box<dyn ServiceBehavior>,
    ) -> Result<UpgradeStats, UpgradeError> {
        let net = ctx.net().clone();
        let host = ctx.host().clone();
        let driver = *ctx.identity();
        let Some(s) = self.services.get_mut(name) else {
            return Err(UpgradeError::Protocol(format!("{name} is not supervised")));
        };
        let Some(old) = s.handle.take() else {
            return Err(UpgradeError::Protocol(format!(
                "{name} has no supervised instance to upgrade"
            )));
        };
        match live_upgrade(&net, &host, &driver, &old, config, replacement, None) {
            Ok((handle, stats)) => {
                s.handle = Some(handle);
                s.state = ServiceState::Watching { failures: 0 };
                ctx.log(
                    "info",
                    format!(
                        "upgraded {name} to incarnation {} (pause {:?}, {} verbs drained)",
                        old.incarnation() + 1,
                        stats.pause,
                        stats.drained
                    ),
                );
                Ok(stats)
            }
            Err(e @ UpgradeError::Spawn(_)) => {
                // The old instance already retired; let the respawn factory
                // bring the service back.
                s.state = ServiceState::Pending {
                    attempt: 0,
                    next_try: Instant::now(),
                };
                ctx.log("error", format!("upgrade of {name} failed mid-swap: {e}"));
                Err(e)
            }
            Err(e) => {
                // Aborted before the swap: the old instance keeps serving.
                s.handle = Some(old);
                ctx.log("warn", format!("upgrade of {name} aborted: {e}"));
                Err(e)
            }
        }
    }

    fn run_probes(&mut self, ctx: &mut ServiceCtx) {
        let now = Instant::now();
        if self
            .last_probe
            .is_some_and(|last| now.duration_since(last) < self.probe_interval)
        {
            return;
        }
        self.last_probe = Some(now);
        let names: Vec<String> = self.services.keys().cloned().collect();
        for name in names {
            self.probe(ctx, &name);
        }
    }
}

impl ServiceBehavior for Supervisor {
    fn semantics(&self) -> Semantics {
        Semantics::new()
            .with(
                CmdSpec::new("onServiceExpired", "notification from the ASD")
                    .optional("service", ArgType::Str, "origin (the ASD)")
                    .optional("cmd", ArgType::Str, "origin event")
                    .optional("name", ArgType::Word, "the expired service"),
            )
            .with(CmdSpec::new(
                "superviseStats",
                "supervision counters and state",
            ))
            .with(
                CmdSpec::new("upgradeService", "live-upgrade a supervised service").required(
                    "name",
                    ArgType::Word,
                    "the supervised service to hot-swap",
                ),
            )
    }

    fn handle(&mut self, ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "onServiceExpired" => {
                let Some(name) = cmd.get_text("name").map(str::to_string) else {
                    return Reply::err(ErrorCode::Semantics, "notification without name");
                };
                if !self.services.contains_key(&name) {
                    return Reply::ok_with(|c| c.arg("restarted", false));
                }
                // A lapse notification can trail our own probe-triggered
                // restart; only act if the service is genuinely absent.
                let still_registered = matches!(ctx.lookup_one(&name), Ok(Some(_)));
                if still_registered {
                    return Reply::ok_with(|c| c.arg("restarted", false));
                }
                ctx.log("warn", format!("{name} lease expired; restarting"));
                self.mark_down(&name);
                self.run_pending(ctx);
                let restarted = matches!(
                    self.services.get(&name).map(|s| &s.state),
                    Some(ServiceState::Watching { .. })
                );
                Reply::ok_with(|c| c.arg("restarted", restarted))
            }
            "upgradeService" => {
                let Some(name) = cmd.get_text("name").map(str::to_string) else {
                    return Reply::err(ErrorCode::Semantics, "upgradeService needs name");
                };
                let Some(s) = self.services.get_mut(&name) else {
                    return Reply::err(ErrorCode::NotFound, format!("{name} is not supervised"));
                };
                let Some(make) = s.spec.upgrade.as_mut() else {
                    return Reply::err(
                        ErrorCode::BadState,
                        format!("{name} has no upgrade factory"),
                    );
                };
                let replacement = make();
                let Some(config) = s.handle.as_ref().map(|h| h.config().clone()) else {
                    return Reply::err(
                        ErrorCode::BadState,
                        format!("{name} has no supervised instance to upgrade"),
                    );
                };
                match self.upgrade(ctx, &name, config, replacement) {
                    Ok(stats) => Reply::ok_with(|c| {
                        c.arg("drained", stats.drained as i64)
                            .arg("pauseMs", stats.pause.as_millis() as i64)
                    }),
                    Err(e) => Reply::err(ErrorCode::Internal, format!("upgrade failed: {e}")),
                }
            }
            "superviseStats" => {
                let report = self.report();
                Reply::ok_with(|c| {
                    c.arg("supervised", report.supervised as i64)
                        .arg("restarts", report.restarts as i64)
                        .arg("escalations", report.escalations as i64)
                        .arg(
                            "pending",
                            Value::Vector(
                                report
                                    .pending
                                    .iter()
                                    .map(|n| Scalar::Word(n.clone()))
                                    .collect(),
                            ),
                        )
                        .arg(
                            "failed",
                            Value::Vector(
                                report
                                    .failed
                                    .iter()
                                    .map(|n| Scalar::Word(n.clone()))
                                    .collect(),
                            ),
                        )
                })
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }

    fn on_tick(&mut self, ctx: &mut ServiceCtx) {
        self.run_pending(ctx);
        self.run_probes(ctx);
        self.run_pending(ctx);
    }

    fn on_stop(&mut self, _ctx: &mut ServiceCtx) {
        for s in self.services.values_mut() {
            if let Some(handle) = s.handle.take() {
                handle.shutdown();
            }
        }
    }
}

/// What one live upgrade cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpgradeStats {
    /// Verbs that were already queued (or in flight past the gate) when the
    /// quiesce began, all executed to completion before the snapshot.
    pub drained: u64,
    /// Quiesce call round-trip: gate close → drain → snapshot → reply.
    pub quiesce: Duration,
    /// Time the replacement spent rebuilding state from the snapshot.
    pub restore: Duration,
    /// Total client-visible pause: quiesce begin → replacement registered
    /// and admitting traffic.
    pub pause: Duration,
}

/// Why a live upgrade did not complete.  Every variant except [`Spawn`]
/// leaves the old incarnation serving (the swap is aborted before it
/// retires); `Spawn` means the old instance already retired and the
/// supervisor must bring the service back through its respawn factory.
///
/// [`Spawn`]: UpgradeError::Spawn
#[derive(Debug)]
pub enum UpgradeError {
    /// The quiesce call failed (daemon unreachable or refused).
    Quiesce(crate::client::ClientError),
    /// The quiesce reply was malformed, or the target is unknown.
    Protocol(String),
    /// The replacement behavior refused the snapshot (torn, corrupted, or
    /// of the wrong kind); aborted, old incarnation keeps serving.
    Restore(String),
    /// Persisting the snapshot failed; aborted, old incarnation keeps
    /// serving.
    Persist(String),
    /// The replacement failed to spawn *after* the old instance retired.
    Spawn(SpawnError),
}

impl std::fmt::Display for UpgradeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UpgradeError::Quiesce(e) => write!(f, "quiesce: {e}"),
            UpgradeError::Protocol(msg) => write!(f, "protocol: {msg}"),
            UpgradeError::Restore(msg) => write!(f, "restore refused: {msg}"),
            UpgradeError::Persist(msg) => write!(f, "snapshot persist failed: {msg}"),
            UpgradeError::Spawn(e) => write!(f, "replacement spawn failed: {e}"),
        }
    }
}
impl std::error::Error for UpgradeError {}

/// Hook invoked with the sealed snapshot before the swap commits — the env
/// layer persists it through the store client for durability/forensics.
pub type PersistFn<'a> = &'a mut dyn FnMut(&str, &[u8]) -> Result<(), String>;

/// Hot-swap a running daemon with zero dropped sessions (ROADMAP item 3).
///
/// The protocol, in order:
///
/// 1. **Quiesce** — `aceUpgrade phase=quiesce` closes the daemon's command
///    gate (new verbs bounce with retryable `E_UPGRADING`), drains every
///    in-flight verb to completion, snapshots behavior state, and exports
///    the notification registry.
/// 2. **Restore** — the replacement behavior rebuilds from the snapshot
///    *before* anything is torn down; a refusal (checksum mismatch, wrong
///    kind) aborts the swap and re-opens the old daemon's gate.
/// 3. **Persist** — the sealed snapshot is handed to `persist` (store
///    write) so the state survives even a botched swap.
/// 4. **Swap** — the old instance retires (graceful stop, *no*
///    deregistration: its ASD/RoomDB entries now belong to the
///    replacement), then the replacement spawns on the same address under
///    `incarnation + 1`, with the old identity and ticket vault so pooled
///    links and resumable sessions reconnect in one round trip, and
///    re-registers with the ASD — fencing out any straggler of the old
///    generation — before admitting traffic.
pub fn live_upgrade(
    net: &SimNet,
    from_host: &HostId,
    driver: &KeyPair,
    old: &DaemonHandle,
    config: DaemonConfig,
    mut replacement: Box<dyn ServiceBehavior>,
    persist: Option<PersistFn<'_>>,
) -> Result<(DaemonHandle, UpgradeStats), UpgradeError> {
    let swap_started = Instant::now();
    let mut client = ServiceClient::connect(net, from_host, old.addr().clone(), driver)
        .map_err(UpgradeError::Quiesce)?;
    let reply = client
        .call(&CmdLine::new("aceUpgrade").arg("phase", "quiesce"))
        .map_err(UpgradeError::Quiesce)?;
    let quiesce = swap_started.elapsed();
    let abort = |client: &mut ServiceClient| {
        let _ = client.call(&CmdLine::new("aceUpgrade").arg("phase", "abort"));
    };

    let drained = reply.get_int("drained").unwrap_or(0).max(0) as u64;
    let snapshot = match reply.get_text("snapshot") {
        Some(hex) => match protocol::hex_decode(hex) {
            Some(bytes) => Some(bytes),
            None => {
                abort(&mut client);
                return Err(UpgradeError::Protocol("snapshot is not valid hex".into()));
            }
        },
        None => None,
    };
    let notifications = match reply.get("notifications") {
        Some(value) => match protocol::registrations_from_value(value) {
            Some(rows) => rows,
            None => {
                abort(&mut client);
                return Err(UpgradeError::Protocol("malformed notifications".into()));
            }
        },
        None => Vec::new(),
    };

    // Validate the snapshot against the replacement *before* tearing
    // anything down — a refused restore must leave the old incarnation
    // serving untouched.
    let restore_started = Instant::now();
    if let Some(bytes) = &snapshot {
        if let Err(msg) = replacement.restore_state(bytes) {
            abort(&mut client);
            return Err(UpgradeError::Restore(msg));
        }
    }
    let restore = restore_started.elapsed();

    if let (Some(bytes), Some(persist)) = (&snapshot, persist) {
        if let Err(msg) = persist(old.name(), bytes) {
            abort(&mut client);
            return Err(UpgradeError::Persist(msg));
        }
    }

    // Point of no return: the old instance retires (releasing its address,
    // keeping its registrations) and the replacement takes over its
    // identity, ticket vault, listeners, and — incremented — incarnation.
    let config = config
        .with_identity(*old.identity())
        .with_ticket_vault(old.ticket_vault())
        .with_incarnation(old.incarnation() + 1)
        .with_notifications(notifications);
    old.retire();
    let handle = Daemon::spawn(net, config, replacement).map_err(UpgradeError::Spawn)?;
    let pause = swap_started.elapsed();
    handle
        .metrics()
        .histogram("upgrade.restoreTime")
        .record(restore);
    handle.metrics().histogram("upgrade.pause").record(pause);
    Ok((
        handle,
        UpgradeStats {
            drained,
            quiesce,
            restore,
            pause,
        },
    ))
}

/// Subscribe a running supervisor daemon to the ASD's `serviceExpired`
/// event, so lease lapses reach it as `onServiceExpired` notifications.
pub fn wire_supervisor(
    net: &SimNet,
    supervisor: &DaemonHandle,
    asd: &ace_net::Addr,
    identity: &ace_security::keys::KeyPair,
) -> Result<(), SuperviseError> {
    let mut client =
        crate::client::ServiceClient::connect(net, &supervisor.addr().host, asd.clone(), identity)
            .map_err(SuperviseError::Subscribe)?;
    client
        .call_ok(
            &CmdLine::new("addNotification")
                .arg("cmd", "serviceExpired")
                .arg("service", supervisor.name())
                .arg("host", supervisor.addr().host.as_str())
                .arg("port", supervisor.addr().port)
                .arg("notifyCmd", "onServiceExpired"),
        )
        .map_err(SuperviseError::Subscribe)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_sane() {
        let p = RestartPolicy::default();
        assert!(p.max_restarts > 0);
        assert!(p.max_spawn_attempts > 0);
        assert!(p.probe_failures > 0);
        assert!(p.window > Duration::ZERO);
    }

    #[test]
    fn report_starts_clean() {
        let sup = Supervisor::new(Vec::new(), RestartPolicy::default());
        let report = sup.report();
        assert_eq!(report.supervised, 0);
        assert_eq!(report.restarts, 0);
        assert_eq!(report.escalations, 0);
        assert!(report.pending.is_empty());
        assert!(report.failed.is_empty());
    }
}
