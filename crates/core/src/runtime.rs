//! Shared cooperative daemon runtime (ROADMAP item 2).
//!
//! The paper's §2.1 shell gives every daemon four OS threads (main, accept,
//! control, data).  That caps a process at tens of daemons — far short of a
//! building's worth of ambient services.  This module multiplexes *all*
//! daemons over one small fixed worker pool: each daemon becomes a single
//! cooperatively scheduled [`RuntimeTask`] that is polled only when one of
//! its endpoints signals readiness (see `ace_net::wake::WakeCell`) or a
//! timer it armed fires.
//!
//! ## Task model
//!
//! A task is a hand-rolled state machine, not a Rust `Future`: `poll` takes
//! `&mut self` and a [`TaskContext`] carrying the task's stable
//! [`std::task::Waker`].  The runtime guarantees `poll` is never run
//! concurrently with itself.  Return values:
//!
//! * [`TaskPoll::Pending`] — park until a registered waker fires or the
//!   timer armed via [`TaskContext::set_timer`] expires;
//! * [`TaskPoll::Again`] — reschedule immediately (used to cap work per
//!   poll for fairness without losing the rest of a burst);
//! * [`TaskPoll::Complete`] — destroy the task.  The task object is dropped
//!   *before* the completion flag is signalled, so resources it holds
//!   (listener binds, datagram sockets) are provably released once
//!   [`TaskHandle::wait`] returns — the live-upgrade respawn path depends
//!   on this ordering to rebind the same address.
//!
//! ## Lost-wakeup freedom
//!
//! Each task carries an atomic scheduling state (`IDLE / SCHEDULED /
//! RUNNING / NOTIFIED / COMPLETE`).  A wake on an `IDLE` task enqueues it;
//! a wake *during* a poll moves `RUNNING → NOTIFIED`, and the worker
//! re-enqueues after the poll instead of parking it — so a readiness event
//! that races with the empty-check inside a poll is never dropped.  Wakers
//! are registered before checking for data, and spurious wakes are safe.
//!
//! ## Blocking tolerance (the starvation watchdog)
//!
//! Ported daemon code still contains *bounded* blocking sections —
//! `ServiceCtx::call` to a peer daemon, handshake receives, WAL
//! group-commit waits.  Rather than rewrite every client call site in
//! continuation style, the runtime tolerates them: a watchdog thread
//! samples worker state every few milliseconds; any poll exceeding
//! [`LONG_POLL`] increments `runtime.longPolls` (how misbehaving tasks are
//! detected), and when **all** workers are simultaneously stuck while work
//! is queued, the watchdog injects an extra worker thread (up to
//! [`MAX_WORKERS`]) so blocked call chains between co-scheduled daemons
//! cannot deadlock the pool.  Injected workers retire after ~1s idle.
//!
//! The previous thread-per-daemon runtime is retained behind the
//! [`RuntimeMode`] knob (`ACE_RUNTIME=threads`) as the ablation baseline.

use crate::metrics::MetricsRegistry;
use crossbeam_channel::{Receiver, RecvTimeoutError, Sender};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock, Weak};
use std::task::{Wake, Waker};
use std::time::{Duration, Instant};

/// A poll longer than this counts as a long poll (starvation suspect).
pub const LONG_POLL: Duration = Duration::from_millis(20);
/// Watchdog sampling period.
const WATCHDOG_TICK: Duration = Duration::from_millis(5);
/// Hard cap on pool size including injected workers.
pub const MAX_WORKERS: usize = 512;
/// Park timeout for workers (also the injected-worker idle quantum).
const PARK_TIMEOUT: Duration = Duration::from_millis(50);
/// Injected workers retire after this many consecutive idle parks.
const INJECTED_IDLE_STRIKES: u32 = 20;

/// Which daemon runtime `Daemon::spawn` uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeMode {
    /// The paper's §2.1 layout: four OS threads per daemon (ablation
    /// baseline, `ACE_RUNTIME=threads`).
    Threads,
    /// One cooperative task per daemon on the shared pool (default).
    Shared,
}

impl RuntimeMode {
    /// Resolve from `ACE_RUNTIME` (`"threads"` → [`RuntimeMode::Threads`],
    /// anything else or unset → [`RuntimeMode::Shared`]).
    pub fn from_env() -> RuntimeMode {
        match std::env::var("ACE_RUNTIME") {
            Ok(v) if v.eq_ignore_ascii_case("threads") || v.eq_ignore_ascii_case("thread") => {
                RuntimeMode::Threads
            }
            _ => RuntimeMode::Shared,
        }
    }
}

/// Result of one cooperative poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskPoll {
    /// Nothing to do; park until woken (or the armed timer fires).
    Pending,
    /// More work immediately available; reschedule at the back of the
    /// ready queue (fairness yield).
    Again,
    /// Task finished; drop it.
    Complete,
}

/// Per-poll context: the task's stable waker plus timer arming.
pub struct TaskContext<'a> {
    waker: &'a Waker,
    timer: Option<Instant>,
}

impl TaskContext<'_> {
    /// The waker that reschedules this task.  Stable across polls, so
    /// endpoint registration is a cheap `will_wake` no-op after the first.
    pub fn waker(&self) -> &Waker {
        self.waker
    }

    /// Arm a wake-up at `at` (the earliest of all calls this poll wins).
    /// Only honoured when the poll returns [`TaskPoll::Pending`].
    pub fn set_timer(&mut self, at: Instant) {
        self.timer = Some(match self.timer {
            Some(t) if t <= at => t,
            _ => at,
        });
    }
}

/// One cooperatively scheduled unit (a whole daemon, a notifier, …).
pub trait RuntimeTask: Send {
    /// Make progress.  Must not block unboundedly; bounded blocking is
    /// tolerated (watchdog injects capacity) but counted against
    /// `runtime.longPolls` beyond [`LONG_POLL`].
    fn poll(&mut self, cx: &mut TaskContext<'_>) -> TaskPoll;
}

// Task scheduling states.
const IDLE: u8 = 0; // parked, waiting for a wake
const SCHEDULED: u8 = 1; // in the ready queue
const RUNNING: u8 = 2; // being polled
const NOTIFIED: u8 = 3; // being polled, wake arrived mid-poll
const COMPLETE: u8 = 4; // finished

#[derive(Default)]
struct DoneFlag {
    done: Mutex<bool>,
    cv: Condvar,
}

impl DoneFlag {
    fn signal(&self) {
        *self.done.lock().unwrap_or_else(|e| e.into_inner()) = true;
        self.cv.notify_all();
    }

    fn is_done(&self) -> bool {
        *self.done.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut g = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*g {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (ng, _) = self
                .cv
                .wait_timeout(g, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            g = ng;
        }
        true
    }
}

struct TaskCore {
    state: AtomicU8,
    task: parking_lot::Mutex<Option<Box<dyn RuntimeTask>>>,
    rt: Weak<RuntimeInner>,
    /// Earliest pending timer deadline (dedups heap entries per task).
    timer_armed: Mutex<Option<Instant>>,
    done: DoneFlag,
}

impl TaskCore {
    /// Schedule the task if it is parked; mark it notified if mid-poll.
    fn notify(self: &Arc<Self>) {
        loop {
            match self.state.load(Ordering::Acquire) {
                IDLE => {
                    if self
                        .state
                        .compare_exchange(IDLE, SCHEDULED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        if let Some(rt) = self.rt.upgrade() {
                            rt.enqueue(Arc::clone(self));
                        }
                        return;
                    }
                }
                RUNNING => {
                    if self
                        .state
                        .compare_exchange(RUNNING, NOTIFIED, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                }
                // Already queued, already notified, or gone: nothing to do.
                _ => return,
            }
        }
    }
}

impl Wake for TaskCore {
    fn wake(self: Arc<Self>) {
        self.notify();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.notify();
    }
}

/// Handle to a spawned task (held by `DaemonHandle`).
pub struct TaskHandle {
    core: Arc<TaskCore>,
}

impl TaskHandle {
    /// Kick the task (e.g. after flipping a stop flag it checks on poll).
    pub fn wake(&self) {
        self.core.notify();
    }

    /// Has the task returned [`TaskPoll::Complete`]?
    pub fn is_complete(&self) -> bool {
        self.core.done.is_done()
    }

    /// Block until the task completes (its object already dropped) or the
    /// timeout passes; returns whether it completed.
    pub fn wait(&self, timeout: Duration) -> bool {
        self.core.done.wait_timeout(timeout)
    }
}

impl std::fmt::Debug for TaskHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "TaskHandle(complete: {})", self.is_complete())
    }
}

struct TimerEntry {
    at: Instant,
    seq: u64,
    core: Arc<TaskCore>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    // Reversed: BinaryHeap is a max-heap, we want the earliest deadline on top.
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.at.cmp(&self.at).then(other.seq.cmp(&self.seq))
    }
}

/// Per-worker observability slot sampled by the watchdog.
struct WorkerSlot {
    /// Nanoseconds since runtime epoch when the current poll began;
    /// 0 when the worker is not inside a poll.
    poll_start_ns: AtomicU64,
    /// Monotonic poll counter (so a long poll is counted once, not once
    /// per watchdog tick).
    poll_seq: AtomicU64,
    /// Last poll_seq the watchdog counted as long (watchdog-private).
    counted_seq: AtomicU64,
    injected: bool,
}

#[derive(Default)]
struct RtStats {
    polls: AtomicU64,
    timer_fires: AtomicU64,
    worker_parks: AtomicU64,
    long_polls: AtomicU64,
    workers_injected: AtomicU64,
}

struct RuntimeInner {
    ready_tx: Sender<Arc<TaskCore>>,
    ready_rx: Receiver<Arc<TaskCore>>,
    epoch: Instant,
    base_workers: usize,
    workers_live: AtomicUsize,
    slots: Mutex<Vec<Arc<WorkerSlot>>>,
    timers: Mutex<BinaryHeap<TimerEntry>>,
    timer_cv: Condvar,
    timer_seq: AtomicU64,
    tasks_live: AtomicU64,
    shutdown: AtomicBool,
    stats: RtStats,
}

impl RuntimeInner {
    fn elapsed_ns(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64
    }

    fn enqueue(&self, core: Arc<TaskCore>) {
        let _ = self.ready_tx.send(core);
    }

    fn register_timer(&self, core: &Arc<TaskCore>, at: Instant) {
        {
            let mut armed = core.timer_armed.lock().unwrap_or_else(|e| e.into_inner());
            // An earlier-or-equal fire is already scheduled; it will wake
            // the task, which re-arms as needed.
            if matches!(*armed, Some(t) if t <= at) {
                return;
            }
            *armed = Some(at);
        }
        let mut heap = self.timers.lock().unwrap_or_else(|e| e.into_inner());
        heap.push(TimerEntry {
            at,
            seq: self.timer_seq.fetch_add(1, Ordering::Relaxed),
            core: Arc::clone(core),
        });
        self.timer_cv.notify_one();
    }

    fn run_task(self: &Arc<Self>, core: Arc<TaskCore>, slot: &WorkerSlot) {
        core.state.store(RUNNING, Ordering::Release);
        let waker = Waker::from(Arc::clone(&core));
        slot.poll_seq.fetch_add(1, Ordering::Relaxed);
        slot.poll_start_ns
            .store(self.elapsed_ns().max(1), Ordering::Relaxed);
        let mut cx = TaskContext {
            waker: &waker,
            timer: None,
        };
        let result = {
            let mut guard = core.task.lock();
            match guard.as_mut() {
                Some(task) => task.poll(&mut cx),
                None => TaskPoll::Complete,
            }
        };
        slot.poll_start_ns.store(0, Ordering::Relaxed);
        self.stats.polls.fetch_add(1, Ordering::Relaxed);
        match result {
            TaskPoll::Complete => {
                core.state.store(COMPLETE, Ordering::Release);
                // Drop the task object BEFORE signalling completion:
                // whoever waits must observe its resources released.
                let boxed = core.task.lock().take();
                drop(boxed);
                self.tasks_live.fetch_sub(1, Ordering::Relaxed);
                core.done.signal();
            }
            TaskPoll::Again => {
                core.state.store(SCHEDULED, Ordering::Release);
                self.enqueue(core);
            }
            TaskPoll::Pending => {
                if let Some(at) = cx.timer {
                    self.register_timer(&core, at);
                }
                if core
                    .state
                    .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    // A wake arrived mid-poll (NOTIFIED): requeue so the
                    // readiness event is not lost.
                    core.state.store(SCHEDULED, Ordering::Release);
                    self.enqueue(core);
                }
            }
        }
    }

    fn worker_loop(self: Arc<Self>, slot: Arc<WorkerSlot>) {
        let mut idle_strikes = 0u32;
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                break;
            }
            match self.ready_rx.recv_timeout(PARK_TIMEOUT) {
                Ok(core) => {
                    idle_strikes = 0;
                    self.run_task(core, &slot);
                }
                Err(RecvTimeoutError::Timeout) => {
                    self.stats.worker_parks.fetch_add(1, Ordering::Relaxed);
                    if slot.injected {
                        idle_strikes += 1;
                        if idle_strikes >= INJECTED_IDLE_STRIKES {
                            break;
                        }
                    }
                }
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        self.workers_live.fetch_sub(1, Ordering::Relaxed);
        self.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .retain(|s| !Arc::ptr_eq(s, &slot));
    }

    fn spawn_worker(self: &Arc<Self>, injected: bool) {
        let slot = Arc::new(WorkerSlot {
            poll_start_ns: AtomicU64::new(0),
            poll_seq: AtomicU64::new(0),
            counted_seq: AtomicU64::new(0),
            injected,
        });
        self.slots
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Arc::clone(&slot));
        self.workers_live.fetch_add(1, Ordering::Relaxed);
        let inner = Arc::clone(self);
        let name = if injected {
            "ace-rt-injected"
        } else {
            "ace-rt-worker"
        };
        std::thread::Builder::new()
            .name(name.into())
            .spawn(move || inner.worker_loop(slot))
            .expect("spawn runtime worker");
    }

    fn timer_loop(self: Arc<Self>) {
        let mut heap = self.timers.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let now = Instant::now();
            let mut due = Vec::new();
            while matches!(heap.peek(), Some(top) if top.at <= now) {
                due.push(heap.pop().expect("peeked entry"));
            }
            if !due.is_empty() {
                drop(heap);
                for entry in due {
                    {
                        let mut armed = entry
                            .core
                            .timer_armed
                            .lock()
                            .unwrap_or_else(|e| e.into_inner());
                        if *armed == Some(entry.at) {
                            *armed = None;
                        }
                        // A stale entry (task re-armed earlier) still wakes:
                        // spurious wakes are part of the contract.
                    }
                    self.stats.timer_fires.fetch_add(1, Ordering::Relaxed);
                    entry.core.notify();
                }
                heap = self.timers.lock().unwrap_or_else(|e| e.into_inner());
                continue;
            }
            let wait = match heap.peek() {
                Some(top) => top.at.saturating_duration_since(now),
                None => Duration::from_secs(1),
            };
            let (g, _) = self
                .timer_cv
                .wait_timeout(heap, wait)
                .unwrap_or_else(|e| e.into_inner());
            heap = g;
        }
    }

    fn watchdog_loop(self: Arc<Self>) {
        let long_poll_ns = LONG_POLL.as_nanos() as u64;
        loop {
            std::thread::sleep(WATCHDOG_TICK);
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            let slots: Vec<Arc<WorkerSlot>> =
                self.slots.lock().unwrap_or_else(|e| e.into_inner()).clone();
            if slots.is_empty() {
                continue;
            }
            let now_ns = self.elapsed_ns();
            let mut all_stuck = true;
            for slot in &slots {
                let start = slot.poll_start_ns.load(Ordering::Relaxed);
                let stuck = start != 0 && now_ns.saturating_sub(start) > long_poll_ns;
                if stuck {
                    let seq = slot.poll_seq.load(Ordering::Relaxed);
                    if slot.counted_seq.load(Ordering::Relaxed) != seq {
                        slot.counted_seq.store(seq, Ordering::Relaxed);
                        self.stats.long_polls.fetch_add(1, Ordering::Relaxed);
                    }
                } else {
                    all_stuck = false;
                }
            }
            // Every worker is wedged in a long poll while runnable tasks
            // wait: inject capacity so blocked daemon-to-daemon call
            // chains cannot deadlock the pool.
            if all_stuck
                && !self.ready_rx.is_empty()
                && self.workers_live.load(Ordering::Relaxed) < MAX_WORKERS
            {
                self.stats.workers_injected.fetch_add(1, Ordering::Relaxed);
                self.spawn_worker(true);
            }
        }
    }
}

/// The shared cooperative runtime: a clonable handle over the worker pool,
/// timer thread, and starvation watchdog.
#[derive(Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl Runtime {
    /// Build a runtime with `workers` base pool threads (min 1).
    pub fn new(workers: usize) -> Runtime {
        let workers = workers.clamp(1, MAX_WORKERS);
        let (ready_tx, ready_rx) = crossbeam_channel::unbounded();
        let inner = Arc::new(RuntimeInner {
            ready_tx,
            ready_rx,
            epoch: Instant::now(),
            base_workers: workers,
            workers_live: AtomicUsize::new(0),
            slots: Mutex::new(Vec::new()),
            timers: Mutex::new(BinaryHeap::new()),
            timer_cv: Condvar::new(),
            timer_seq: AtomicU64::new(0),
            tasks_live: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            stats: RtStats::default(),
        });
        for _ in 0..workers {
            inner.spawn_worker(false);
        }
        {
            let timer = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ace-rt-timer".into())
                .spawn(move || timer.timer_loop())
                .expect("spawn runtime timer");
        }
        {
            let dog = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("ace-rt-watchdog".into())
                .spawn(move || dog.watchdog_loop())
                .expect("spawn runtime watchdog");
        }
        Runtime { inner }
    }

    /// The process-wide runtime every `Daemon::spawn` in shared mode uses.
    /// Sized by `ACE_RUNTIME_WORKERS`, defaulting to the machine's
    /// available parallelism.
    pub fn global() -> &'static Runtime {
        static GLOBAL: OnceLock<Runtime> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let workers = std::env::var("ACE_RUNTIME_WORKERS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(4)
                });
            Runtime::new(workers)
        })
    }

    /// Spawn a task; it is immediately schedulable.
    pub fn spawn(&self, task: Box<dyn RuntimeTask>) -> TaskHandle {
        let core = Arc::new(TaskCore {
            state: AtomicU8::new(SCHEDULED),
            task: parking_lot::Mutex::new(Some(task)),
            rt: Arc::downgrade(&self.inner),
            timer_armed: Mutex::new(None),
            done: DoneFlag::default(),
        });
        self.inner.tasks_live.fetch_add(1, Ordering::Relaxed);
        self.inner.enqueue(Arc::clone(&core));
        TaskHandle { core }
    }

    /// Number of tasks spawned and not yet complete.
    pub fn tasks_live(&self) -> u64 {
        self.inner.tasks_live.load(Ordering::Relaxed)
    }

    /// Current worker-thread count (base + injected − retired).
    pub fn workers_live(&self) -> usize {
        self.inner.workers_live.load(Ordering::Relaxed)
    }

    /// Base pool size this runtime was built with.
    pub fn base_workers(&self) -> usize {
        self.inner.base_workers
    }

    /// Total long polls detected by the watchdog.
    pub fn long_polls(&self) -> u64 {
        self.inner.stats.long_polls.load(Ordering::Relaxed)
    }

    /// Total task polls executed.
    pub fn polls(&self) -> u64 {
        self.inner.stats.polls.load(Ordering::Relaxed)
    }

    /// Publish the `runtime.*` gauge family into `registry` (surfaced by
    /// every shared-mode daemon's `aceStats`).
    pub fn publish_into(&self, registry: &MetricsRegistry) {
        let s = &self.inner.stats;
        registry
            .gauge("runtime.tasksLive")
            .set(self.inner.tasks_live.load(Ordering::Relaxed) as i64);
        registry
            .gauge("runtime.readyQueue")
            .set(self.inner.ready_rx.len() as i64);
        registry
            .gauge("runtime.workers")
            .set(self.inner.workers_live.load(Ordering::Relaxed) as i64);
        registry
            .gauge("runtime.polls")
            .set(s.polls.load(Ordering::Relaxed) as i64);
        registry
            .gauge("runtime.timerFires")
            .set(s.timer_fires.load(Ordering::Relaxed) as i64);
        registry
            .gauge("runtime.workerParks")
            .set(s.worker_parks.load(Ordering::Relaxed) as i64);
        registry
            .gauge("runtime.longPolls")
            .set(s.long_polls.load(Ordering::Relaxed) as i64);
        registry
            .gauge("runtime.workersInjected")
            .set(s.workers_injected.load(Ordering::Relaxed) as i64);
    }
}

impl Drop for RuntimeInner {
    fn drop(&mut self) {
        // Only reached when every worker/timer/watchdog Arc is gone, i.e.
        // after shutdown; nothing to do, but keep the hook explicit.
    }
}

impl Runtime {
    /// Stop workers and service threads (test-local runtimes only; the
    /// global runtime lives for the process).  Parked tasks are abandoned.
    pub fn shutdown(&self) {
        self.inner.shutdown.store(true, Ordering::Relaxed);
        self.inner.timer_cv.notify_all();
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Runtime(workers: {}, tasks: {})",
            self.workers_live(),
            self.tasks_live()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountTo {
        n: u32,
        target: u32,
    }

    impl RuntimeTask for CountTo {
        fn poll(&mut self, _cx: &mut TaskContext<'_>) -> TaskPoll {
            self.n += 1;
            if self.n >= self.target {
                TaskPoll::Complete
            } else {
                TaskPoll::Again
            }
        }
    }

    #[test]
    fn again_reschedules_until_complete() {
        let rt = Runtime::new(2);
        let h = rt.spawn(Box::new(CountTo { n: 0, target: 5 }));
        assert!(h.wait(Duration::from_secs(5)));
        assert_eq!(rt.tasks_live(), 0);
        assert!(rt.polls() >= 5);
        rt.shutdown();
    }

    struct TimerTask {
        fired: Arc<AtomicBool>,
        at: Instant,
        armed: bool,
    }

    impl RuntimeTask for TimerTask {
        fn poll(&mut self, cx: &mut TaskContext<'_>) -> TaskPoll {
            if !self.armed {
                self.armed = true;
                cx.set_timer(self.at);
                return TaskPoll::Pending;
            }
            if Instant::now() >= self.at {
                self.fired.store(true, Ordering::SeqCst);
                TaskPoll::Complete
            } else {
                cx.set_timer(self.at);
                TaskPoll::Pending
            }
        }
    }

    #[test]
    fn timer_wakes_parked_task() {
        let rt = Runtime::new(1);
        let fired = Arc::new(AtomicBool::new(false));
        let h = rt.spawn(Box::new(TimerTask {
            fired: Arc::clone(&fired),
            at: Instant::now() + Duration::from_millis(30),
            armed: false,
        }));
        assert!(h.wait(Duration::from_secs(5)));
        assert!(fired.load(Ordering::SeqCst));
        rt.shutdown();
    }

    struct ParkUntilWoken {
        polls: Arc<AtomicU64>,
    }

    impl RuntimeTask for ParkUntilWoken {
        fn poll(&mut self, _cx: &mut TaskContext<'_>) -> TaskPoll {
            if self.polls.fetch_add(1, Ordering::SeqCst) == 0 {
                TaskPoll::Pending
            } else {
                TaskPoll::Complete
            }
        }
    }

    #[test]
    fn external_wake_unparks() {
        let rt = Runtime::new(1);
        let polls = Arc::new(AtomicU64::new(0));
        let h = rt.spawn(Box::new(ParkUntilWoken {
            polls: Arc::clone(&polls),
        }));
        // Let the first poll park it, then kick it.
        let deadline = Instant::now() + Duration::from_secs(5);
        while polls.load(Ordering::SeqCst) == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        h.wake();
        assert!(h.wait(Duration::from_secs(5)));
        assert_eq!(polls.load(Ordering::SeqCst), 2);
        rt.shutdown();
    }

    struct Staller;

    impl RuntimeTask for Staller {
        fn poll(&mut self, _cx: &mut TaskContext<'_>) -> TaskPoll {
            std::thread::sleep(LONG_POLL * 4);
            TaskPoll::Complete
        }
    }

    #[test]
    fn watchdog_counts_long_polls_and_injects() {
        let rt = Runtime::new(1);
        // One staller wedges the single worker; a second task must still
        // complete via an injected worker.
        let _s = rt.spawn(Box::new(Staller));
        let h = rt.spawn(Box::new(CountTo { n: 0, target: 1 }));
        assert!(h.wait(Duration::from_secs(10)));
        assert!(rt.long_polls() > 0, "long poll not detected");
        rt.shutdown();
    }

    #[test]
    fn publish_into_exposes_gauges() {
        let rt = Runtime::new(1);
        let h = rt.spawn(Box::new(CountTo { n: 0, target: 3 }));
        assert!(h.wait(Duration::from_secs(5)));
        let reg = MetricsRegistry::new();
        rt.publish_into(&reg);
        let snap = reg.snapshot();
        assert!(snap.gauges.contains_key("runtime.polls"));
        assert!(snap.gauges.contains_key("runtime.tasksLive"));
        assert!(snap.gauges.contains_key("runtime.readyQueue"));
        assert!(snap.gauges.contains_key("runtime.timerFires"));
        assert!(snap.gauges.contains_key("runtime.workerParks"));
        assert!(snap.gauges["runtime.polls"] >= 3);
        rt.shutdown();
    }
}
