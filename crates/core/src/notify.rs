//! ACE daemon notifications (§2.5, Fig. 8).
//!
//! "All ACE daemons have notification commands semantically and syntactically
//! defined for them … services keep a running list of all other ACE commands
//! that are being 'listened' for and all the ACE services that are to be
//! notified when such commands are executed."
//!
//! [`NotificationRegistry`] is that running list; [`Notifier`] is the
//! delivery worker that invokes the registered command interface on the
//! notified services without blocking the daemon's control thread.

use crate::client::ServiceClient;
use crate::metrics::{Counter, Gauge, Histogram, MetricsRegistry};
use crate::runtime::{RuntimeTask, TaskContext, TaskPoll};
use ace_lang::{CmdLine, DEADLINE_ARG};
use ace_net::{Addr, HostId, SimNet, WakeCell};
use ace_security::keys::KeyPair;
use crossbeam_channel::{Receiver, Sender, TryRecvError, TrySendError};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Per-call reply timeout for notification delivery.  Deliberately far
/// below the command plane's 30s reply timeout: a slow listener delays the
/// rest of the queue by at most this much.
const NOTIFY_CALL_TIMEOUT: Duration = Duration::from_secs(1);

/// Outbound queue bound.  A producer that outruns delivery (an event storm,
/// a partition stalling the worker on call timeouts) sheds the newest
/// messages — counted in `notify.shed` — instead of growing the queue, and
/// the daemon's memory, without limit.
const NOTIFY_QUEUE_CAPACITY: usize = 1024;

/// After a failed delivery the address sits in a negative cache this long;
/// messages to it are counted as drops instead of re-paying the connect or
/// call timeout for every queued message behind a dead subscriber.
const DEAD_BACKOFF: Duration = Duration::from_millis(250);

/// One registered listener: notify `service` at `addr` by invoking
/// `notify_cmd` when the watched command/event executes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Registration {
    pub service: String,
    pub addr: Addr,
    pub notify_cmd: String,
}

/// The per-daemon table of watched commands → listeners.
#[derive(Debug, Default)]
pub struct NotificationRegistry {
    by_cmd: HashMap<String, Vec<Registration>>,
}

impl NotificationRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a listener (idempotent per `(cmd, service)`; the newest
    /// address/notify command wins).
    pub fn add(&mut self, cmd: &str, registration: Registration) {
        let slot = self.by_cmd.entry(cmd.to_string()).or_default();
        if let Some(existing) = slot.iter_mut().find(|r| r.service == registration.service) {
            *existing = registration;
        } else {
            slot.push(registration);
        }
    }

    /// Remove a listener; `true` if something was removed.
    pub fn remove(&mut self, cmd: &str, service: &str) -> bool {
        if let Some(slot) = self.by_cmd.get_mut(cmd) {
            let before = slot.len();
            slot.retain(|r| r.service != service);
            let removed = slot.len() != before;
            if slot.is_empty() {
                self.by_cmd.remove(cmd);
            }
            removed
        } else {
            false
        }
    }

    /// Listeners for one command/event.
    pub fn listeners(&self, cmd: &str) -> &[Registration] {
        self.by_cmd.get(cmd).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total number of registrations.
    pub fn len(&self) -> usize {
        self.by_cmd.values().map(Vec::len).sum()
    }

    /// `true` if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.by_cmd.is_empty()
    }

    /// Every registration as `(watched_cmd, registration)` rows, sorted for
    /// determinism — a live upgrade exports these so the replacement
    /// incarnation keeps notifying the same listeners.
    pub fn export(&self) -> Vec<(String, Registration)> {
        let mut out: Vec<(String, Registration)> = self
            .by_cmd
            .iter()
            .flat_map(|(cmd, regs)| regs.iter().map(move |r| (cmd.clone(), r.clone())))
            .collect();
        out.sort_by(|a, b| (&a.0, &a.1.service).cmp(&(&b.0, &b.1.service)));
        out
    }

    /// Build the notification command sent to a listener: the registered
    /// `notifyCmd` carrying provenance (`service`, `cmd`) plus the executed
    /// command's own arguments (skipping any that would collide).
    pub fn notification_cmd(
        registration: &Registration,
        origin_service: &str,
        executed: &CmdLine,
    ) -> CmdLine {
        let mut out = CmdLine::new(registration.notify_cmd.clone())
            .arg("service", origin_service)
            .arg("cmd", executed.name());
        for (name, value) in executed.args() {
            // The executed command's `deadline=` was the *caller's* budget;
            // propagating it would expire notifications that are delivered
            // after the original call returned.
            if name != "service" && name != "cmd" && name != DEADLINE_ARG {
                out.push_arg(name.clone(), value.clone());
            }
        }
        out
    }
}

/// One queued outbound message.
#[derive(Debug)]
pub struct Outbound {
    pub addr: Addr,
    pub cmd: CmdLine,
}

/// Asynchronous outbound delivery: a worker (its own thread in the
/// thread-per-daemon runtime, a cooperative task on the shared runtime)
/// with a connection cache.
///
/// Used for notifications and fire-and-forget logging so the control plane
/// never blocks on a slow or dead listener.
pub struct Notifier {
    /// `Option` so `Drop` can release the sender *before* waking the
    /// cooperative delivery task — otherwise the task would observe a
    /// still-connected channel and miss the disconnect.
    tx: Option<Sender<Outbound>>,
    shed: Arc<Counter>,
    wake: Option<Arc<WakeCell>>,
}

/// Handle used to join the worker on shutdown.
pub struct NotifierWorker {
    join: std::thread::JoinHandle<()>,
}

impl Notifier {
    /// Spawn the delivery worker on its own thread.  Delivery outcomes are
    /// recorded in `metrics` (`notify.delivered`, `notify.drops`,
    /// `notify.shed`, `notify.latency`, `notify.queueDepth`).
    pub fn spawn(
        net: SimNet,
        from_host: HostId,
        identity: Arc<KeyPair>,
        metrics: Arc<MetricsRegistry>,
    ) -> (Notifier, NotifierWorker) {
        let (tx, rx) = crossbeam_channel::bounded::<Outbound>(NOTIFY_QUEUE_CAPACITY);
        let shed = metrics.counter("notify.shed");
        let join = std::thread::Builder::new()
            .name(format!("notifier-{from_host}"))
            .spawn(move || deliver_loop(rx, net, from_host, identity, metrics))
            .expect("spawn notifier thread");
        (
            Notifier {
                tx: Some(tx),
                shed,
                wake: None,
            },
            NotifierWorker { join },
        )
    }

    /// Build a cooperative delivery worker for the shared runtime: same
    /// queue bound, shed accounting, and dead-listener cache as
    /// [`Notifier::spawn`], but the returned [`NotifierTask`] must be
    /// spawned on a [`crate::runtime::Runtime`] instead of a thread.
    pub fn cooperative(
        net: SimNet,
        from_host: HostId,
        identity: Arc<KeyPair>,
        metrics: Arc<MetricsRegistry>,
    ) -> (Notifier, NotifierTask) {
        let (tx, rx) = crossbeam_channel::bounded::<Outbound>(NOTIFY_QUEUE_CAPACITY);
        let shed = metrics.counter("notify.shed");
        let wake = Arc::new(WakeCell::new());
        let task = NotifierTask {
            rx,
            wake: Arc::clone(&wake),
            state: DeliveryState::new(&metrics),
            net,
            from_host,
            identity,
        };
        (
            Notifier {
                tx: Some(tx),
                shed,
                wake: Some(wake),
            },
            task,
        )
    }

    /// Queue one message for delivery.  Returns `false` if the worker has
    /// stopped or the queue is full (the message is shed, never blocking
    /// the caller — typically the daemon's control thread).
    pub fn send(&self, addr: Addr, cmd: CmdLine) -> bool {
        let Some(tx) = &self.tx else { return false };
        match tx.try_send(Outbound { addr, cmd }) {
            Ok(()) => {
                if let Some(wake) = &self.wake {
                    wake.wake();
                }
                true
            }
            Err(TrySendError::Full(_)) => {
                self.shed.incr();
                false
            }
            Err(TrySendError::Disconnected(_)) => false,
        }
    }
}

impl Clone for Notifier {
    fn clone(&self) -> Self {
        Notifier {
            tx: self.tx.clone(),
            shed: Arc::clone(&self.shed),
            wake: self.wake.clone(),
        }
    }
}

impl Drop for Notifier {
    fn drop(&mut self) {
        // Release our sender first, then wake: when this was the last
        // clone, the cooperative task's next poll observes the disconnect
        // and completes.
        self.tx.take();
        if let Some(wake) = &self.wake {
            wake.wake();
        }
    }
}

impl NotifierWorker {
    /// Wait for the worker to drain and stop (all `Notifier` clones must be
    /// dropped first).
    pub fn join(self) {
        let _ = self.join.join();
    }
}

/// Per-poll delivery cap for the cooperative worker: after this many
/// messages the task yields (`TaskPoll::Again`) so one storming daemon's
/// notifications cannot monopolize a shared-runtime worker.
const NOTIFY_BATCH: usize = 64;

/// The delivery machinery shared by the threaded `deliver_loop` and the
/// cooperative [`NotifierTask`]: connection cache, dead-listener negative
/// cache, and delivery metrics.
struct DeliveryState {
    delivered: Arc<Counter>,
    drops: Arc<Counter>,
    latency: Arc<Histogram>,
    depth: Arc<Gauge>,
    clients: HashMap<Addr, ServiceClient>,
    // Negative cache of recently unreachable listeners.  Without it, a dead
    // subscriber makes every queued message behind it re-pay the failed
    // connect (and under partitions, the full call timeout) — head-of-line
    // blocking that stalls fan-out to the healthy subscribers.
    dead: HashMap<Addr, Instant>,
}

impl DeliveryState {
    fn new(metrics: &MetricsRegistry) -> Self {
        DeliveryState {
            delivered: metrics.counter("notify.delivered"),
            drops: metrics.counter("notify.drops"),
            latency: metrics.histogram("notify.latency"),
            depth: metrics.gauge("notify.queueDepth"),
            clients: HashMap::new(),
            dead: HashMap::new(),
        }
    }

    fn handle(&mut self, out: Outbound, net: &SimNet, from_host: &HostId, identity: &KeyPair) {
        if let Some(since) = self.dead.get(&out.addr) {
            if since.elapsed() < DEAD_BACKOFF {
                self.drops.incr();
                return;
            }
            self.dead.remove(&out.addr);
        }
        let started = Instant::now();
        if deliver_one(&mut self.clients, net, from_host, identity, &out) {
            self.delivered.incr();
            self.latency.record(started.elapsed());
        } else {
            // The drop is counted, never silent: `aceStats` and the periodic
            // stats events expose `notify.drops` on the originating daemon.
            self.drops.incr();
            self.dead.insert(out.addr.clone(), Instant::now());
        }
    }
}

/// Cooperative delivery worker for the shared runtime; see
/// [`Notifier::cooperative`].
pub struct NotifierTask {
    rx: Receiver<Outbound>,
    wake: Arc<WakeCell>,
    state: DeliveryState,
    net: SimNet,
    from_host: HostId,
    identity: Arc<KeyPair>,
}

impl RuntimeTask for NotifierTask {
    fn poll(&mut self, cx: &mut TaskContext<'_>) -> TaskPoll {
        // Register before draining: a send that lands between the last
        // `try_recv` and the return would otherwise be a lost wakeup.
        self.wake.register(cx.waker());
        let mut handled = 0usize;
        loop {
            match self.rx.try_recv() {
                Ok(out) => {
                    self.state.depth.set(self.rx.len() as i64);
                    self.state
                        .handle(out, &self.net, &self.from_host, &self.identity);
                    handled += 1;
                    if handled >= NOTIFY_BATCH {
                        return TaskPoll::Again;
                    }
                }
                Err(TryRecvError::Empty) => return TaskPoll::Pending,
                Err(TryRecvError::Disconnected) => return TaskPoll::Complete,
            }
        }
    }
}

fn deliver_loop(
    rx: Receiver<Outbound>,
    net: SimNet,
    from_host: HostId,
    identity: Arc<KeyPair>,
    metrics: Arc<MetricsRegistry>,
) {
    let mut state = DeliveryState::new(&metrics);
    while let Ok(out) = rx.recv() {
        state.depth.set(rx.len() as i64);
        state.handle(out, &net, &from_host, &identity);
    }
}

fn deliver_one(
    clients: &mut HashMap<Addr, ServiceClient>,
    net: &SimNet,
    from_host: &HostId,
    identity: &KeyPair,
    out: &Outbound,
) -> bool {
    // Try a cached connection first; on failure reconnect once.  Delivery is
    // best-effort: a dead listener loses its notification (the paper's
    // registry similarly cannot promise delivery to crashed services).
    for attempt in 0..2 {
        if !clients.contains_key(&out.addr) {
            match ServiceClient::connect(net, from_host, out.addr.clone(), identity) {
                Ok(mut c) => {
                    c.set_timeout(NOTIFY_CALL_TIMEOUT);
                    clients.insert(out.addr.clone(), c);
                }
                Err(_) => return false,
            }
        }
        let client = clients.get_mut(&out.addr).expect("just inserted");
        match client.call(&out.cmd) {
            Ok(_) => return true,
            Err(crate::client::ClientError::Service { .. }) => return true, // delivered, listener declined
            Err(crate::client::ClientError::Link(_)) => {
                clients.remove(&out.addr);
                if attempt == 1 {
                    return false;
                }
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg(service: &str, port: u16) -> Registration {
        Registration {
            service: service.into(),
            addr: Addr::new("h", port),
            notify_cmd: format!("on_{service}"),
        }
    }

    #[test]
    fn add_and_match() {
        let mut r = NotificationRegistry::new();
        r.add("ptzMove", reg("recorder", 1));
        r.add("ptzMove", reg("tracker", 2));
        r.add("ptzOn", reg("recorder", 1));
        assert_eq!(r.listeners("ptzMove").len(), 2);
        assert_eq!(r.listeners("ptzOn").len(), 1);
        assert_eq!(r.listeners("other").len(), 0);
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn re_add_replaces() {
        let mut r = NotificationRegistry::new();
        r.add("c", reg("s", 1));
        r.add("c", reg("s", 9));
        assert_eq!(r.listeners("c").len(), 1);
        assert_eq!(r.listeners("c")[0].addr.port, 9);
    }

    #[test]
    fn remove_works() {
        let mut r = NotificationRegistry::new();
        r.add("c", reg("s1", 1));
        r.add("c", reg("s2", 2));
        assert!(r.remove("c", "s1"));
        assert!(!r.remove("c", "s1"));
        assert_eq!(r.listeners("c").len(), 1);
        assert!(r.remove("c", "s2"));
        assert!(r.is_empty());
    }

    #[test]
    fn notification_cmd_carries_provenance_and_args() {
        let registration = reg("recorder", 1);
        let executed = CmdLine::new("ptzMove").arg("x", 3).arg("service", "spoof");
        let n = NotificationRegistry::notification_cmd(&registration, "cam1", &executed);
        assert_eq!(n.name(), "on_recorder");
        assert_eq!(n.get_text("service"), Some("cam1")); // provenance wins
        assert_eq!(n.get_text("cmd"), Some("ptzMove"));
        assert_eq!(n.get_int("x"), Some(3));
    }

    #[test]
    fn notification_cmd_strips_caller_deadline() {
        let registration = reg("recorder", 1);
        let mut executed = CmdLine::new("ptzMove").arg("x", 3);
        executed.set_deadline_ms(25);
        let n = NotificationRegistry::notification_cmd(&registration, "cam1", &executed);
        assert_eq!(n.deadline_ms(), None, "caller budget must not propagate");
        assert_eq!(n.get_int("x"), Some(3));
    }
}
