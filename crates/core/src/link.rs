//! Secure command links: the encrypted, authenticated sockets all ACE
//! daemon traffic flows over.
//!
//! "The daemon provides a structure for encrypted and certified socket
//! communications" (§2.1).  A [`SecureLink`] wraps a raw [`Connection`] with:
//!
//! 1. a Diffie–Hellman handshake (plaintext `hello dh=<hex>;` in each
//!    direction) establishing per-direction session keys,
//! 2. proof of identity: the client signs the handshake transcript with its
//!    RSA key and sends `auth principal=… proof=…;` sealed — so the server
//!    knows *which principal* is issuing commands (the input to KeyNote),
//! 3. sealed frames for every subsequent command/reply.
//!
//! # Session resumption (the connection fast path)
//!
//! A full handshake costs a DH exchange plus an RSA transcript signature.
//! When the server holds a [`TicketVault`], the sealed `ok` it sends at the
//! end of a full handshake also carries a resumption ticket; both sides
//! independently derive the ticket's master key from the handshake secret
//! (it never travels).  A client holding a cached ticket reconnects with a
//! single plaintext `resume ticket=… nonce=… mac=…;` frame: the MAC proves
//! possession of the master key, the server-side single-use nonce check
//! makes replay impossible, and both sides derive fresh per-direction
//! session keys from the nonce.  The server's *sealed* `ok` reply proves it
//! too holds the master key, restoring mutual authentication without any
//! public-key operation.  On any rejection (restarted server, expired
//! ticket, bad proof) the server answers with a plaintext `reject …;` and
//! the client transparently falls back to the full handshake on the same
//! connection.

use crate::metrics::Counter;
use ace_lang::{CmdLine, Value};
use ace_net::{Addr, Connection, NetError};
use ace_security::cipher::{DhLocal, SecureChannel, SessionKey};
use ace_security::keys::{KeyPair, PublicKey, Signature};
use ace_security::ticket::{resume_proof, ResumptionTicket};
use parking_lot::Mutex;
use rand::Rng;
use std::collections::{HashMap, HashSet, VecDeque};
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Errors establishing or using a secure link.
#[derive(Debug)]
pub enum LinkError {
    Net(NetError),
    /// Frame failed to decrypt/authenticate.
    Seal(ace_security::cipher::SealError),
    /// A frame was not valid UTF-8 or not a parseable command.
    Malformed(String),
    /// Handshake violated the protocol.
    Handshake(String),
    /// The client's identity proof did not verify.
    BadIdentity(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Net(e) => write!(f, "network: {e}"),
            LinkError::Seal(e) => write!(f, "seal: {e}"),
            LinkError::Malformed(m) => write!(f, "malformed frame: {m}"),
            LinkError::Handshake(m) => write!(f, "handshake: {m}"),
            LinkError::BadIdentity(m) => write!(f, "identity: {m}"),
        }
    }
}
impl std::error::Error for LinkError {}

impl From<NetError> for LinkError {
    fn from(e: NetError) -> Self {
        LinkError::Net(e)
    }
}

/// Direction labels for per-direction key derivation.
const DIR_CLIENT_TO_SERVER: u64 = 0xC15;
const DIR_SERVER_TO_CLIENT: u64 = 0x5C1;
/// Label under which the resumption master key is derived from a handshake
/// session key (mixed with the ticket id, so every ticket has its own
/// master).
const RESUME_MASTER_LABEL: u64 = 0x7e5a_11e7;

fn resume_master(handshake_key: &SessionKey, ticket_id: u64) -> SessionKey {
    handshake_key.derive(RESUME_MASTER_LABEL ^ ticket_id)
}

// ---------------------------------------------------------------------------
// Server-side ticket vault
// ---------------------------------------------------------------------------

/// Most live tickets a vault retains; oldest are evicted beyond this.
const VAULT_CAP: usize = 4096;
/// Most nonces remembered per ticket; a ticket that busy is retired rather
/// than risking an unbounded replay set.
const NONCES_PER_TICKET_CAP: usize = 1024;

struct VaultEntry {
    master: SessionKey,
    client_principal: String,
    expires: Instant,
    used_nonces: HashSet<u64>,
}

/// The server side of session resumption: every ticket this daemon has
/// issued and not yet expired, with its single-use nonce history.  Shared
/// (behind `Arc`) across all command threads of a daemon; a restarted
/// daemon starts with an empty vault, which is exactly why clients fall
/// back transparently.
pub struct TicketVault {
    ttl: Duration,
    inner: Mutex<VaultInner>,
}

struct VaultInner {
    entries: HashMap<u64, VaultEntry>,
    order: VecDeque<u64>,
}

impl TicketVault {
    /// A vault granting tickets of the given lifetime.
    pub fn new(ttl: Duration) -> TicketVault {
        TicketVault {
            ttl,
            inner: Mutex::new(VaultInner {
                entries: HashMap::new(),
                order: VecDeque::new(),
            }),
        }
    }

    /// The production default (30 s, matching the ASD's default lease).
    pub fn with_default_ttl() -> TicketVault {
        TicketVault::new(Duration::from_secs(30))
    }

    /// Granted ticket lifetime.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Live (unexpired) tickets.
    pub fn len(&self) -> usize {
        let now = Instant::now();
        self.inner
            .lock()
            .entries
            .values()
            .filter(|e| e.expires > now)
            .count()
    }

    /// Is the vault empty of live tickets?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mint a ticket id and remember its master key (computed by
    /// `make_master` from the chosen id, since the key derivation mixes the
    /// id in).  Called at the end of a full handshake; expired and over-cap
    /// entries are purged here so the vault stays bounded without a sweeper
    /// thread.
    fn issue(
        &self,
        client_principal: String,
        rng: &mut impl Rng,
        make_master: impl FnOnce(u64) -> SessionKey,
    ) -> u64 {
        let mut guard = self.inner.lock();
        let VaultInner { entries, order } = &mut *guard;
        let now = Instant::now();
        order.retain(|id| {
            let keep = entries.get(id).is_some_and(|entry| entry.expires > now);
            if !keep {
                entries.remove(id);
            }
            keep
        });
        while entries.len() >= VAULT_CAP {
            match order.pop_front() {
                Some(old) => {
                    entries.remove(&old);
                }
                None => break,
            }
        }
        let mut id: u64 = rng.gen();
        while entries.contains_key(&id) {
            id = rng.gen();
        }
        entries.insert(
            id,
            VaultEntry {
                master: make_master(id),
                client_principal,
                expires: now + self.ttl,
                used_nonces: HashSet::new(),
            },
        );
        order.push_back(id);
        id
    }

    /// Validate one resume attempt.  Success consumes the nonce (single
    /// use); the ticket itself stays valid until its TTL.
    fn redeem(&self, id: u64, nonce: u64, mac: u64) -> Result<(SessionKey, String), &'static str> {
        let mut inner = self.inner.lock();
        let entry = inner.entries.get_mut(&id).ok_or("unknown ticket")?;
        if entry.expires <= Instant::now() {
            return Err("ticket expired");
        }
        if resume_proof(&entry.master, id, nonce) != mac {
            return Err("bad possession proof");
        }
        if entry.used_nonces.len() >= NONCES_PER_TICKET_CAP {
            return Err("ticket nonce budget exhausted");
        }
        if !entry.used_nonces.insert(nonce) {
            return Err("nonce replayed");
        }
        Ok((entry.master, entry.client_principal.clone()))
    }

    /// Drop every ticket — test hook simulating the state loss of a daemon
    /// restart without tearing down the listener.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.entries.clear();
        inner.order.clear();
    }
}

impl fmt::Debug for TicketVault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TicketVault(ttl: {:?}, live: {})", self.ttl, self.len())
    }
}

// ---------------------------------------------------------------------------
// Client-side ticket cache
// ---------------------------------------------------------------------------

/// The client side of session resumption: one cached ticket (and locally
/// derived master key) per target address.  Shareable across clients and a
/// [`crate::pool::LinkPool`].
#[derive(Default)]
pub struct TicketCache {
    inner: Mutex<HashMap<Addr, CachedTicket>>,
}

#[derive(Clone)]
struct CachedTicket {
    ticket: ResumptionTicket,
    master: SessionKey,
    expires: Instant,
}

impl TicketCache {
    pub fn new() -> TicketCache {
        TicketCache::default()
    }

    /// Cache a ticket for `target`.  The client-side expiry honours the
    /// server-granted TTL; a slightly stale cache is harmless because the
    /// server re-checks and the client falls back.
    pub fn store(&self, target: &Addr, ticket: ResumptionTicket, master: SessionKey) {
        let expires = Instant::now() + Duration::from_millis(ticket.ttl_ms);
        self.inner.lock().insert(
            target.clone(),
            CachedTicket {
                ticket,
                master,
                expires,
            },
        );
    }

    /// The unexpired ticket for `target`, if any.
    pub fn get(&self, target: &Addr) -> Option<(ResumptionTicket, SessionKey)> {
        let mut inner = self.inner.lock();
        match inner.get(target) {
            Some(c) if c.expires > Instant::now() => Some((c.ticket.clone(), c.master)),
            Some(_) => {
                inner.remove(target);
                None
            }
            None => None,
        }
    }

    /// Forget the ticket for `target` (after a rejection).
    pub fn invalidate(&self, target: &Addr) {
        self.inner.lock().remove(target);
    }

    /// Cached (possibly expired) tickets.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

impl fmt::Debug for TicketCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TicketCache({} targets)", self.len())
    }
}

// ---------------------------------------------------------------------------
// The link itself
// ---------------------------------------------------------------------------

/// An established, encrypted, identity-carrying command channel.
pub struct SecureLink {
    conn: Connection,
    tx: SecureChannel,
    rx: SecureChannel,
    /// The authenticated principal of the *peer*.
    peer_principal: String,
    /// Did this link skip the full handshake via a resumption ticket?
    resumed: bool,
    /// Optional byte counters (sealed-out / opened-in), fed per frame.
    sealed_bytes: Option<Arc<Counter>>,
    opened_bytes: Option<Arc<Counter>>,
}

impl SecureLink {
    /// Client side: handshake and prove identity with `identity`.
    pub fn connect(conn: Connection, identity: &KeyPair) -> Result<SecureLink, LinkError> {
        Self::full_connect(conn, identity, None)
    }

    /// Client side with the fast path: try to resume from a cached ticket,
    /// transparently falling back to (and re-priming the cache from) the
    /// full handshake when the server rejects or no ticket is cached.
    pub fn connect_resumable(
        conn: Connection,
        identity: &KeyPair,
        tickets: &TicketCache,
    ) -> Result<SecureLink, LinkError> {
        let target = conn.peer_addr().clone();
        let Some((ticket, master)) = tickets.get(&target) else {
            return Self::full_connect(conn, identity, Some(tickets));
        };

        let nonce: u64 = rand::thread_rng().gen();
        let mac = resume_proof(&master, ticket.id, nonce);
        let resume = CmdLine::new("resume")
            .arg("ticket", hex_word(ticket.id))
            .arg("nonce", hex_word(nonce))
            .arg("mac", hex_word(mac));
        conn.send(resume.to_wire().into_bytes())?;

        let session = master.derive(nonce);
        let mut rx = SecureChannel::new(session.derive(DIR_SERVER_TO_CLIENT));
        let mut frame = conn.recv_timeout(HANDSHAKE_TIMEOUT)?;
        match rx.open_in_place(&mut frame) {
            Ok(()) => {
                // Sealed reply: the server proved possession of the master
                // key.  Mutual authentication is restored.
                let text = std::str::from_utf8(&frame)
                    .map_err(|_| LinkError::Malformed("frame not UTF-8".into()))?;
                let reply =
                    CmdLine::parse(text).map_err(|e| LinkError::Malformed(e.to_string()))?;
                if reply.name() != "ok" {
                    return Err(LinkError::Handshake(format!(
                        "resume answered with `{}`",
                        reply.name()
                    )));
                }
                Ok(SecureLink {
                    conn,
                    tx: SecureChannel::new(session.derive(DIR_CLIENT_TO_SERVER)),
                    rx,
                    peer_principal: reply
                        .get_text("principal")
                        .unwrap_or(&ticket.server_principal)
                        .to_string(),
                    resumed: true,
                    sealed_bytes: None,
                    opened_bytes: None,
                })
            }
            Err(_) => {
                // Not sealed for us: either a plaintext `reject …;` (fall
                // back to the full handshake) or garbage (fail).
                let text = std::str::from_utf8(&frame)
                    .map_err(|_| LinkError::Malformed("resume reply not UTF-8".into()))?;
                let reply =
                    CmdLine::parse(text).map_err(|e| LinkError::Malformed(e.to_string()))?;
                if reply.name() != "reject" {
                    return Err(LinkError::Handshake(format!(
                        "resume answered with `{}`",
                        reply.name()
                    )));
                }
                tickets.invalidate(&target);
                Self::full_connect(conn, identity, Some(tickets))
            }
        }
    }

    /// The full (DH + signature) client handshake; harvests a fresh
    /// resumption ticket into `tickets` when the server grants one.
    fn full_connect(
        conn: Connection,
        identity: &KeyPair,
        tickets: Option<&TicketCache>,
    ) -> Result<SecureLink, LinkError> {
        let mut rng = rand::thread_rng();
        let dh = DhLocal::generate(&mut rng);
        let hello = CmdLine::new("hello").arg("dh", hex_word(dh.public()));
        conn.send(hello.to_wire().into_bytes())?;

        let peer_hello = recv_plain(&conn, HANDSHAKE_TIMEOUT)?;
        let peer_pub = parse_hello(&peer_hello)?;
        let key = dh.agree(peer_pub);

        let mut link = SecureLink {
            conn,
            tx: SecureChannel::new(key.derive(DIR_CLIENT_TO_SERVER)),
            rx: SecureChannel::new(key.derive(DIR_SERVER_TO_CLIENT)),
            peer_principal: String::new(),
            resumed: false,
            sealed_bytes: None,
            opened_bytes: None,
        };

        // Prove identity: sign the DH transcript.
        let transcript = transcript(dh.public(), peer_pub);
        let proof = identity.sign(transcript.as_bytes());
        let auth = CmdLine::new("auth")
            .arg("principal", Value::Str(identity.principal()))
            .arg("proof", Value::Str(proof.to_wire()));
        link.send_cmd(&auth)?;

        let reply = link.recv_cmd(HANDSHAKE_TIMEOUT)?;
        match reply.name() {
            "ok" => {
                link.peer_principal = reply.get_text("principal").unwrap_or("").to_string();
                if let Some(tickets) = tickets {
                    if let Some(ticket) = reply
                        .get_text("ticket")
                        .and_then(ResumptionTicket::from_wire)
                    {
                        let master = resume_master(&key, ticket.id);
                        tickets.store(link.conn.peer_addr(), ticket, master);
                    }
                }
                Ok(link)
            }
            other => Err(LinkError::Handshake(format!(
                "server rejected handshake with `{other}`"
            ))),
        }
    }

    /// Server side: handshake, verify the client's identity proof, and
    /// answer with our own principal.
    pub fn accept(conn: Connection, identity: &KeyPair) -> Result<SecureLink, LinkError> {
        Self::accept_inner(conn, identity, None)
    }

    /// Server side with the fast path: honour `resume` attempts against
    /// `vault`, reject invalid ones (sending a plaintext `reject …;` and
    /// waiting for the client's fallback `hello`), and issue a fresh ticket
    /// with every full handshake.
    pub fn accept_with_tickets(
        conn: Connection,
        identity: &KeyPair,
        vault: &TicketVault,
    ) -> Result<SecureLink, LinkError> {
        Self::accept_inner(conn, identity, Some(vault))
    }

    fn accept_inner(
        conn: Connection,
        identity: &KeyPair,
        vault: Option<&TicketVault>,
    ) -> Result<SecureLink, LinkError> {
        let mut first = recv_plain(&conn, HANDSHAKE_TIMEOUT)?;

        if first.name() == "resume" {
            let Some(vault) = vault else {
                return Err(LinkError::Handshake(
                    "resume offered but resumption is not enabled".into(),
                ));
            };
            let parsed = (
                parse_hex_arg(&first, "ticket"),
                parse_hex_arg(&first, "nonce"),
                parse_hex_arg(&first, "mac"),
            );
            let verdict = match parsed {
                (Some(id), Some(nonce), Some(mac)) => vault
                    .redeem(id, nonce, mac)
                    .map(|(master, principal)| (master.derive(nonce), principal)),
                _ => Err("malformed resume frame"),
            };
            match verdict {
                Ok((session, client_principal)) => {
                    let mut link = SecureLink {
                        conn,
                        tx: SecureChannel::new(session.derive(DIR_SERVER_TO_CLIENT)),
                        rx: SecureChannel::new(session.derive(DIR_CLIENT_TO_SERVER)),
                        peer_principal: client_principal,
                        resumed: true,
                        sealed_bytes: None,
                        opened_bytes: None,
                    };
                    // Sealed under the nonce-derived key: proves *we* hold
                    // the master too.
                    let ok = CmdLine::new("ok")
                        .arg("principal", Value::Str(identity.principal()))
                        .arg("resumed", 1);
                    link.send_cmd(&ok)?;
                    return Ok(link);
                }
                Err(reason) => {
                    let reject =
                        CmdLine::new("reject").arg("reason", Value::Str(reason.to_string()));
                    conn.send(reject.to_wire().into_bytes())?;
                    // The client falls back to a full handshake on the same
                    // connection; its `hello` is the next frame.
                    first = recv_plain(&conn, HANDSHAKE_TIMEOUT)?;
                }
            }
        }

        let peer_pub = parse_hello(&first)?;

        let mut rng = rand::thread_rng();
        let dh = DhLocal::generate(&mut rng);
        let hello = CmdLine::new("hello").arg("dh", hex_word(dh.public()));
        conn.send(hello.to_wire().into_bytes())?;
        let key = dh.agree(peer_pub);

        let mut link = SecureLink {
            conn,
            tx: SecureChannel::new(key.derive(DIR_SERVER_TO_CLIENT)),
            rx: SecureChannel::new(key.derive(DIR_CLIENT_TO_SERVER)),
            peer_principal: String::new(),
            resumed: false,
            sealed_bytes: None,
            opened_bytes: None,
        };

        let auth = link.recv_cmd(HANDSHAKE_TIMEOUT)?;
        if auth.name() != "auth" {
            return Err(LinkError::Handshake(format!(
                "expected `auth`, got `{}`",
                auth.name()
            )));
        }
        let principal = auth
            .get_text("principal")
            .ok_or_else(|| LinkError::Handshake("auth without principal".into()))?
            .to_string();
        let proof = auth
            .get_text("proof")
            .and_then(Signature::from_wire)
            .ok_or_else(|| LinkError::Handshake("auth without proof".into()))?;
        let key_of_peer = PublicKey::from_principal(&principal)
            .ok_or_else(|| LinkError::BadIdentity(format!("unparseable principal {principal}")))?;
        // The client signed (client_dh, server_dh) — from its perspective
        // its own key came first.
        let transcript = transcript(peer_pub, dh.public());
        if !key_of_peer.verify(transcript.as_bytes(), proof) {
            return Err(LinkError::BadIdentity(format!(
                "identity proof for {principal} failed"
            )));
        }
        link.peer_principal = principal.clone();

        let mut ok = CmdLine::new("ok").arg("principal", Value::Str(identity.principal()));
        if let Some(vault) = vault {
            let id = vault.issue(principal.clone(), &mut rng, |id| resume_master(&key, id));
            let ticket = ResumptionTicket {
                id,
                ttl_ms: vault.ttl().as_millis() as u64,
                client_principal: principal,
                server_principal: identity.principal(),
            };
            ok.push_arg("ticket", Value::Str(ticket.to_wire()));
        }
        link.send_cmd(&ok)?;
        Ok(link)
    }

    /// The authenticated principal on the far side.
    pub fn peer_principal(&self) -> &str {
        &self.peer_principal
    }

    /// Did this link skip the full handshake via a resumption ticket?
    pub fn resumed(&self) -> bool {
        self.resumed
    }

    /// The far side's network address.
    pub fn peer_addr(&self) -> &ace_net::Addr {
        self.conn.peer_addr()
    }

    /// Is this (idle) link still worth reusing?  See
    /// [`Connection::is_healthy_idle`] for the exact contract.
    pub fn is_healthy_idle(&self) -> bool {
        self.conn.is_healthy_idle()
    }

    /// Count every sealed (outbound) and opened (inbound) frame's bytes on
    /// the given counters — typically a daemon's `link.sealedBytes` /
    /// `link.openedBytes` metrics.
    pub fn attach_metrics(&mut self, sealed: Arc<Counter>, opened: Arc<Counter>) {
        self.sealed_bytes = Some(sealed);
        self.opened_bytes = Some(opened);
    }

    /// Seal and send one command.  One allocation end-to-end: the wire
    /// rendering is encrypted in place and handed to the connection by
    /// ownership (frames move through channels, they are never re-copied).
    pub fn send_cmd(&mut self, cmd: &CmdLine) -> Result<(), LinkError> {
        let mut frame = cmd.to_wire().into_bytes();
        self.tx.seal_in_place(&mut frame);
        if let Some(c) = &self.sealed_bytes {
            c.add(frame.len() as u64);
        }
        self.conn.send(frame)?;
        Ok(())
    }

    /// Receive, open, and parse one command.  The received frame is
    /// decrypted in place — no ciphertext copy on the hot path.
    pub fn recv_cmd(&mut self, timeout: Duration) -> Result<CmdLine, LinkError> {
        let frame = self.conn.recv_timeout(timeout)?;
        self.open_frame(frame)
    }

    /// Non-blocking receive for reactor consumers: `Ok(None)` when no frame
    /// is queued, errors on close/tamper exactly like [`Self::recv_cmd`].
    pub fn try_recv_cmd(&mut self) -> Result<Option<CmdLine>, LinkError> {
        match self.conn.try_recv()? {
            Some(frame) => self.open_frame(frame).map(Some),
            None => Ok(None),
        }
    }

    fn open_frame(&mut self, mut frame: Vec<u8>) -> Result<CmdLine, LinkError> {
        if let Some(c) = &self.opened_bytes {
            c.add(frame.len() as u64);
        }
        self.rx.open_in_place(&mut frame).map_err(LinkError::Seal)?;
        let text = std::str::from_utf8(&frame)
            .map_err(|_| LinkError::Malformed("frame not UTF-8".into()))?;
        CmdLine::parse(text).map_err(|e| LinkError::Malformed(e.to_string()))
    }

    /// Register the waker notified when the peer queues a frame or closes
    /// (see [`Connection::register_waker`]).
    pub fn register_waker(&self, waker: &std::task::Waker) {
        self.conn.register_waker(waker);
    }

    /// Graceful close.
    pub fn close(&self) {
        self.conn.close();
    }
}

const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

fn hex_word(v: u64) -> Value {
    // The `x` prefix keeps the token a <WORD>: an all-digit hex value would
    // otherwise re-lex as an integer (and `12e5…` as a float).
    Value::Word(format!("x{v:016x}"))
}

fn parse_hex_arg(cmd: &CmdLine, name: &str) -> Option<u64> {
    let hex = cmd.get_text(name)?;
    let hex = hex.strip_prefix('x').unwrap_or(hex);
    u64::from_str_radix(hex, 16).ok()
}

fn transcript(client_dh: u64, server_dh: u64) -> String {
    format!("ace-link:{client_dh:016x}:{server_dh:016x}")
}

fn recv_plain(conn: &Connection, timeout: Duration) -> Result<CmdLine, LinkError> {
    let frame = conn.recv_timeout(timeout)?;
    let text = std::str::from_utf8(&frame)
        .map_err(|_| LinkError::Malformed("handshake frame not UTF-8".into()))?;
    CmdLine::parse(text).map_err(|e| LinkError::Malformed(e.to_string()))
}

fn parse_hello(cmd: &CmdLine) -> Result<u64, LinkError> {
    if cmd.name() != "hello" {
        return Err(LinkError::Handshake(format!(
            "expected `hello`, got `{}`",
            cmd.name()
        )));
    }
    let hex = cmd
        .get_text("dh")
        .ok_or_else(|| LinkError::Handshake("hello without dh".into()))?;
    let hex = hex.strip_prefix('x').unwrap_or(hex);
    u64::from_str_radix(hex, 16).map_err(|_| LinkError::Handshake("bad dh value".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_net::{Addr, SimNet};

    fn setup() -> (SimNet, ace_net::Listener) {
        let net = SimNet::new();
        net.add_host("server");
        net.add_host("client");
        let listener = net.listen(Addr::new("server", 100)).unwrap();
        (net, listener)
    }

    fn keypair() -> KeyPair {
        KeyPair::generate(&mut rand::thread_rng())
    }

    #[test]
    fn handshake_and_exchange() {
        let (net, listener) = setup();
        let client_id = keypair();
        let server_id = keypair();
        let client_principal = client_id.principal();
        let server_principal = server_id.principal();

        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut link = SecureLink::accept(conn, &server_id).unwrap();
            assert_eq!(link.peer_principal(), client_principal);
            let cmd = link.recv_cmd(Duration::from_secs(5)).unwrap();
            assert_eq!(cmd.name(), "ping");
            link.send_cmd(&CmdLine::new("ok")).unwrap();
        });

        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        let mut link = SecureLink::connect(conn, &client_id).unwrap();
        assert_eq!(link.peer_principal(), server_principal);
        link.send_cmd(&CmdLine::new("ping")).unwrap();
        let reply = link.recv_cmd(Duration::from_secs(5)).unwrap();
        assert_eq!(reply.name(), "ok");
        server.join().unwrap();
    }

    #[test]
    fn command_bytes_are_encrypted_on_the_wire() {
        let (net, listener) = setup();
        let client_id = keypair();
        let server_id = keypair();

        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut link = SecureLink::accept(conn, &server_id).unwrap();
            // Read the raw frame underneath by receiving through the link —
            // the test on the client side checks the raw bytes.
            let _ = link.recv_cmd(Duration::from_secs(5));
        });

        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        let mut link = SecureLink::connect(conn, &client_id).unwrap();
        let secret_cmd = CmdLine::new("storeKey").arg("value", Value::Str("hunter2".into()));
        // Seal ourselves to inspect: the sealed frame must not contain the
        // plaintext.
        let sealed = {
            let mut probe = SecureChannel::new(SessionKey::from_seed(7));
            probe.seal(secret_cmd.to_wire().as_bytes())
        };
        assert!(!contains(&sealed, b"hunter2"));
        link.send_cmd(&secret_cmd).unwrap();
        server.join().unwrap();
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        haystack.windows(needle.len()).any(|w| w == needle)
    }

    #[test]
    fn identity_is_proven_not_asserted() {
        let (net, listener) = setup();
        let real = keypair();
        let server_id = keypair();

        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            SecureLink::accept(conn, &server_id)
        });

        // A client that claims `real`'s principal but signs with its own key.
        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        let mut rng = rand::thread_rng();
        let dh = DhLocal::generate(&mut rng);
        conn.send(
            CmdLine::new("hello")
                .arg("dh", hex_word(dh.public()))
                .to_wire()
                .into_bytes(),
        )
        .unwrap();
        let server_hello = recv_plain(&conn, Duration::from_secs(5)).unwrap();
        let server_pub = parse_hello(&server_hello).unwrap();
        let key = dh.agree(server_pub);
        let mut tx = SecureChannel::new(key.derive(DIR_CLIENT_TO_SERVER));

        let imposter = keypair();
        let forged_proof = imposter.sign(transcript(dh.public(), server_pub).as_bytes());
        let auth = CmdLine::new("auth")
            .arg("principal", Value::Str(real.principal()))
            .arg("proof", Value::Str(forged_proof.to_wire()));
        conn.send(tx.seal(auth.to_wire().as_bytes())).unwrap();

        let result = server.join().unwrap();
        assert!(matches!(result, Err(LinkError::BadIdentity(_))));
    }

    #[test]
    fn garbage_handshake_rejected() {
        let (net, listener) = setup();
        let server_id = keypair();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            SecureLink::accept(conn, &server_id)
        });
        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        conn.send(b"not a hello".to_vec()).unwrap();
        assert!(server.join().unwrap().is_err());
    }

    // -- resumption ---------------------------------------------------------

    /// Accept `n` connections against one shared vault, asserting the
    /// expected resumed-ness of each and echoing one ping per link.
    fn serve_n(
        listener: ace_net::Listener,
        server_id: KeyPair,
        vault: Arc<TicketVault>,
        expect_resumed: Vec<bool>,
    ) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            for (i, expected) in expect_resumed.into_iter().enumerate() {
                let conn = listener.accept().unwrap();
                let mut link = SecureLink::accept_with_tickets(conn, &server_id, &vault).unwrap();
                assert_eq!(link.resumed(), expected, "connection {i}");
                let cmd = link.recv_cmd(Duration::from_secs(5)).unwrap();
                assert_eq!(cmd.name(), "ping");
                link.send_cmd(&CmdLine::new("ok")).unwrap();
            }
        })
    }

    fn connect_and_ping(net: &SimNet, identity: &KeyPair, tickets: &TicketCache) -> SecureLink {
        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        let mut link = SecureLink::connect_resumable(conn, identity, tickets).unwrap();
        link.send_cmd(&CmdLine::new("ping")).unwrap();
        assert_eq!(link.recv_cmd(Duration::from_secs(5)).unwrap().name(), "ok");
        link
    }

    #[test]
    fn second_connection_resumes_and_traffic_flows() {
        let (net, listener) = setup();
        let client_id = keypair();
        let server_id = keypair();
        let server_principal = server_id.principal();
        let client_principal = client_id.principal();
        let vault = Arc::new(TicketVault::new(Duration::from_secs(10)));
        let server = serve_n(listener, server_id, Arc::clone(&vault), vec![false, true]);

        let tickets = TicketCache::new();
        let first = connect_and_ping(&net, &client_id, &tickets);
        assert!(!first.resumed());
        assert_eq!(tickets.len(), 1, "full handshake must seed the cache");

        let second = connect_and_ping(&net, &client_id, &tickets);
        assert!(second.resumed());
        assert_eq!(second.peer_principal(), server_principal);
        server.join().unwrap();

        // The vault still knows the client's principal for the ticket.
        let (ticket, _) = tickets.get(first.peer_addr()).unwrap();
        assert_eq!(ticket.client_principal, client_principal);
    }

    #[test]
    fn expired_ticket_falls_back_to_full_handshake() {
        let (net, listener) = setup();
        let client_id = keypair();
        let server_id = keypair();
        let vault = Arc::new(TicketVault::new(Duration::from_millis(30)));
        let server = serve_n(listener, server_id, Arc::clone(&vault), vec![false, false]);

        let tickets = TicketCache::new();
        let first = connect_and_ping(&net, &client_id, &tickets);
        let addr = first.peer_addr().clone();
        std::thread::sleep(Duration::from_millis(60));
        // Re-arm the client cache with a long client-side TTL so the client
        // still *attempts* the resume — the server's expiry must reject it.
        let (mut ticket, master) = {
            let inner = tickets.inner.lock();
            let c = inner.get(&addr).cloned().unwrap();
            (c.ticket, c.master)
        };
        ticket.ttl_ms = 60_000;
        tickets.store(&addr, ticket, master);

        let second = connect_and_ping(&net, &client_id, &tickets);
        assert!(!second.resumed(), "expired ticket must not resume");
        server.join().unwrap();
    }

    #[test]
    fn replayed_nonce_is_rejected() {
        let (net, listener) = setup();
        let client_id = keypair();
        let server_id = keypair();
        let vault = Arc::new(TicketVault::new(Duration::from_secs(10)));
        let server_id2 = server_id;
        let server = std::thread::spawn(move || {
            // First: full handshake.  Then one resume.  Then the replayed
            // frame, which must be rejected and fall back.
            for expected in [false, true, false] {
                let conn = listener.accept().unwrap();
                let mut link = SecureLink::accept_with_tickets(conn, &server_id2, &vault).unwrap();
                assert_eq!(link.resumed(), expected);
                let cmd = link.recv_cmd(Duration::from_secs(5)).unwrap();
                assert_eq!(cmd.name(), "ping");
                link.send_cmd(&CmdLine::new("ok")).unwrap();
            }
        });

        let tickets = TicketCache::new();
        let first = connect_and_ping(&net, &client_id, &tickets);
        let addr = first.peer_addr().clone();
        let (ticket, master) = tickets.get(&addr).unwrap();

        // Resume once by hand with a chosen nonce.
        let nonce = 0x1234u64;
        let resume = CmdLine::new("resume")
            .arg("ticket", hex_word(ticket.id))
            .arg("nonce", hex_word(nonce))
            .arg("mac", hex_word(resume_proof(&master, ticket.id, nonce)));
        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        conn.send(resume.to_wire().into_bytes()).unwrap();
        let session = master.derive(nonce);
        let mut rx = SecureChannel::new(session.derive(DIR_SERVER_TO_CLIENT));
        let mut tx = SecureChannel::new(session.derive(DIR_CLIENT_TO_SERVER));
        let mut frame = conn.recv_timeout(Duration::from_secs(5)).unwrap();
        rx.open_in_place(&mut frame).expect("first resume accepted");
        conn.send(tx.seal(CmdLine::new("ping").to_wire().as_bytes()))
            .unwrap();
        let mut reply = conn.recv_timeout(Duration::from_secs(5)).unwrap();
        rx.open_in_place(&mut reply).unwrap();

        // Replay the *exact same* resume frame on a new connection: the
        // nonce is burnt, so the server must reject; a fresh
        // connect_resumable with the still-valid ticket would use a new
        // nonce, but here we assert the replay itself fails by driving the
        // fallback path with the full client.
        let conn2 = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        conn2.send(resume.to_wire().into_bytes()).unwrap();
        let frame2 = conn2.recv_timeout(Duration::from_secs(5)).unwrap();
        let text = std::str::from_utf8(&frame2).unwrap();
        let parsed = CmdLine::parse(text).expect("reject is plaintext");
        assert_eq!(parsed.name(), "reject");
        assert_eq!(parsed.get_text("reason"), Some("nonce replayed"));
        // Finish the server's expectations: complete a full handshake on
        // this same connection (the transparent fallback).
        let fresh_cache = TicketCache::new();
        let mut link = SecureLink::full_connect(conn2, &client_id, Some(&fresh_cache)).unwrap();
        link.send_cmd(&CmdLine::new("ping")).unwrap();
        assert_eq!(link.recv_cmd(Duration::from_secs(5)).unwrap().name(), "ok");
        server.join().unwrap();
    }

    #[test]
    fn stolen_ticket_without_master_key_cannot_resume() {
        let (net, listener) = setup();
        let honest = keypair();
        let thief = keypair();
        let server_id = keypair();
        let vault = Arc::new(TicketVault::new(Duration::from_secs(10)));
        // Honest full handshake, then the thief's attempt, which must fall
        // back to a full handshake under the thief's own identity.
        let server = serve_n(listener, server_id, Arc::clone(&vault), vec![false, false]);

        let honest_cache = TicketCache::new();
        let first = connect_and_ping(&net, &honest, &honest_cache);
        let addr = first.peer_addr().clone();

        // The thief learns the ticket id (say, from the plaintext resume
        // frame of a sniffed session) but not the master key.
        let (ticket, _) = honest_cache.get(&addr).unwrap();
        let thief_cache = TicketCache::new();
        thief_cache.store(&addr, ticket.clone(), SessionKey::from_seed(0xbad));

        let link = connect_and_ping(&net, &thief, &thief_cache);
        assert!(!link.resumed(), "forged proof must not resume");
        // The forged ticket was invalidated; what the cache now holds is
        // the fresh ticket issued by the fallback full handshake, bound to
        // the thief's *own* (authenticated) principal.
        let (fresh, _) = thief_cache.get(&addr).unwrap();
        assert_ne!(fresh.id, ticket.id);
        assert_eq!(fresh.client_principal, thief.principal());
        server.join().unwrap();
    }

    #[test]
    fn server_restart_falls_back_and_reprimes() {
        let (net, listener) = setup();
        let client_id = keypair();
        let server_id = keypair();
        let vault = Arc::new(TicketVault::new(Duration::from_secs(10)));
        let server = serve_n(
            listener,
            server_id,
            Arc::clone(&vault),
            vec![false, false, true],
        );

        let tickets = TicketCache::new();
        let _ = connect_and_ping(&net, &client_id, &tickets);
        // Simulate a daemon restart: all vault state is lost.
        vault.clear();
        let second = connect_and_ping(&net, &client_id, &tickets);
        assert!(!second.resumed(), "unknown ticket must fall back");
        // The fallback full handshake issued a fresh ticket; next resume
        // works again.
        let third = connect_and_ping(&net, &client_id, &tickets);
        assert!(third.resumed());
        server.join().unwrap();
    }
}
