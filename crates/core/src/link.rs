//! Secure command links: the encrypted, authenticated sockets all ACE
//! daemon traffic flows over.
//!
//! "The daemon provides a structure for encrypted and certified socket
//! communications" (§2.1).  A [`SecureLink`] wraps a raw [`Connection`] with:
//!
//! 1. a Diffie–Hellman handshake (plaintext `hello dh=<hex>;` in each
//!    direction) establishing per-direction session keys,
//! 2. proof of identity: the client signs the handshake transcript with its
//!    RSA key and sends `auth principal=… proof=…;` sealed — so the server
//!    knows *which principal* is issuing commands (the input to KeyNote),
//! 3. sealed frames for every subsequent command/reply.

use crate::metrics::Counter;
use ace_lang::{CmdLine, Value};
use ace_net::{Connection, NetError};
#[cfg(test)]
use ace_security::cipher::SessionKey;
use ace_security::cipher::{DhLocal, SecureChannel};
use ace_security::keys::{KeyPair, PublicKey, Signature};
use std::fmt;
use std::sync::Arc;
use std::time::Duration;

/// Errors establishing or using a secure link.
#[derive(Debug)]
pub enum LinkError {
    Net(NetError),
    /// Frame failed to decrypt/authenticate.
    Seal(ace_security::cipher::SealError),
    /// A frame was not valid UTF-8 or not a parseable command.
    Malformed(String),
    /// Handshake violated the protocol.
    Handshake(String),
    /// The client's identity proof did not verify.
    BadIdentity(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Net(e) => write!(f, "network: {e}"),
            LinkError::Seal(e) => write!(f, "seal: {e}"),
            LinkError::Malformed(m) => write!(f, "malformed frame: {m}"),
            LinkError::Handshake(m) => write!(f, "handshake: {m}"),
            LinkError::BadIdentity(m) => write!(f, "identity: {m}"),
        }
    }
}
impl std::error::Error for LinkError {}

impl From<NetError> for LinkError {
    fn from(e: NetError) -> Self {
        LinkError::Net(e)
    }
}

/// Direction labels for per-direction key derivation.
const DIR_CLIENT_TO_SERVER: u64 = 0xC15;
const DIR_SERVER_TO_CLIENT: u64 = 0x5C1;

/// An established, encrypted, identity-carrying command channel.
pub struct SecureLink {
    conn: Connection,
    tx: SecureChannel,
    rx: SecureChannel,
    /// The authenticated principal of the *peer*.
    peer_principal: String,
    /// Optional byte counters (sealed-out / opened-in), fed per frame.
    sealed_bytes: Option<Arc<Counter>>,
    opened_bytes: Option<Arc<Counter>>,
}

impl SecureLink {
    /// Client side: handshake and prove identity with `identity`.
    pub fn connect(conn: Connection, identity: &KeyPair) -> Result<SecureLink, LinkError> {
        let mut rng = rand::thread_rng();
        let dh = DhLocal::generate(&mut rng);
        let hello = CmdLine::new("hello").arg("dh", hex_word(dh.public()));
        conn.send(hello.to_wire().into_bytes())?;

        let peer_hello = recv_plain(&conn, HANDSHAKE_TIMEOUT)?;
        let peer_pub = parse_hello(&peer_hello)?;
        let key = dh.agree(peer_pub);

        let mut link = SecureLink {
            conn,
            tx: SecureChannel::new(key.derive(DIR_CLIENT_TO_SERVER)),
            rx: SecureChannel::new(key.derive(DIR_SERVER_TO_CLIENT)),
            peer_principal: String::new(),
            sealed_bytes: None,
            opened_bytes: None,
        };

        // Prove identity: sign the DH transcript.
        let transcript = transcript(dh.public(), peer_pub);
        let proof = identity.sign(transcript.as_bytes());
        let auth = CmdLine::new("auth")
            .arg("principal", Value::Str(identity.principal()))
            .arg("proof", Value::Str(proof.to_wire()));
        link.send_cmd(&auth)?;

        let reply = link.recv_cmd(HANDSHAKE_TIMEOUT)?;
        match reply.name() {
            "ok" => {
                link.peer_principal = reply.get_text("principal").unwrap_or("").to_string();
                Ok(link)
            }
            other => Err(LinkError::Handshake(format!(
                "server rejected handshake with `{other}`"
            ))),
        }
    }

    /// Server side: handshake, verify the client's identity proof, and
    /// answer with our own principal.
    pub fn accept(conn: Connection, identity: &KeyPair) -> Result<SecureLink, LinkError> {
        let peer_hello = recv_plain(&conn, HANDSHAKE_TIMEOUT)?;
        let peer_pub = parse_hello(&peer_hello)?;

        let mut rng = rand::thread_rng();
        let dh = DhLocal::generate(&mut rng);
        let hello = CmdLine::new("hello").arg("dh", hex_word(dh.public()));
        conn.send(hello.to_wire().into_bytes())?;
        let key = dh.agree(peer_pub);

        let mut link = SecureLink {
            conn,
            tx: SecureChannel::new(key.derive(DIR_SERVER_TO_CLIENT)),
            rx: SecureChannel::new(key.derive(DIR_CLIENT_TO_SERVER)),
            peer_principal: String::new(),
            sealed_bytes: None,
            opened_bytes: None,
        };

        let auth = link.recv_cmd(HANDSHAKE_TIMEOUT)?;
        if auth.name() != "auth" {
            return Err(LinkError::Handshake(format!(
                "expected `auth`, got `{}`",
                auth.name()
            )));
        }
        let principal = auth
            .get_text("principal")
            .ok_or_else(|| LinkError::Handshake("auth without principal".into()))?
            .to_string();
        let proof = auth
            .get_text("proof")
            .and_then(Signature::from_wire)
            .ok_or_else(|| LinkError::Handshake("auth without proof".into()))?;
        let key_of_peer = PublicKey::from_principal(&principal)
            .ok_or_else(|| LinkError::BadIdentity(format!("unparseable principal {principal}")))?;
        // The client signed (client_dh, server_dh) — from its perspective
        // its own key came first.
        let transcript = transcript(peer_pub, dh.public());
        if !key_of_peer.verify(transcript.as_bytes(), proof) {
            return Err(LinkError::BadIdentity(format!(
                "identity proof for {principal} failed"
            )));
        }
        link.peer_principal = principal;

        let ok = CmdLine::new("ok").arg("principal", Value::Str(identity.principal()));
        link.send_cmd(&ok)?;
        Ok(link)
    }

    /// The authenticated principal on the far side.
    pub fn peer_principal(&self) -> &str {
        &self.peer_principal
    }

    /// The far side's network address.
    pub fn peer_addr(&self) -> &ace_net::Addr {
        self.conn.peer_addr()
    }

    /// Count every sealed (outbound) and opened (inbound) frame's bytes on
    /// the given counters — typically a daemon's `link.sealedBytes` /
    /// `link.openedBytes` metrics.
    pub fn attach_metrics(&mut self, sealed: Arc<Counter>, opened: Arc<Counter>) {
        self.sealed_bytes = Some(sealed);
        self.opened_bytes = Some(opened);
    }

    /// Seal and send one command.  One allocation end-to-end: the wire
    /// rendering is encrypted in place and handed to the connection by
    /// ownership (frames move through channels, they are never re-copied).
    pub fn send_cmd(&mut self, cmd: &CmdLine) -> Result<(), LinkError> {
        let mut frame = cmd.to_wire().into_bytes();
        self.tx.seal_in_place(&mut frame);
        if let Some(c) = &self.sealed_bytes {
            c.add(frame.len() as u64);
        }
        self.conn.send(frame)?;
        Ok(())
    }

    /// Receive, open, and parse one command.  The received frame is
    /// decrypted in place — no ciphertext copy on the hot path.
    pub fn recv_cmd(&mut self, timeout: Duration) -> Result<CmdLine, LinkError> {
        let mut frame = self.conn.recv_timeout(timeout)?;
        if let Some(c) = &self.opened_bytes {
            c.add(frame.len() as u64);
        }
        self.rx.open_in_place(&mut frame).map_err(LinkError::Seal)?;
        let text = std::str::from_utf8(&frame)
            .map_err(|_| LinkError::Malformed("frame not UTF-8".into()))?;
        CmdLine::parse(text).map_err(|e| LinkError::Malformed(e.to_string()))
    }

    /// Graceful close.
    pub fn close(&self) {
        self.conn.close();
    }
}

const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(5);

fn hex_word(v: u64) -> Value {
    // The `x` prefix keeps the token a <WORD>: an all-digit hex value would
    // otherwise re-lex as an integer (and `12e5…` as a float).
    Value::Word(format!("x{v:016x}"))
}

fn transcript(client_dh: u64, server_dh: u64) -> String {
    format!("ace-link:{client_dh:016x}:{server_dh:016x}")
}

fn recv_plain(conn: &Connection, timeout: Duration) -> Result<CmdLine, LinkError> {
    let frame = conn.recv_timeout(timeout)?;
    let text = std::str::from_utf8(&frame)
        .map_err(|_| LinkError::Malformed("handshake frame not UTF-8".into()))?;
    CmdLine::parse(text).map_err(|e| LinkError::Malformed(e.to_string()))
}

fn parse_hello(cmd: &CmdLine) -> Result<u64, LinkError> {
    if cmd.name() != "hello" {
        return Err(LinkError::Handshake(format!(
            "expected `hello`, got `{}`",
            cmd.name()
        )));
    }
    let hex = cmd
        .get_text("dh")
        .ok_or_else(|| LinkError::Handshake("hello without dh".into()))?;
    let hex = hex.strip_prefix('x').unwrap_or(hex);
    u64::from_str_radix(hex, 16).map_err(|_| LinkError::Handshake("bad dh value".into()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_net::{Addr, SimNet};

    fn setup() -> (SimNet, ace_net::Listener) {
        let net = SimNet::new();
        net.add_host("server");
        net.add_host("client");
        let listener = net.listen(Addr::new("server", 100)).unwrap();
        (net, listener)
    }

    fn keypair() -> KeyPair {
        KeyPair::generate(&mut rand::thread_rng())
    }

    #[test]
    fn handshake_and_exchange() {
        let (net, listener) = setup();
        let client_id = keypair();
        let server_id = keypair();
        let client_principal = client_id.principal();
        let server_principal = server_id.principal();

        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut link = SecureLink::accept(conn, &server_id).unwrap();
            assert_eq!(link.peer_principal(), client_principal);
            let cmd = link.recv_cmd(Duration::from_secs(5)).unwrap();
            assert_eq!(cmd.name(), "ping");
            link.send_cmd(&CmdLine::new("ok")).unwrap();
        });

        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        let mut link = SecureLink::connect(conn, &client_id).unwrap();
        assert_eq!(link.peer_principal(), server_principal);
        link.send_cmd(&CmdLine::new("ping")).unwrap();
        let reply = link.recv_cmd(Duration::from_secs(5)).unwrap();
        assert_eq!(reply.name(), "ok");
        server.join().unwrap();
    }

    #[test]
    fn command_bytes_are_encrypted_on_the_wire() {
        let (net, listener) = setup();
        let client_id = keypair();
        let server_id = keypair();

        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            let mut link = SecureLink::accept(conn, &server_id).unwrap();
            // Read the raw frame underneath by receiving through the link —
            // the test on the client side checks the raw bytes.
            let _ = link.recv_cmd(Duration::from_secs(5));
        });

        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        let mut link = SecureLink::connect(conn, &client_id).unwrap();
        let secret_cmd = CmdLine::new("storeKey").arg("value", Value::Str("hunter2".into()));
        // Seal ourselves to inspect: the sealed frame must not contain the
        // plaintext.
        let sealed = {
            let mut probe = SecureChannel::new(SessionKey::from_seed(7));
            probe.seal(secret_cmd.to_wire().as_bytes())
        };
        assert!(!contains(&sealed, b"hunter2"));
        link.send_cmd(&secret_cmd).unwrap();
        server.join().unwrap();
    }

    fn contains(haystack: &[u8], needle: &[u8]) -> bool {
        haystack.windows(needle.len()).any(|w| w == needle)
    }

    #[test]
    fn identity_is_proven_not_asserted() {
        let (net, listener) = setup();
        let real = keypair();
        let server_id = keypair();

        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            SecureLink::accept(conn, &server_id)
        });

        // A client that claims `real`'s principal but signs with its own key.
        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        let mut rng = rand::thread_rng();
        let dh = DhLocal::generate(&mut rng);
        conn.send(
            CmdLine::new("hello")
                .arg("dh", hex_word(dh.public()))
                .to_wire()
                .into_bytes(),
        )
        .unwrap();
        let server_hello = recv_plain(&conn, Duration::from_secs(5)).unwrap();
        let server_pub = parse_hello(&server_hello).unwrap();
        let key = dh.agree(server_pub);
        let mut tx = SecureChannel::new(key.derive(DIR_CLIENT_TO_SERVER));

        let imposter = keypair();
        let forged_proof = imposter.sign(transcript(dh.public(), server_pub).as_bytes());
        let auth = CmdLine::new("auth")
            .arg("principal", Value::Str(real.principal()))
            .arg("proof", Value::Str(forged_proof.to_wire()));
        conn.send(tx.seal(auth.to_wire().as_bytes())).unwrap();

        let result = server.join().unwrap();
        assert!(matches!(result, Err(LinkError::BadIdentity(_))));
    }

    #[test]
    fn garbage_handshake_rejected() {
        let (net, listener) = setup();
        let server_id = keypair();
        let server = std::thread::spawn(move || {
            let conn = listener.accept().unwrap();
            SecureLink::accept(conn, &server_id)
        });
        let conn = net
            .connect(&"client".into(), Addr::new("server", 100))
            .unwrap();
        conn.send(b"not a hello".to_vec()).unwrap();
        assert!(server.join().unwrap().is_err());
    }
}
