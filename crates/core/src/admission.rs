//! Bounded two-lane admission control for the daemon command plane.
//!
//! The paper's daemon buffered every incoming verb on an unbounded queue —
//! under a login storm that is congestion *collapse*, not degradation: the
//! queue grows without limit and the daemon spends its time executing
//! commands whose clients gave up long ago.  [`AdmissionQueue`] replaces it
//! with two bounded lanes:
//!
//! * a **priority lane** for the verbs that keep the building alive —
//!   liveness probes, lease renewals, registrations, upgrades, shutdown —
//!   sized so control traffic still flows when bulk traffic is drowning;
//! * a **bulk lane** for everything else, shed **newest-first** with a
//!   retryable `E_BUSY` when it fills *or* when the recent queue wait sits
//!   above a CoDel-style target — a standing queue longer than the target
//!   means the daemon is already past capacity, so admitting more work only
//!   grows latency without growing goodput.
//!
//! Every admission and shed is counted (`admit.*` / `shed.*`), and the
//! `control.queueDepth` gauge is sampled on *both* enqueue and dequeue so a
//! stalled handler can no longer hide a deep queue behind a stale gauge.

use crate::metrics::{Counter, Gauge, MetricsRegistry};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default priority-lane capacity: control traffic is small and cheap, so
/// a short lane is plenty — it exists to be *separate*, not deep.
pub const DEFAULT_PRIORITY_CAPACITY: usize = 64;
/// Default bulk-lane capacity.
pub const DEFAULT_BULK_CAPACITY: usize = 256;
/// Default CoDel-style queue-wait target.  Deliberately a small multiple of
/// a typical verb's service time: a standing queue above this adds latency
/// that eats straight into callers' deadline budgets without adding goodput.
pub const DEFAULT_QUEUE_TARGET: Duration = Duration::from_millis(25);

/// Sizing and policy of one daemon's admission queue.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Capacity of the priority lane.
    pub priority_capacity: usize,
    /// Capacity of the bulk lane.
    pub bulk_capacity: usize,
    /// CoDel-style target: while a standing bulk queue's recent wait
    /// exceeds this, new bulk arrivals are shed even though slots remain.
    /// `None` disables wait-based shedding (lanes still bound depth).
    pub queue_target: Option<Duration>,
    /// Shed queued commands whose `deadline=` budget lapsed before
    /// execution (`E_DEADLINE`).  Disabled only by the uncontrolled
    /// baseline used for overload experiments.
    pub enforce_deadlines: bool,
}

impl Default for AdmissionConfig {
    fn default() -> AdmissionConfig {
        AdmissionConfig {
            priority_capacity: DEFAULT_PRIORITY_CAPACITY,
            bulk_capacity: DEFAULT_BULK_CAPACITY,
            queue_target: Some(DEFAULT_QUEUE_TARGET),
            enforce_deadlines: true,
        }
    }
}

impl AdmissionConfig {
    /// The pre-overload-control behavior, kept for baseline experiments:
    /// effectively unbounded lanes, no wait target, no deadline shedding.
    pub fn uncontrolled() -> AdmissionConfig {
        AdmissionConfig {
            priority_capacity: 1 << 20,
            bulk_capacity: 1 << 20,
            queue_target: None,
            enforce_deadlines: false,
        }
    }
}

/// Which lane a message is admitted to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lane {
    Priority,
    Bulk,
}

/// Why an offer was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmitError {
    /// Lane full or queue wait over target: shed newest-first, retryable.
    Busy,
    /// The receiver is gone (daemon stopping).
    Closed,
}

struct LaneState<T> {
    queue: VecDeque<T>,
    capacity: usize,
}

struct QueueState<T> {
    priority: LaneState<T>,
    bulk: LaneState<T>,
    /// Live [`AdmissionQueue`] handles; disconnection mirrors channel
    /// semantics so the control loop can exit when every producer is gone.
    senders: usize,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<QueueState<T>>,
    not_empty: Condvar,
    /// Cooperative-runtime consumer, woken alongside `not_empty` (the
    /// shared-runtime daemon task polls `try_recv` instead of blocking).
    wake: ace_net::WakeCell,
    /// EWMA of recent bulk queue waits, µs.  Written by the consumer,
    /// read at admission for the CoDel-style test.
    wait_ewma_us: AtomicU64,
    target_us: Option<u64>,
    enforce_deadlines: bool,
    admit_priority: Arc<Counter>,
    admit_bulk: Arc<Counter>,
    shed_priority_full: Arc<Counter>,
    shed_bulk_full: Arc<Counter>,
    shed_queue_wait: Arc<Counter>,
    depth: Arc<Gauge>,
}

impl<T> Shared<T> {
    fn set_depth(&self, state: &QueueState<T>) {
        self.depth
            .set((state.priority.queue.len() + state.bulk.queue.len()) as i64);
    }
}

/// Create one daemon's admission queue: a cloneable producer handle for
/// the command/data threads and the single consumer for the control loop.
pub fn admission_queue<T>(
    config: &AdmissionConfig,
    metrics: &MetricsRegistry,
) -> (AdmissionQueue<T>, AdmissionReceiver<T>) {
    let shared = Arc::new(Shared {
        state: Mutex::new(QueueState {
            priority: LaneState {
                queue: VecDeque::new(),
                capacity: config.priority_capacity.max(1),
            },
            bulk: LaneState {
                queue: VecDeque::new(),
                capacity: config.bulk_capacity.max(1),
            },
            senders: 1,
            closed: false,
        }),
        not_empty: Condvar::new(),
        wake: ace_net::WakeCell::new(),
        wait_ewma_us: AtomicU64::new(0),
        target_us: config.queue_target.map(|t| t.as_micros() as u64),
        enforce_deadlines: config.enforce_deadlines,
        admit_priority: metrics.counter("admit.priority"),
        admit_bulk: metrics.counter("admit.bulk"),
        shed_priority_full: metrics.counter("shed.priorityFull"),
        shed_bulk_full: metrics.counter("shed.bulkFull"),
        shed_queue_wait: metrics.counter("shed.queueWait"),
        depth: metrics.gauge("control.queueDepth"),
    });
    (
        AdmissionQueue {
            shared: Arc::clone(&shared),
        },
        AdmissionReceiver { shared },
    )
}

/// Producer handle: bounded, shedding offers into either lane.
pub struct AdmissionQueue<T> {
    shared: Arc<Shared<T>>,
}

impl<T> AdmissionQueue<T> {
    /// Offer a message to `lane`.  Never blocks: a full lane (or a bulk
    /// queue whose recent wait exceeds the target) refuses newest-first.
    pub fn offer(&self, lane: Lane, msg: T) -> Result<(), AdmitError> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return Err(AdmitError::Closed);
        }
        match lane {
            Lane::Priority => {
                if state.priority.queue.len() >= state.priority.capacity {
                    self.shared.shed_priority_full.incr();
                    return Err(AdmitError::Busy);
                }
                state.priority.queue.push_back(msg);
                self.shared.admit_priority.incr();
            }
            Lane::Bulk => {
                if state.bulk.queue.len() >= state.bulk.capacity {
                    self.shared.shed_bulk_full.incr();
                    return Err(AdmitError::Busy);
                }
                // CoDel-style: only shed on wait when a standing queue
                // exists — an idle daemon with a stale EWMA admits freely.
                if let Some(target) = self.shared.target_us {
                    if !state.bulk.queue.is_empty()
                        && self.shared.wait_ewma_us.load(Ordering::Relaxed) > target
                    {
                        self.shared.shed_queue_wait.incr();
                        return Err(AdmitError::Busy);
                    }
                }
                state.bulk.queue.push_back(msg);
                self.shared.admit_bulk.incr();
            }
        }
        self.shared.set_depth(&state);
        drop(state);
        self.shared.not_empty.notify_one();
        self.shared.wake.wake();
        Ok(())
    }

    /// Enqueue unconditionally on the priority lane, ignoring capacity.
    /// Reserved for the daemon's own `Stop` message — shutdown must never
    /// be shed.
    pub fn force_priority(&self, msg: T) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        if state.closed {
            return;
        }
        state.priority.queue.push_front(msg);
        self.shared.set_depth(&state);
        drop(state);
        self.shared.not_empty.notify_one();
        self.shared.wake.wake();
    }

    /// Is server-side deadline shedding enabled for this daemon?
    pub fn enforce_deadlines(&self) -> bool {
        self.shared.enforce_deadlines
    }

    /// Messages currently queued across both lanes.
    pub fn depth(&self) -> usize {
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.priority.queue.len() + state.bulk.queue.len()
    }
}

impl<T> Clone for AdmissionQueue<T> {
    fn clone(&self) -> AdmissionQueue<T> {
        self.shared
            .state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .senders += 1;
        AdmissionQueue {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for AdmissionQueue<T> {
    fn drop(&mut self) {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.senders -= 1;
        let last = state.senders == 0;
        drop(state);
        if last {
            self.shared.not_empty.notify_all();
            self.shared.wake.wake();
        }
    }
}

/// Receive failures, mirroring channel semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionRecvError {
    Timeout,
    Disconnected,
}

/// Consumer handle, owned by the control thread.  Dropping it closes the
/// queue: subsequent offers fail with [`AdmitError::Closed`].
pub struct AdmissionReceiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> AdmissionReceiver<T> {
    fn pop(state: &mut QueueState<T>) -> Option<T> {
        state
            .priority
            .queue
            .pop_front()
            .or_else(|| state.bulk.queue.pop_front())
    }

    /// Dequeue, priority lane first, waiting up to `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, AdmissionRecvError> {
        let deadline = Instant::now() + timeout;
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(msg) = Self::pop(&mut state) {
                if state.bulk.queue.is_empty() && state.priority.queue.is_empty() {
                    // Standing queue gone: leave CoDel's shed state.
                    self.shared.wait_ewma_us.store(0, Ordering::Relaxed);
                }
                self.shared.set_depth(&state);
                return Ok(msg);
            }
            if state.senders == 0 {
                return Err(AdmissionRecvError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(AdmissionRecvError::Timeout);
            }
            let (guard, _) = self
                .shared
                .not_empty
                .wait_timeout(state, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            state = guard;
        }
    }

    /// Register the waker notified on every admission (and on producer
    /// disconnect).  Register before polling [`Self::try_recv`].
    pub fn register_waker(&self, waker: &std::task::Waker) {
        self.shared.wake.register(waker);
    }

    /// Non-blocking dequeue (used by the upgrade quiesce drain).
    pub fn try_recv(&self) -> Option<T> {
        let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        let msg = Self::pop(&mut state);
        if msg.is_some() {
            self.shared.set_depth(&state);
        }
        msg
    }

    /// Record one dequeued message's queue wait, feeding the CoDel EWMA.
    pub fn note_wait(&self, wait: Duration) {
        let sample = wait.as_micros() as u64;
        let old = self.shared.wait_ewma_us.load(Ordering::Relaxed);
        // Asymmetric: a wait above the estimate raises it *immediately* —
        // the admission gate must slam shut as soon as one message reports
        // a standing queue, or a burst admitted during the EWMA's ramp-up
        // grows the queue far past the target.  Decay (3/4 history) stays
        // smooth so the gate does not flap open on one fast verb.
        let next = sample.max((old * 3 + sample) / 4);
        self.shared.wait_ewma_us.store(next, Ordering::Relaxed);
    }

    /// Messages currently queued across both lanes.
    pub fn depth(&self) -> usize {
        let state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        state.priority.queue.len() + state.bulk.queue.len()
    }

    /// Is server-side deadline shedding enabled for this daemon?
    pub fn enforce_deadlines(&self) -> bool {
        self.shared.enforce_deadlines
    }
}

impl<T> Drop for AdmissionReceiver<T> {
    fn drop(&mut self) {
        let orphaned: Vec<T> = {
            let mut state = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            state.closed = true;
            let mut orphaned: Vec<T> = state.priority.queue.drain(..).collect();
            orphaned.extend(state.bulk.queue.drain(..));
            self.shared.set_depth(&state);
            orphaned
        };
        // Dropped outside the lock: releasing a queued message drops its
        // reply channel, which unblocks the session thread waiting on it.
        // Without this drain, messages stranded by a dead control loop pin
        // their sessions open until the 30 s reply timeout — remote health
        // probes then hang out their own call timeout instead of seeing the
        // session close, and a crashed service takes tens of seconds to
        // convict instead of milliseconds.
        drop(orphaned);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn queue(config: AdmissionConfig) -> (AdmissionQueue<u32>, AdmissionReceiver<u32>) {
        let metrics = MetricsRegistry::new();
        admission_queue(&config, &metrics)
    }

    #[test]
    fn priority_dequeues_before_bulk() {
        let (tx, rx) = queue(AdmissionConfig::default());
        tx.offer(Lane::Bulk, 1).unwrap();
        tx.offer(Lane::Bulk, 2).unwrap();
        tx.offer(Lane::Priority, 3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
    }

    #[test]
    fn full_bulk_lane_sheds_newest_first() {
        let (tx, rx) = queue(AdmissionConfig {
            bulk_capacity: 2,
            ..AdmissionConfig::default()
        });
        tx.offer(Lane::Bulk, 1).unwrap();
        tx.offer(Lane::Bulk, 2).unwrap();
        assert_eq!(tx.offer(Lane::Bulk, 3), Err(AdmitError::Busy));
        // The earlier arrivals are still served in order.
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(2));
    }

    #[test]
    fn full_bulk_lane_never_blocks_priority() {
        let (tx, rx) = queue(AdmissionConfig {
            bulk_capacity: 1,
            ..AdmissionConfig::default()
        });
        tx.offer(Lane::Bulk, 1).unwrap();
        assert_eq!(tx.offer(Lane::Bulk, 2), Err(AdmitError::Busy));
        tx.offer(Lane::Priority, 9).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
    }

    #[test]
    fn wait_over_target_sheds_standing_queue_only() {
        let (tx, rx) = queue(AdmissionConfig {
            queue_target: Some(Duration::from_millis(5)),
            ..AdmissionConfig::default()
        });
        // Simulate the control thread observing long waits.
        for _ in 0..8 {
            rx.note_wait(Duration::from_millis(100));
        }
        // With a standing queue, new bulk arrivals shed...
        tx.offer(Lane::Bulk, 1).unwrap();
        assert_eq!(tx.offer(Lane::Bulk, 2), Err(AdmitError::Busy));
        // ...but priority still flows.
        tx.offer(Lane::Priority, 3).unwrap();
        // Draining the queue exits the shed state.
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(3));
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(1));
        tx.offer(Lane::Bulk, 4).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(4));
    }

    #[test]
    fn uncontrolled_config_never_sheds() {
        let (tx, rx) = queue(AdmissionConfig::uncontrolled());
        for _ in 0..8 {
            rx.note_wait(Duration::from_secs(1));
        }
        for i in 0..10_000 {
            tx.offer(Lane::Bulk, i).unwrap();
        }
        assert_eq!(rx.depth(), 10_000);
        assert!(!tx.enforce_deadlines());
    }

    #[test]
    fn closed_receiver_refuses_offers() {
        let (tx, rx) = queue(AdmissionConfig::default());
        drop(rx);
        assert_eq!(tx.offer(Lane::Bulk, 1), Err(AdmitError::Closed));
        assert_eq!(tx.offer(Lane::Priority, 1), Err(AdmitError::Closed));
    }

    #[test]
    fn dropping_all_senders_disconnects() {
        let (tx, rx) = queue(AdmissionConfig::default());
        let tx2 = tx.clone();
        drop(tx);
        tx2.offer(Lane::Bulk, 7).unwrap();
        drop(tx2);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(7));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(AdmissionRecvError::Disconnected)
        );
    }

    #[test]
    fn force_priority_ignores_capacity() {
        let (tx, rx) = queue(AdmissionConfig {
            priority_capacity: 1,
            ..AdmissionConfig::default()
        });
        tx.offer(Lane::Priority, 1).unwrap();
        assert_eq!(tx.offer(Lane::Priority, 2), Err(AdmitError::Busy));
        tx.force_priority(99);
        assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(99));
    }

    #[test]
    fn depth_tracks_both_lanes() {
        let (tx, rx) = queue(AdmissionConfig::default());
        tx.offer(Lane::Bulk, 1).unwrap();
        tx.offer(Lane::Priority, 2).unwrap();
        assert_eq!(tx.depth(), 2);
        let _ = rx.try_recv();
        assert_eq!(rx.depth(), 1);
    }
}
