//! Per-command authorization (§3.2, Fig. 10).
//!
//! Every command a daemon executes is first checked: the daemon assembles
//! the *action attribute set* (who, which service, which command, which
//! arguments), gathers the relevant KeyNote assertions, and asks the
//! compliance checker for OK / NOT OK.
//!
//! Three modes mirror the deployment options in the paper:
//!
//! * [`AuthMode::Open`] — no restriction (development environments),
//! * [`AuthMode::Local`] — policies and credentials held by the daemon,
//! * `Authorizer::with_source` — Fig. 10's flow: per-command credential fetch
//!   from the Authorization Database service, combined with a local policy
//!   root (implemented by `crates/identity`'s `RemoteCredentials` source).

use ace_lang::{CmdLine, Value};
use ace_security::keynote::{ActionEnv, Assertion, KeyNoteEngine, KeyNoteError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A pluggable source of additional credentials consulted per command —
/// the "Authentication DB service looks up the necessary information"
/// arrow of Fig. 10.
pub trait CredentialSource: Send + Sync {
    /// Credentials relevant to `principal` attempting the action in `env`.
    fn credentials_for(&self, principal: &str, env: &ActionEnv) -> Vec<Assertion>;
}

/// How a daemon authorizes commands.
#[derive(Clone)]
pub enum AuthMode {
    /// Allow everything (the daemon still authenticates principals).
    Open,
    /// Check against a fixed local engine.
    Local(Arc<Authorizer>),
}

impl AuthMode {
    /// Is `principal` allowed to perform the action described by `env`?
    pub fn check(&self, principal: &str, env: &ActionEnv) -> bool {
        match self {
            AuthMode::Open => true,
            AuthMode::Local(auth) => auth.check(principal, env),
        }
    }
}

impl std::fmt::Debug for AuthMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthMode::Open => write!(f, "AuthMode::Open"),
            AuthMode::Local(_) => write!(f, "AuthMode::Local"),
        }
    }
}

/// A KeyNote authorizer with an optional remote credential source and a
/// decision cache (the E8 ablation switch).
pub struct Authorizer {
    base: Mutex<KeyNoteEngine>,
    source: Option<Arc<dyn CredentialSource>>,
    cache_enabled: bool,
    cache: Mutex<HashMap<u64, bool>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl Authorizer {
    /// Authorizer over a local engine only.
    pub fn local(engine: KeyNoteEngine) -> Authorizer {
        Authorizer {
            base: Mutex::new(engine),
            source: None,
            cache_enabled: true,
            cache: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Authorizer that additionally pulls credentials from `source` for
    /// every decision (Fig. 10).
    pub fn with_source(engine: KeyNoteEngine, source: Arc<dyn CredentialSource>) -> Authorizer {
        Authorizer {
            source: Some(source),
            ..Authorizer::local(engine)
        }
    }

    /// Disable the decision cache (for the E8 ablation).
    pub fn without_cache(mut self) -> Authorizer {
        self.cache_enabled = false;
        self
    }

    /// Install a policy assertion (invalidates the cache).
    pub fn add_policy(&self, a: Assertion) -> Result<(), KeyNoteError> {
        self.cache.lock().clear();
        self.base.lock().add_policy(a)
    }

    /// Install a credential (invalidates the cache).
    pub fn add_credential(&self, a: Assertion) -> Result<(), KeyNoteError> {
        self.cache.lock().clear();
        self.base.lock().add_credential(a)
    }

    /// `(cache hits, cache misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    /// The compliance decision.
    pub fn check(&self, principal: &str, env: &ActionEnv) -> bool {
        let key = decision_key(principal, env);
        if self.cache_enabled {
            if let Some(&v) = self.cache.lock().get(&key) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return v;
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let decision = self.decide(principal, env);
        // With a remote credential source, only *positive* decisions are
        // cacheable: KeyNote authority is monotone under credential
        // addition, so a grant stays valid, but a denial may be reversed by
        // a credential stored in the AuthDB after the fact.  (Credential
        // *removal* is not tracked by the cache; deployments that revoke
        // should disable it.)
        if self.cache_enabled && (decision || self.source.is_none()) {
            self.cache.lock().insert(key, decision);
        }
        decision
    }

    fn decide(&self, principal: &str, env: &ActionEnv) -> bool {
        if let Some(source) = &self.source {
            // Fig. 10 steps 2–4: fetch the relevant credentials, extend a
            // scratch engine, evaluate.
            let mut engine = self.base.lock().clone();
            for cred in source.credentials_for(principal, env) {
                // Invalid credentials are skipped, not fatal — a bad record
                // in the DB must not grant or deny by crashing.
                let _ = engine.add_credential(cred);
            }
            engine.query(env, &[principal])
        } else {
            self.base.lock().query(env, &[principal])
        }
    }
}

impl std::fmt::Debug for Authorizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Authorizer(remote_source: {}, cache: {})",
            self.source.is_some(),
            self.cache_enabled
        )
    }
}

fn decision_key(principal: &str, env: &ActionEnv) -> u64 {
    let mut material = Vec::with_capacity(128);
    material.extend_from_slice(principal.as_bytes());
    material.push(0);
    for (k, v) in env {
        material.extend_from_slice(k.as_bytes());
        material.push(1);
        material.extend_from_slice(v.as_bytes());
        material.push(2);
    }
    ace_security::hash::fnv64(&material)
}

/// Assemble the action attribute set for a command arriving at a daemon.
///
/// Scalar arguments are promoted into the environment so conditions can
/// constrain them (`zoom <= 10`); vectors/arrays are summarized by length.
pub fn action_env_for(service: &str, class: &str, room: &str, cmd: &CmdLine) -> ActionEnv {
    let mut env = ActionEnv::new();
    env.insert("app_domain".into(), "ace".into());
    env.insert("service".into(), service.into());
    env.insert("class".into(), class.into());
    env.insert("room".into(), room.into());
    env.insert("cmd".into(), cmd.name().into());
    for (name, value) in cmd.args() {
        let key = format!("arg_{name}");
        let text = match value {
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Word(w) => w.clone(),
            Value::Str(s) => s.clone(),
            Value::Vector(v) => format!("vector:{}", v.len()),
            Value::Array(a) => format!("array:{}", a.len()),
        };
        env.insert(key, text);
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_security::keynote::{Licensees, POLICY};
    use ace_security::keys::KeyPair;

    fn keypair() -> KeyPair {
        KeyPair::generate(&mut rand::thread_rng())
    }

    #[test]
    fn open_mode_allows_all() {
        assert!(AuthMode::Open.check("anyone", &ActionEnv::new()));
    }

    #[test]
    fn local_mode_enforces() {
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(
                    POLICY,
                    Licensees::Principal(user.principal()),
                    "cmd == \"ptzMove\" && arg_zoom <= 10",
                )
                .unwrap(),
            )
            .unwrap();
        let mode = AuthMode::Local(Arc::new(Authorizer::local(engine)));

        let ok_cmd = CmdLine::new("ptzMove").arg("zoom", 5);
        let env = action_env_for("cam1", "PTZCamera", "hawk", &ok_cmd);
        assert!(mode.check(&user.principal(), &env));

        let too_far = CmdLine::new("ptzMove").arg("zoom", 50);
        let env = action_env_for("cam1", "PTZCamera", "hawk", &too_far);
        assert!(!mode.check(&user.principal(), &env));

        assert!(!mode.check("stranger", &ActionEnv::new()));
    }

    #[test]
    fn action_env_promotes_args() {
        let cmd = CmdLine::new("ptzMove")
            .arg("x", 1)
            .arg("label", "door")
            .arg("path", Value::Vector(vec![]));
        let env = action_env_for("cam", "PTZCamera", "hawk", &cmd);
        assert_eq!(env.get("cmd").unwrap(), "ptzMove");
        assert_eq!(env.get("arg_x").unwrap(), "1");
        assert_eq!(env.get("arg_label").unwrap(), "door");
        assert_eq!(env.get("arg_path").unwrap(), "vector:0");
        assert_eq!(env.get("service").unwrap(), "cam");
    }

    #[test]
    fn cache_counts_and_ablation() {
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(user.principal()), "true").unwrap(),
            )
            .unwrap();
        let auth = Authorizer::local(engine.clone());
        let env = ActionEnv::new();
        let p = user.principal();
        for _ in 0..5 {
            assert!(auth.check(&p, &env));
        }
        assert_eq!(auth.cache_stats(), (4, 1));

        let uncached = Authorizer::local(engine).without_cache();
        for _ in 0..5 {
            assert!(uncached.check(&p, &env));
        }
        assert_eq!(uncached.cache_stats(), (0, 0));
    }

    #[test]
    fn remote_source_consulted() {
        struct OneCred(Assertion);
        impl CredentialSource for OneCred {
            fn credentials_for(&self, _p: &str, _e: &ActionEnv) -> Vec<Assertion> {
                vec![self.0.clone()]
            }
        }

        let admin = keypair();
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(admin.principal()), "true").unwrap(),
            )
            .unwrap();
        let cred = Assertion::new(
            admin.principal(),
            Licensees::Principal(user.principal()),
            "true",
        )
        .unwrap()
        .sign(&admin)
        .unwrap();

        // Without the source the user is denied; with it, granted.
        let local_only = Authorizer::local(engine.clone());
        assert!(!local_only.check(&user.principal(), &ActionEnv::new()));
        let with_source = Authorizer::with_source(engine, Arc::new(OneCred(cred)));
        assert!(with_source.check(&user.principal(), &ActionEnv::new()));
    }

    #[test]
    fn invalid_remote_credentials_skipped() {
        struct Forged(Assertion);
        impl CredentialSource for Forged {
            fn credentials_for(&self, _p: &str, _e: &ActionEnv) -> Vec<Assertion> {
                vec![self.0.clone()]
            }
        }
        let admin = keypair();
        let user = keypair();
        // Unsigned "credential".
        let forged = Assertion::new(
            admin.principal(),
            Licensees::Principal(user.principal()),
            "true",
        )
        .unwrap();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(admin.principal()), "true").unwrap(),
            )
            .unwrap();
        let auth = Authorizer::with_source(engine, Arc::new(Forged(forged)));
        assert!(!auth.check(&user.principal(), &ActionEnv::new()));
    }
}
