//! Per-command authorization (§3.2, Fig. 10).
//!
//! Every command a daemon executes is first checked: the daemon assembles
//! the *action attribute set* (who, which service, which command, which
//! arguments), gathers the relevant KeyNote assertions, and asks the
//! compliance checker for OK / NOT OK.
//!
//! Three modes mirror the deployment options in the paper:
//!
//! * [`AuthMode::Open`] — no restriction (development environments),
//! * [`AuthMode::Local`] — policies and credentials held by the daemon,
//! * `Authorizer::with_source` — Fig. 10's flow: per-command credential fetch
//!   from the Authorization Database service, combined with a local policy
//!   root (implemented by `crates/identity`'s `RemoteCredentials` source).

use crate::metrics::{Counter, MetricsRegistry};
use ace_lang::{CmdLine, Value};
use ace_security::keynote::{ActionEnv, Assertion, KeyNoteEngine, KeyNoteError};
use parking_lot::Mutex;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// A pluggable source of additional credentials consulted per command —
/// the "Authentication DB service looks up the necessary information"
/// arrow of Fig. 10.
pub trait CredentialSource: Send + Sync {
    /// Credentials relevant to `principal` attempting the action in `env`.
    fn credentials_for(&self, principal: &str, env: &ActionEnv) -> Vec<Assertion>;
}

/// How a daemon authorizes commands.
#[derive(Clone)]
pub enum AuthMode {
    /// Allow everything (the daemon still authenticates principals).
    Open,
    /// Check against a fixed local engine.
    Local(Arc<Authorizer>),
}

impl AuthMode {
    /// Is `principal` allowed to perform the action described by `env`?
    pub fn check(&self, principal: &str, env: &ActionEnv) -> bool {
        match self {
            AuthMode::Open => true,
            AuthMode::Local(auth) => auth.check(principal, env),
        }
    }
}

impl std::fmt::Debug for AuthMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AuthMode::Open => write!(f, "AuthMode::Open"),
            AuthMode::Local(_) => write!(f, "AuthMode::Local"),
        }
    }
}

/// Default bound on cached decisions.  Every distinct (principal, action
/// attribute set) pair is one entry; unbounded growth was possible when a
/// hostile or chatty client varied an argument per call.
const DEFAULT_CACHE_CAPACITY: usize = 4096;

/// A KeyNote authorizer with an optional remote credential source and a
/// bounded decision cache (the E8 ablation switch).
pub struct Authorizer {
    base: Mutex<KeyNoteEngine>,
    source: Option<Arc<dyn CredentialSource>>,
    cache_enabled: bool,
    cache: Mutex<CacheState>,
}

/// Decision cache with insertion-order eviction and swappable counters
/// ([`Authorizer::bind_metrics`] points them at a daemon registry so
/// `aceStats` reports them).
struct CacheState {
    map: HashMap<u64, bool>,
    order: VecDeque<u64>,
    capacity: usize,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    evicted: Arc<Counter>,
}

impl CacheState {
    fn clear(&mut self) {
        self.map.clear();
        self.order.clear();
    }

    /// Insert a fresh decision, evicting oldest entries beyond capacity.
    fn insert_bounded(&mut self, key: u64, decision: bool) {
        if self.map.insert(key, decision).is_none() {
            self.order.push_back(key);
        }
        while self.map.len() > self.capacity {
            match self.order.pop_front() {
                Some(old) => {
                    if self.map.remove(&old).is_some() {
                        self.evicted.incr();
                    }
                }
                None => break,
            }
        }
    }
}

impl Authorizer {
    /// Authorizer over a local engine only.
    pub fn local(engine: KeyNoteEngine) -> Authorizer {
        Authorizer {
            base: Mutex::new(engine),
            source: None,
            cache_enabled: true,
            cache: Mutex::new(CacheState {
                map: HashMap::new(),
                order: VecDeque::new(),
                capacity: DEFAULT_CACHE_CAPACITY,
                hits: Arc::new(Counter::new()),
                misses: Arc::new(Counter::new()),
                evicted: Arc::new(Counter::new()),
            }),
        }
    }

    /// Authorizer that additionally pulls credentials from `source` for
    /// every decision (Fig. 10).
    pub fn with_source(engine: KeyNoteEngine, source: Arc<dyn CredentialSource>) -> Authorizer {
        Authorizer {
            source: Some(source),
            ..Authorizer::local(engine)
        }
    }

    /// Disable the decision cache (for the E8 ablation).
    pub fn without_cache(mut self) -> Authorizer {
        self.cache_enabled = false;
        self
    }

    /// Bound the decision cache at `capacity` entries (default 4096).
    pub fn with_cache_capacity(self, capacity: usize) -> Authorizer {
        self.cache.lock().capacity = capacity.max(1);
        self
    }

    /// Re-home the cache counters in `metrics` as `auth.cache_hits`,
    /// `auth.cache_misses`, and `auth.cache_evicted`, carrying over any
    /// counts accumulated so far.  The daemon runtime calls this at spawn
    /// so the counters surface through `aceStats`.
    pub fn bind_metrics(&self, metrics: &MetricsRegistry) {
        let mut guard = self.cache.lock();
        let CacheState {
            hits,
            misses,
            evicted,
            ..
        } = &mut *guard;
        for (name, counter) in [
            ("auth.cache_hits", hits),
            ("auth.cache_misses", misses),
            ("auth.cache_evicted", evicted),
        ] {
            let bound = metrics.counter(name);
            bound.add(counter.get());
            *counter = bound;
        }
    }

    /// Install a policy assertion (invalidates the cache).
    pub fn add_policy(&self, a: Assertion) -> Result<(), KeyNoteError> {
        self.cache.lock().clear();
        self.base.lock().add_policy(a)
    }

    /// Install a credential (invalidates the cache).
    pub fn add_credential(&self, a: Assertion) -> Result<(), KeyNoteError> {
        self.cache.lock().clear();
        self.base.lock().add_credential(a)
    }

    /// `(cache hits, cache misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        let cache = self.cache.lock();
        (cache.hits.get(), cache.misses.get())
    }

    /// Decisions evicted by the capacity bound.
    pub fn cache_evictions(&self) -> u64 {
        self.cache.lock().evicted.get()
    }

    /// The compliance decision.
    pub fn check(&self, principal: &str, env: &ActionEnv) -> bool {
        let key = decision_key(principal, env);
        if self.cache_enabled {
            let cache = self.cache.lock();
            if let Some(&v) = cache.map.get(&key) {
                cache.hits.incr();
                return v;
            }
            cache.misses.incr();
        }
        // The cache lock is released while deciding: compliance checking
        // (possibly with a remote credential fetch) is the slow part.
        let decision = self.decide(principal, env);
        // With a remote credential source, only *positive* decisions are
        // cacheable: KeyNote authority is monotone under credential
        // addition, so a grant stays valid, but a denial may be reversed by
        // a credential stored in the AuthDB after the fact.  (Credential
        // *removal* is not tracked by the cache; deployments that revoke
        // should disable it.)
        if self.cache_enabled && (decision || self.source.is_none()) {
            self.cache.lock().insert_bounded(key, decision);
        }
        decision
    }

    fn decide(&self, principal: &str, env: &ActionEnv) -> bool {
        if let Some(source) = &self.source {
            // Fig. 10 steps 2–4: fetch the relevant credentials, extend a
            // scratch engine, evaluate.
            let mut engine = self.base.lock().clone();
            for cred in source.credentials_for(principal, env) {
                // Invalid credentials are skipped, not fatal — a bad record
                // in the DB must not grant or deny by crashing.
                let _ = engine.add_credential(cred);
            }
            engine.query(env, &[principal])
        } else {
            self.base.lock().query(env, &[principal])
        }
    }
}

impl std::fmt::Debug for Authorizer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Authorizer(remote_source: {}, cache: {})",
            self.source.is_some(),
            self.cache_enabled
        )
    }
}

fn decision_key(principal: &str, env: &ActionEnv) -> u64 {
    let mut material = Vec::with_capacity(128);
    material.extend_from_slice(principal.as_bytes());
    material.push(0);
    for (k, v) in env {
        material.extend_from_slice(k.as_bytes());
        material.push(1);
        material.extend_from_slice(v.as_bytes());
        material.push(2);
    }
    ace_security::hash::fnv64(&material)
}

/// Assemble the action attribute set for a command arriving at a daemon.
///
/// Scalar arguments are promoted into the environment so conditions can
/// constrain them (`zoom <= 10`); vectors/arrays are summarized by length.
pub fn action_env_for(service: &str, class: &str, room: &str, cmd: &CmdLine) -> ActionEnv {
    let mut env = ActionEnv::new();
    env.insert("app_domain".into(), "ace".into());
    env.insert("service".into(), service.into());
    env.insert("class".into(), class.into());
    env.insert("room".into(), room.into());
    env.insert("cmd".into(), cmd.name().into());
    for (name, value) in cmd.args() {
        let key = format!("arg_{name}");
        let text = match value {
            Value::Int(i) => i.to_string(),
            Value::Float(f) => f.to_string(),
            Value::Word(w) => w.clone(),
            Value::Str(s) => s.clone(),
            Value::Vector(v) => format!("vector:{}", v.len()),
            Value::Array(a) => format!("array:{}", a.len()),
        };
        env.insert(key, text);
    }
    env
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_security::keynote::{Licensees, POLICY};
    use ace_security::keys::KeyPair;

    fn keypair() -> KeyPair {
        KeyPair::generate(&mut rand::thread_rng())
    }

    #[test]
    fn open_mode_allows_all() {
        assert!(AuthMode::Open.check("anyone", &ActionEnv::new()));
    }

    #[test]
    fn local_mode_enforces() {
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(
                    POLICY,
                    Licensees::Principal(user.principal()),
                    "cmd == \"ptzMove\" && arg_zoom <= 10",
                )
                .unwrap(),
            )
            .unwrap();
        let mode = AuthMode::Local(Arc::new(Authorizer::local(engine)));

        let ok_cmd = CmdLine::new("ptzMove").arg("zoom", 5);
        let env = action_env_for("cam1", "PTZCamera", "hawk", &ok_cmd);
        assert!(mode.check(&user.principal(), &env));

        let too_far = CmdLine::new("ptzMove").arg("zoom", 50);
        let env = action_env_for("cam1", "PTZCamera", "hawk", &too_far);
        assert!(!mode.check(&user.principal(), &env));

        assert!(!mode.check("stranger", &ActionEnv::new()));
    }

    #[test]
    fn action_env_promotes_args() {
        let cmd = CmdLine::new("ptzMove")
            .arg("x", 1)
            .arg("label", "door")
            .arg("path", Value::Vector(vec![]));
        let env = action_env_for("cam", "PTZCamera", "hawk", &cmd);
        assert_eq!(env.get("cmd").unwrap(), "ptzMove");
        assert_eq!(env.get("arg_x").unwrap(), "1");
        assert_eq!(env.get("arg_label").unwrap(), "door");
        assert_eq!(env.get("arg_path").unwrap(), "vector:0");
        assert_eq!(env.get("service").unwrap(), "cam");
    }

    #[test]
    fn cache_counts_and_ablation() {
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(user.principal()), "true").unwrap(),
            )
            .unwrap();
        let auth = Authorizer::local(engine.clone());
        let env = ActionEnv::new();
        let p = user.principal();
        for _ in 0..5 {
            assert!(auth.check(&p, &env));
        }
        assert_eq!(auth.cache_stats(), (4, 1));

        let uncached = Authorizer::local(engine).without_cache();
        for _ in 0..5 {
            assert!(uncached.check(&p, &env));
        }
        assert_eq!(uncached.cache_stats(), (0, 0));
    }

    #[test]
    fn cache_is_bounded_with_oldest_eviction() {
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(user.principal()), "true").unwrap(),
            )
            .unwrap();
        let auth = Authorizer::local(engine).with_cache_capacity(2);
        let p = user.principal();
        let env_n = |n: u32| {
            let mut e = ActionEnv::new();
            e.insert("cmd".into(), format!("cmd{n}"));
            e
        };
        for n in 0..3 {
            auth.check(&p, &env_n(n));
        }
        assert_eq!(auth.cache_evictions(), 1, "third insert evicts the oldest");
        // The oldest decision is gone — re-checking it is a miss again.
        auth.check(&p, &env_n(0));
        let (hits, misses) = auth.cache_stats();
        assert_eq!((hits, misses), (0, 4));
        // The newest is still cached.
        auth.check(&p, &env_n(2));
        assert_eq!(auth.cache_stats(), (1, 4));
    }

    #[test]
    fn bind_metrics_rehomes_counters_with_carryover() {
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(user.principal()), "true").unwrap(),
            )
            .unwrap();
        let auth = Authorizer::local(engine);
        let p = user.principal();
        let env = ActionEnv::new();
        auth.check(&p, &env); // miss
        auth.check(&p, &env); // hit

        let metrics = crate::metrics::MetricsRegistry::new();
        auth.bind_metrics(&metrics);
        assert_eq!(metrics.counter("auth.cache_hits").get(), 1);
        assert_eq!(metrics.counter("auth.cache_misses").get(), 1);

        auth.check(&p, &env); // hit, counted on the registry now
        assert_eq!(metrics.counter("auth.cache_hits").get(), 2);
        assert_eq!(auth.cache_stats(), (2, 1), "stats read the same counters");
    }

    #[test]
    fn remote_source_consulted() {
        struct OneCred(Assertion);
        impl CredentialSource for OneCred {
            fn credentials_for(&self, _p: &str, _e: &ActionEnv) -> Vec<Assertion> {
                vec![self.0.clone()]
            }
        }

        let admin = keypair();
        let user = keypair();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(admin.principal()), "true").unwrap(),
            )
            .unwrap();
        let cred = Assertion::new(
            admin.principal(),
            Licensees::Principal(user.principal()),
            "true",
        )
        .unwrap()
        .sign(&admin)
        .unwrap();

        // Without the source the user is denied; with it, granted.
        let local_only = Authorizer::local(engine.clone());
        assert!(!local_only.check(&user.principal(), &ActionEnv::new()));
        let with_source = Authorizer::with_source(engine, Arc::new(OneCred(cred)));
        assert!(with_source.check(&user.principal(), &ActionEnv::new()));
    }

    #[test]
    fn invalid_remote_credentials_skipped() {
        struct Forged(Assertion);
        impl CredentialSource for Forged {
            fn credentials_for(&self, _p: &str, _e: &ActionEnv) -> Vec<Assertion> {
                vec![self.0.clone()]
            }
        }
        let admin = keypair();
        let user = keypair();
        // Unsigned "credential".
        let forged = Assertion::new(
            admin.principal(),
            Licensees::Principal(user.principal()),
            "true",
        )
        .unwrap();
        let mut engine = KeyNoteEngine::new();
        engine
            .add_policy(
                Assertion::new(POLICY, Licensees::Principal(admin.principal()), "true").unwrap(),
            )
            .unwrap();
        let auth = Authorizer::with_source(engine, Arc::new(Forged(forged)));
        assert!(!auth.check(&user.principal(), &ActionEnv::new()));
    }
}
