//! The ACE service daemon runtime (§2.1).
//!
//! "Each daemon consists of four threads … the main thread, the command
//! thread, the data thread, and the control thread.  The command thread is
//! the only one created on a per connection basis. … All communications
//! between these threads are carried out over message queues."
//!
//! The mapping here:
//!
//! * **main thread** — performs the Fig. 9 startup sequence (Room DB → ASD
//!   → Net Logger) synchronously in [`Daemon::spawn`], then lives on as the
//!   lease-renewal thread and performs deregistration on graceful shutdown;
//! * **accept + command threads** — an accept loop spawns one command
//!   thread per connection; each runs the secure handshake, then parses and
//!   semantically validates incoming commands and queues them for control;
//! * **control thread** — owns the [`ServiceBehavior`] and the notification
//!   registry; executes commands (after the KeyNote check), sends return
//!   commands, fires notifications, and drives `on_tick`/`on_data`;
//! * **data thread** — receives datagrams on the daemon's UDP channel and
//!   forwards them to control.

use crate::admission::{
    admission_queue, AdmissionConfig, AdmissionQueue, AdmissionReceiver, AdmissionRecvError,
    AdmitError, Lane,
};
use crate::auth::{action_env_for, AuthMode};
use crate::behavior::{ClientInfo, ServiceBehavior, ServiceCtx};
use crate::client::{ClientError, ServiceClient};
use crate::link::{LinkError, SecureLink, TicketVault};
use crate::metrics::{Counter, Histogram, MetricsRegistry};
use crate::notify::{NotificationRegistry, Notifier, Registration};
use crate::protocol;
use crate::retry::{RetryBudget, RetryPolicy};
use crate::runtime::{Runtime, RuntimeMode, RuntimeTask, TaskContext, TaskHandle, TaskPoll};
use ace_lang::{CmdLine, ErrorCode, Reply, Scalar, Semantics, Value};
use ace_net::{Addr, Datagram, HostId, NetError, SimNet, WakeCell};
use ace_security::keys::KeyPair;
use crossbeam_channel::{Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::task::{Wake, Waker};
use std::time::{Duration, Instant};

/// Configuration of one daemon.
#[derive(Clone)]
pub struct DaemonConfig {
    /// Unique service name ("foo" in Fig. 9).
    pub name: String,
    /// Service class — a dot path in the Fig. 6 hierarchy, e.g.
    /// `Service.Device.PTZCamera.VCC3`.
    pub class: String,
    /// Room this service lives in.
    pub room: String,
    /// Host to run on.
    pub host: HostId,
    /// Port to listen on (stream and datagram).
    pub port: u16,
    /// ACE Service Directory to register with (Fig. 9 step 3).
    pub asd: Option<Addr>,
    /// Room Database to register with (step 2).
    pub roomdb: Option<Addr>,
    /// Network Logger to report to (step 5).
    pub logger: Option<Addr>,
    /// Authorization mode for incoming commands (§3.2).
    pub auth: AuthMode,
    /// Key pair; generated if not provided.  Provide one when KeyNote
    /// policies must name this service.
    pub identity: Option<KeyPair>,
    /// Cadence of `on_tick`.
    pub tick: Duration,
    /// Lease renewal interval (must be below the ASD's lease duration).
    pub lease_renew: Duration,
    /// Cadence of periodic `stats` events pushed to the Net Logger.
    /// Zero disables them; `aceStats` still answers on demand.
    pub stats_interval: Duration,
    /// Monotone spawn generation of this service name.  Every live
    /// upgrade (and supervised restart that opts in) increments it; the
    /// daemon stamps it into `ping` replies so clients and chaos tests
    /// can detect stale incarnations answering.
    pub incarnation: u64,
    /// Resumption-ticket vault to serve `resume` handshakes from.  A live
    /// upgrade hands the old incarnation's vault (and identity) to the
    /// replacement so established clients resume in one round trip; when
    /// absent a fresh vault is created and dies with the daemon, which is
    /// what forces clients back onto the full handshake after a crash.
    pub ticket_vault: Option<Arc<TicketVault>>,
    /// Notification registrations carried over from a previous
    /// incarnation, seeded before the first command executes.
    pub notifications: Vec<(String, Registration)>,
    /// Admission-control sizing and shedding policy of the command plane.
    pub admission: AdmissionConfig,
    /// Which runtime hosts this daemon: `None` resolves from the
    /// `ACE_RUNTIME` environment variable ([`RuntimeMode::from_env`]).
    pub runtime: Option<RuntimeMode>,
    /// Explicit runtime pool for [`RuntimeMode::Shared`]; defaults to the
    /// process-wide [`Runtime::global`].  Tests and benches pass a private
    /// pool for isolation and worker-count ablation.
    pub runtime_pool: Option<Runtime>,
}

impl DaemonConfig {
    /// Minimal standalone configuration (no framework registrations, open
    /// authorization) — what the bootstrap services themselves use.
    pub fn new(
        name: impl Into<String>,
        class: impl Into<String>,
        room: impl Into<String>,
        host: impl Into<HostId>,
        port: u16,
    ) -> DaemonConfig {
        DaemonConfig {
            name: name.into(),
            class: class.into(),
            room: room.into(),
            host: host.into(),
            port,
            asd: None,
            roomdb: None,
            logger: None,
            auth: AuthMode::Open,
            identity: None,
            tick: Duration::from_millis(50),
            lease_renew: Duration::from_millis(200),
            stats_interval: Duration::from_secs(1),
            incarnation: 0,
            ticket_vault: None,
            notifications: Vec::new(),
            admission: AdmissionConfig::default(),
            runtime: None,
            runtime_pool: None,
        }
    }

    /// Register with this ASD at startup.
    pub fn with_asd(mut self, asd: Addr) -> Self {
        self.asd = Some(asd);
        self
    }

    /// Register with this Room Database at startup.
    pub fn with_roomdb(mut self, roomdb: Addr) -> Self {
        self.roomdb = Some(roomdb);
        self
    }

    /// Report lifecycle events to this Network Logger.
    pub fn with_logger(mut self, logger: Addr) -> Self {
        self.logger = Some(logger);
        self
    }

    /// Enforce this authorization mode.
    pub fn with_auth(mut self, auth: AuthMode) -> Self {
        self.auth = auth;
        self
    }

    /// Use a fixed identity.
    pub fn with_identity(mut self, identity: KeyPair) -> Self {
        self.identity = Some(identity);
        self
    }

    /// Override the tick cadence.
    pub fn with_tick(mut self, tick: Duration) -> Self {
        self.tick = tick;
        self
    }

    /// Override the lease renewal interval.
    pub fn with_lease_renew(mut self, interval: Duration) -> Self {
        self.lease_renew = interval;
        self
    }

    /// Override the periodic stats-event cadence (zero disables).
    pub fn with_stats_interval(mut self, interval: Duration) -> Self {
        self.stats_interval = interval;
        self
    }

    /// Stamp this spawn generation (monotone across restarts of one name).
    pub fn with_incarnation(mut self, incarnation: u64) -> Self {
        self.incarnation = incarnation;
        self
    }

    /// Serve session resumption from an existing ticket vault (live
    /// upgrades pass the previous incarnation's vault here).
    pub fn with_ticket_vault(mut self, vault: Arc<TicketVault>) -> Self {
        self.ticket_vault = Some(vault);
        self
    }

    /// Seed notification registrations carried over from a previous
    /// incarnation.
    pub fn with_notifications(mut self, notifications: Vec<(String, Registration)>) -> Self {
        self.notifications = notifications;
        self
    }

    /// Override the admission-control policy (lane sizes, CoDel target,
    /// deadline enforcement).
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = admission;
        self
    }

    /// Pin this daemon to a runtime mode instead of resolving from
    /// `ACE_RUNTIME`.
    pub fn with_runtime(mut self, mode: RuntimeMode) -> Self {
        self.runtime = Some(mode);
        self
    }

    /// Run on this specific shared-runtime pool (implies
    /// [`RuntimeMode::Shared`] unless overridden).
    pub fn with_runtime_pool(mut self, pool: Runtime) -> Self {
        self.runtime_pool = Some(pool);
        if self.runtime.is_none() {
            self.runtime = Some(RuntimeMode::Shared);
        }
        self
    }
}

/// Startup failures (Fig. 9 steps).
#[derive(Debug)]
pub enum SpawnError {
    /// Could not bind the daemon's sockets.
    Bind(NetError),
    /// A framework registration failed.
    Register {
        step: &'static str,
        error: ClientError,
    },
    /// The behavior refused a live-upgrade state snapshot (torn,
    /// corrupted, or of the wrong kind) — the old incarnation must keep
    /// serving.
    Restore(String),
}

impl std::fmt::Display for SpawnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpawnError::Bind(e) => write!(f, "bind: {e}"),
            SpawnError::Register { step, error } => write!(f, "register ({step}): {error}"),
            SpawnError::Restore(msg) => write!(f, "restore: {msg}"),
        }
    }
}
impl std::error::Error for SpawnError {}

enum ControlMsg {
    Execute {
        cmd: CmdLine,
        from: ClientInfo,
        reply: Sender<CmdLine>,
        /// When the command thread queued this — measures control-queue wait.
        enqueued: Instant,
        /// Absolute expiry derived from the command's `deadline=` header;
        /// the control thread sheds expired work before executing it.
        deadline: Option<Instant>,
    },
    Data(Datagram),
    Stop,
}

/// A running daemon.
pub struct Daemon;

impl Daemon {
    /// Run the Fig. 9 startup sequence and launch the daemon threads.
    pub fn spawn(
        net: &SimNet,
        config: DaemonConfig,
        behavior: Box<dyn ServiceBehavior>,
    ) -> Result<DaemonHandle, SpawnError> {
        let identity = Arc::new(
            config
                .identity
                .unwrap_or_else(|| KeyPair::generate(&mut rand::thread_rng())),
        );
        let addr = Addr::new(config.host.clone(), config.port);
        let metrics = Arc::new(MetricsRegistry::new());
        // Surface the authorizer's cache counters through this daemon's
        // `aceStats` (they keep whatever counts accrued before spawn).
        if let AuthMode::Local(auth) = &config.auth {
            auth.bind_metrics(&metrics);
        }

        // Step 1: the host "launches" the service — bind its sockets.
        let listener = net.listen(addr.clone()).map_err(SpawnError::Bind)?;
        let dsocket = net.bind_datagram(addr.clone()).map_err(SpawnError::Bind)?;

        // Step 2: establish location with the Room Database.
        if let Some(roomdb) = &config.roomdb {
            let mut client = ServiceClient::connect(net, &config.host, roomdb.clone(), &identity)
                .map_err(|error| SpawnError::Register {
                step: "roomdb",
                error,
            })?;
            client
                .call_ok(
                    &CmdLine::new("roomRegister")
                        .arg("service", config.name.as_str())
                        .arg("host", config.host.as_str())
                        .arg("port", config.port)
                        .arg("room", config.room.as_str()),
                )
                .map_err(|error| SpawnError::Register {
                    step: "roomdb",
                    error,
                })?;
        }

        // Shared storm-prevention budget for this daemon's own retry loops
        // (ASD registration below + lease renewal): even framework-plane
        // retries must not amplify an overload.
        let retry_budget = Arc::new(RetryBudget::new(5, 0.1));

        // Step 3: register with the ASD.  Registration rides out brief ASD
        // unavailability (e.g. an ASD restart mid-recovery) with a short
        // bounded backoff before the spawn is declared failed.
        if let Some(asd) = &config.asd {
            retry_budget.note_call();
            let mut retry = RetryPolicy::new(Duration::from_millis(20))
                .with_max_attempts(3)
                .with_counter(metrics.counter("retry.backoffs"))
                .with_retry_budget(Arc::clone(&retry_budget))
                .start();
            loop {
                let result = ServiceClient::connect(net, &config.host, asd.clone(), &identity)
                    .and_then(|mut client| client.call_ok(&register_cmd(&config)));
                match result {
                    Ok(()) => break,
                    Err(error) => {
                        if !retry.backoff() {
                            return Err(SpawnError::Register { step: "asd", error });
                        }
                    }
                }
            }
        }

        // Step 5: record the start with the Network Logger.  (Step 4 —
        // notifications on the registration — happens inside the ASD.)
        if let Some(logger) = &config.logger {
            let mut client = ServiceClient::connect(net, &config.host, logger.clone(), &identity)
                .map_err(|error| SpawnError::Register {
                step: "logger",
                error,
            })?;
            client
                .call_ok(
                    &CmdLine::new("log")
                        .arg("level", "info")
                        .arg(
                            "msg",
                            Value::Str(format!(
                                "service {} started on host {}",
                                config.name, config.host
                            )),
                        )
                        .arg("service", config.name.as_str())
                        .arg("host", config.host.as_str()),
                )
                .map_err(|error| SpawnError::Register {
                    step: "logger",
                    error,
                })?;
        }

        // Full vocabulary: service commands inheriting the built-ins.
        let semantics = Arc::new(behavior.semantics().inheriting(&protocol::base_semantics()));

        let stop = Arc::new(AtomicBool::new(false));
        let crashed = Arc::new(AtomicBool::new(false));
        // Quiesce gate: while set, command threads refuse every verb except
        // liveness probes with a retryable `E_UPGRADING` error.
        let upgrading = Arc::new(AtomicBool::new(false));
        // Graceful stops deregister by default; `retire()` clears this so a
        // live upgrade's replacement registration is never clobbered by the
        // old incarnation's goodbye.
        let deregister = Arc::new(AtomicBool::new(true));
        metrics
            .gauge("daemon.incarnation")
            .set(config.incarnation as i64);
        // Bounded two-lane admission queue: the command plane sheds instead
        // of buffering without limit (see `crate::admission`).
        let (control_tx, control_rx) = admission_queue::<ControlMsg>(&config.admission, &metrics);
        // The shared ticket vault lets returning clients skip the full
        // handshake; by default it dies with the daemon, which is what
        // forces clients back onto the full handshake after a crash — a
        // live upgrade instead injects the old incarnation's vault so
        // sessions resume across the swap.
        let vault = config
            .ticket_vault
            .clone()
            .unwrap_or_else(|| Arc::new(TicketVault::with_default_ttl()));

        let mode = config.runtime.unwrap_or_else(RuntimeMode::from_env);
        let (backing, notifier) = match mode {
            RuntimeMode::Threads => {
                let (notifier, notifier_worker) = Notifier::spawn(
                    net.clone(),
                    config.host.clone(),
                    Arc::clone(&identity),
                    Arc::clone(&metrics),
                );
                let mut threads = Vec::with_capacity(4);

                // Control thread.
                {
                    let ctx = ServiceCtx::new(
                        net.clone(),
                        config.name.clone(),
                        config.class.clone(),
                        config.room.clone(),
                        config.host.clone(),
                        config.port,
                        Arc::clone(&identity),
                        config.asd.clone(),
                        config.logger.clone(),
                        notifier.clone(),
                        Arc::clone(&metrics),
                    );
                    let stop = Arc::clone(&stop);
                    let crashed = Arc::clone(&crashed);
                    let upgrading = Arc::clone(&upgrading);
                    let auth = config.auth.clone();
                    let name = config.name.clone();
                    let class = config.class.clone();
                    let room = config.room.clone();
                    let semantics = Arc::clone(&semantics);
                    let tick = config.tick;
                    let stats_interval = config.stats_interval;
                    let incarnation = config.incarnation;
                    let notifications = config.notifications.clone();
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("{name}-control"))
                            .spawn(move || {
                                control_loop(ControlParams {
                                    rx: control_rx,
                                    behavior,
                                    ctx,
                                    stop,
                                    crashed,
                                    upgrading,
                                    auth,
                                    name,
                                    class,
                                    room,
                                    semantics,
                                    tick,
                                    stats_interval,
                                    incarnation,
                                    notifications,
                                })
                            })
                            .expect("spawn control thread"),
                    );
                }

                // Accept thread (spawns command threads).
                {
                    let stop = Arc::clone(&stop);
                    let crashed = Arc::clone(&crashed);
                    let upgrading = Arc::clone(&upgrading);
                    let control_tx = control_tx.clone();
                    let identity = Arc::clone(&identity);
                    let semantics = Arc::clone(&semantics);
                    let name = config.name.clone();
                    let metrics = Arc::clone(&metrics);
                    let vault = Arc::clone(&vault);
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("{name}-accept"))
                            .spawn(move || {
                                accept_loop(
                                    listener, stop, crashed, upgrading, control_tx, identity,
                                    semantics, name, metrics, vault,
                                )
                            })
                            .expect("spawn accept thread"),
                    );
                }

                // Data thread.
                {
                    let stop = Arc::clone(&stop);
                    let crashed = Arc::clone(&crashed);
                    let control_tx = control_tx.clone();
                    let name = config.name.clone();
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("{name}-data"))
                            .spawn(move || data_loop(dsocket, stop, crashed, control_tx))
                            .expect("spawn data thread"),
                    );
                }

                // Main/lease thread.
                {
                    let stop = Arc::clone(&stop);
                    let crashed = Arc::clone(&crashed);
                    let deregister = Arc::clone(&deregister);
                    let net = net.clone();
                    let identity = Arc::clone(&identity);
                    let config2 = config.clone();
                    let metrics = Arc::clone(&metrics);
                    let retry_budget = Arc::clone(&retry_budget);
                    threads.push(
                        std::thread::Builder::new()
                            .name(format!("{}-main", config.name))
                            .spawn(move || {
                                lease_loop(
                                    net,
                                    config2,
                                    identity,
                                    stop,
                                    crashed,
                                    deregister,
                                    metrics,
                                    retry_budget,
                                )
                            })
                            .expect("spawn main thread"),
                    );
                }

                (
                    Backing::Threads {
                        threads,
                        worker: Some(notifier_worker),
                    },
                    notifier,
                )
            }
            RuntimeMode::Shared => {
                // One cooperative task carries all four roles; the notifier
                // becomes a second, smaller task on the same pool.
                let runtime = config
                    .runtime_pool
                    .clone()
                    .unwrap_or_else(|| Runtime::global().clone());
                let (notifier, notifier_task) = Notifier::cooperative(
                    net.clone(),
                    config.host.clone(),
                    Arc::clone(&identity),
                    Arc::clone(&metrics),
                );
                let mut ctx = ServiceCtx::new(
                    net.clone(),
                    config.name.clone(),
                    config.class.clone(),
                    config.room.clone(),
                    config.host.clone(),
                    config.port,
                    Arc::clone(&identity),
                    config.asd.clone(),
                    config.logger.clone(),
                    notifier.clone(),
                    Arc::clone(&metrics),
                );
                ctx.runtime = Some(runtime.clone());
                let mut registry = NotificationRegistry::new();
                for (watched, registration) in config.notifications.clone() {
                    registry.add(&watched, registration);
                }
                // Eagerly created so `aceStats` always reports them, even
                // at zero (same contract as the threaded control loop).
                let stats = DispatchStats {
                    panics: metrics.counter("control.panics"),
                    errors: metrics.counter("cmd.errors"),
                    verb_hists: HashMap::new(),
                };
                let lease = LeaseState::new(
                    net.clone(),
                    config.clone(),
                    Arc::clone(&identity),
                    &metrics,
                    Arc::clone(&retry_budget),
                );
                let now = Instant::now();
                let task = DaemonTask {
                    listener,
                    listener_dead: false,
                    dsocket,
                    dsocket_dead: false,
                    identity: Arc::clone(&identity),
                    vault: Arc::clone(&vault),
                    semantics: Arc::clone(&semantics),
                    auth: config.auth.clone(),
                    name: config.name.clone(),
                    class: config.class.clone(),
                    room: config.room.clone(),
                    incarnation: config.incarnation,
                    tick: config.tick,
                    stats_interval: config.stats_interval,
                    stop: Arc::clone(&stop),
                    crashed: Arc::clone(&crashed),
                    upgrading: Arc::clone(&upgrading),
                    deregister: Arc::clone(&deregister),
                    control_tx: control_tx.clone(),
                    control_rx,
                    behavior,
                    ctx,
                    registry,
                    stats,
                    queue_wait: metrics.histogram("control.queueWait"),
                    shed_deadline: metrics.counter("shed.deadline"),
                    accepted: metrics.counter("link.accepted"),
                    resume_hits: metrics.counter("link.resume_hits"),
                    full_handshakes: metrics.counter("link.full_handshakes"),
                    rejected: metrics.counter("cmd.rejected"),
                    upgrade_rejected: metrics.counter("upgrade.rejected"),
                    sealed_bytes: metrics.counter("link.sealedBytes"),
                    opened_bytes: metrics.counter("link.openedBytes"),
                    sessions: HashMap::new(),
                    next_session: 0,
                    ready: Arc::new(Mutex::new(Vec::new())),
                    wake_cell: Arc::new(WakeCell::new()),
                    lease,
                    started: false,
                    last_tick: now,
                    last_stats: now,
                };
                let main = runtime.spawn(Box::new(task));
                let notifier_handle = runtime.spawn(Box::new(notifier_task));
                (
                    Backing::Task {
                        main,
                        notifier: notifier_handle,
                    },
                    notifier,
                )
            }
        };

        Ok(DaemonHandle {
            name: config.name.clone(),
            addr,
            principal: identity.principal(),
            identity,
            incarnation: config.incarnation,
            config,
            stop,
            crashed,
            upgrading,
            deregister,
            ticket_vault: vault,
            metrics,
            control_tx,
            backing: Mutex::new(backing),
            notifier: Mutex::new(Some(notifier)),
        })
    }
}

/// What actually runs this daemon: the paper's four OS threads, or one
/// cooperative task (plus its notifier task) on the shared runtime.
enum Backing {
    Threads {
        threads: Vec<std::thread::JoinHandle<()>>,
        worker: Option<crate::notify::NotifierWorker>,
    },
    Task {
        main: TaskHandle,
        notifier: TaskHandle,
    },
    /// Already joined/waited; nothing left to tear down.
    Finished,
}

/// Handle to a running daemon.
pub struct DaemonHandle {
    name: String,
    addr: Addr,
    principal: String,
    identity: Arc<KeyPair>,
    incarnation: u64,
    config: DaemonConfig,
    stop: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    upgrading: Arc<AtomicBool>,
    deregister: Arc<AtomicBool>,
    ticket_vault: Arc<TicketVault>,
    metrics: Arc<MetricsRegistry>,
    control_tx: AdmissionQueue<ControlMsg>,
    backing: Mutex<Backing>,
    notifier: Mutex<Option<Notifier>>,
}

impl DaemonHandle {
    /// The daemon's service name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The daemon's service address.
    pub fn addr(&self) -> &Addr {
        &self.addr
    }

    /// The daemon's authenticated principal.
    pub fn principal(&self) -> &str {
        &self.principal
    }

    /// The daemon's key pair — a live upgrade reuses it so resumption
    /// tickets minted by the old incarnation stay valid for the new one.
    pub fn identity(&self) -> &KeyPair {
        &self.identity
    }

    /// The spawn generation this daemon was started under.
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    /// The configuration this daemon was spawned with.  A live upgrade
    /// clones it as the replacement's base config, so drivers don't have
    /// to reconstruct name/class/room/port wiring by hand.
    pub fn config(&self) -> &DaemonConfig {
        &self.config
    }

    /// The resumption-ticket vault this daemon serves from — handed to
    /// the replacement incarnation across a live upgrade.
    pub fn ticket_vault(&self) -> Arc<TicketVault> {
        Arc::clone(&self.ticket_vault)
    }

    /// Is the daemon currently quiesced for an upgrade?
    pub fn is_upgrading(&self) -> bool {
        self.upgrading.load(Ordering::SeqCst)
    }

    /// This daemon's metrics registry (`link.resume_hits`, `upgrade.*`, …).
    pub fn metrics(&self) -> &Arc<MetricsRegistry> {
        &self.metrics
    }

    /// Is the daemon still running (not stopped or crashed)?
    pub fn is_running(&self) -> bool {
        !self.stop.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: deregisters from the ASD/Room DB, logs the stop,
    /// then joins all threads.
    pub fn shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        // Shutdown bypasses admission: it must land even when both lanes
        // are saturated.
        self.control_tx.force_priority(ControlMsg::Stop);
        self.join_threads();
    }

    /// Graceful stop *without* deregistration: `on_stop` runs (workers
    /// join, state flushes) but the ASD/Room DB registrations are left in
    /// place for the replacement incarnation that has already (or is about
    /// to) register under the same name.  Used by live upgrades, where a
    /// late `removeService` from the old instance would clobber the new
    /// instance's registration — the lease cleans up if no replacement
    /// ever arrives.
    pub fn retire(&self) {
        self.deregister.store(false, Ordering::SeqCst);
        self.shutdown();
    }

    /// Abrupt crash: threads stop immediately and *no* deregistration
    /// happens — exactly the failure the ASD's lease mechanism exists to
    /// clean up (§2.4).
    pub fn crash(&self) {
        self.crashed.store(true, Ordering::SeqCst);
        self.stop.store(true, Ordering::SeqCst);
        self.control_tx.force_priority(ControlMsg::Stop);
        self.join_threads();
    }

    fn join_threads(&self) {
        let backing = std::mem::replace(&mut *self.backing.lock(), Backing::Finished);
        match backing {
            Backing::Threads { threads, worker } => {
                for t in threads {
                    let _ = t.join();
                }
                // Dropping the last notifier lets its worker drain and exit.
                drop(self.notifier.lock().take());
                if let Some(worker) = worker {
                    worker.join();
                }
            }
            Backing::Task { main, notifier } => {
                // The task observes the stop flag on its next poll; waiting
                // on the handle guarantees the task object (listener bind,
                // datagram socket) is dropped before we return — the
                // live-upgrade respawn path rebinds the same address.
                main.wake();
                main.wait(Duration::from_secs(60));
                drop(self.notifier.lock().take());
                notifier.wake();
                notifier.wait(Duration::from_secs(60));
            }
            Backing::Finished => {
                drop(self.notifier.lock().take());
            }
        }
    }
}

impl Drop for DaemonHandle {
    fn drop(&mut self) {
        if !self.stop.load(Ordering::SeqCst) {
            self.shutdown();
        } else {
            self.join_threads();
        }
    }
}

impl std::fmt::Debug for DaemonHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DaemonHandle({} @ {})", self.name, self.addr)
    }
}

// ---------------------------------------------------------------------------
// Thread bodies
// ---------------------------------------------------------------------------

const ACCEPT_POLL: Duration = Duration::from_millis(25);
const COMMAND_POLL: Duration = Duration::from_millis(50);
const REPLY_TIMEOUT: Duration = Duration::from_secs(30);

#[allow(clippy::too_many_arguments)]
fn accept_loop(
    listener: ace_net::Listener,
    stop: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    upgrading: Arc<AtomicBool>,
    control_tx: AdmissionQueue<ControlMsg>,
    identity: Arc<KeyPair>,
    semantics: Arc<Semantics>,
    name: String,
    metrics: Arc<MetricsRegistry>,
    vault: Arc<TicketVault>,
) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept_timeout(ACCEPT_POLL) {
            Ok(conn) => {
                metrics.counter("link.accepted").incr();
                let stop = Arc::clone(&stop);
                let upgrading = Arc::clone(&upgrading);
                let control_tx = control_tx.clone();
                let identity = Arc::clone(&identity);
                let semantics = Arc::clone(&semantics);
                let metrics = Arc::clone(&metrics);
                let vault = Arc::clone(&vault);
                // Command threads detach; they exit promptly on `stop` or
                // when the peer hangs up.
                let _ = std::thread::Builder::new()
                    .name(format!("{name}-command"))
                    .spawn(move || {
                        command_loop(
                            conn, stop, upgrading, control_tx, identity, semantics, metrics, vault,
                        )
                    });
            }
            Err(NetError::Timeout) => continue,
            Err(_) => {
                // Listener gone (host killed).  The bind never comes back —
                // only a respawn can re-listen — so take the whole daemon
                // down as crashed instead of leaving a zombie that renews
                // its lease and answers probes over surviving sessions
                // while refusing every new connection (see the cooperative
                // task's accept path for the full rationale).
                crashed.store(true, Ordering::SeqCst);
                stop.store(true, Ordering::SeqCst);
                break;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn command_loop(
    conn: ace_net::Connection,
    stop: Arc<AtomicBool>,
    upgrading: Arc<AtomicBool>,
    control_tx: AdmissionQueue<ControlMsg>,
    identity: Arc<KeyPair>,
    semantics: Arc<Semantics>,
    metrics: Arc<MetricsRegistry>,
    vault: Arc<TicketVault>,
) {
    let Ok(mut link) = SecureLink::accept_with_tickets(conn, &identity, &vault) else {
        return; // failed handshake: drop the connection
    };
    if link.resumed() {
        metrics.counter("link.resume_hits").incr();
    } else {
        metrics.counter("link.full_handshakes").incr();
    }
    link.attach_metrics(
        metrics.counter("link.sealedBytes"),
        metrics.counter("link.openedBytes"),
    );
    // Fetched once per connection so the per-message path never takes the
    // registry lock.
    let rejected = metrics.counter("cmd.rejected");
    let upgrade_rejected = metrics.counter("upgrade.rejected");
    let shed_deadline = metrics.counter("shed.deadline");
    let from = ClientInfo {
        principal: link.peer_principal().to_string(),
        addr: link.peer_addr().clone(),
    };
    while !stop.load(Ordering::SeqCst) {
        let cmd = match link.recv_cmd(COMMAND_POLL) {
            Ok(cmd) => cmd,
            Err(LinkError::Net(NetError::Timeout)) => continue,
            Err(LinkError::Malformed(msg)) => {
                let _ = link.send_cmd(&Reply::err(ErrorCode::Parse, msg).to_cmdline());
                continue;
            }
            // Closed peer, dead host, or a tampered frame: end the session.
            Err(_) => break,
        };
        // Semantic validation happens here, on the command thread, exactly
        // as §2.2 describes the receiving side's parser doing.
        if let Err(e) = semantics.validate(&cmd) {
            rejected.incr();
            let _ = link.send_cmd(&Reply::err(ErrorCode::Semantics, e.to_string()).to_cmdline());
            continue;
        }
        // Quiesce gate: once an upgrade begins, refuse new work here on
        // the command thread — fast, and it never reaches the draining
        // control queue.  Probes and the upgrade plane itself stay open.
        if upgrading.load(Ordering::SeqCst)
            && !matches!(cmd.name(), "ping" | "describe" | "aceUpgrade")
        {
            upgrade_rejected.incr();
            let _ = link.send_cmd(
                &Reply::err(ErrorCode::Upgrading, "service is upgrading; retry").to_cmdline(),
            );
            continue;
        }
        // Overload control happens here, on the command thread, before the
        // control queue: expired deadlines and saturated lanes are refused
        // with retryable errors instead of buffered.
        let now = Instant::now();
        let deadline = cmd
            .deadline_ms()
            .map(|ms| now + Duration::from_millis(ms.max(0) as u64));
        if control_tx.enforce_deadlines() {
            if let Some(ms) = cmd.deadline_ms() {
                if ms <= 0 {
                    shed_deadline.incr();
                    let _ = link.send_cmd(
                        &Reply::err(ErrorCode::Deadline, "deadline already expired").to_cmdline(),
                    );
                    continue;
                }
            }
        }
        let lane = if protocol::is_priority_verb(cmd.name()) {
            Lane::Priority
        } else {
            Lane::Bulk
        };
        let (reply_tx, reply_rx) = crossbeam_channel::bounded(1);
        match control_tx.offer(
            lane,
            ControlMsg::Execute {
                cmd,
                from: from.clone(),
                reply: reply_tx,
                enqueued: now,
                deadline,
            },
        ) {
            Ok(()) => {}
            Err(AdmitError::Busy) => {
                let _ = link.send_cmd(
                    &Reply::err(ErrorCode::Busy, "admission queue saturated; retry later")
                        .to_cmdline(),
                );
                continue;
            }
            Err(AdmitError::Closed) => break, // control thread gone
        }
        let reply = reply_rx.recv_timeout(REPLY_TIMEOUT).unwrap_or_else(|_| {
            Reply::err(ErrorCode::Internal, "control thread did not reply").to_cmdline()
        });
        if link.send_cmd(&reply).is_err() {
            break;
        }
    }
}

fn data_loop(
    dsocket: ace_net::DatagramSocket,
    stop: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    control_tx: AdmissionQueue<ControlMsg>,
) {
    while !stop.load(Ordering::SeqCst) {
        match dsocket.recv_timeout(COMMAND_POLL) {
            Ok(datagram) => {
                // Datagrams are lossy by contract: a saturated bulk lane
                // drops them (counted by the admission shed counters)
                // rather than buffering without bound.
                match control_tx.offer(Lane::Bulk, ControlMsg::Data(datagram)) {
                    Ok(()) | Err(AdmitError::Busy) => {}
                    Err(AdmitError::Closed) => break,
                }
            }
            Err(NetError::Timeout) => continue,
            Err(_) => {
                // Dead socket = killed host: crash the daemon (see
                // accept_loop).
                crashed.store(true, Ordering::SeqCst);
                stop.store(true, Ordering::SeqCst);
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Cooperative daemon task (RuntimeMode::Shared)
// ---------------------------------------------------------------------------

// Per-poll work caps — fairness bounds so one busy daemon yields the worker
// back to its co-scheduled siblings instead of monopolizing it.
const ACCEPTS_PER_POLL: usize = 64;
const FRAMES_PER_SESSION: usize = 32;
const DGRAMS_PER_POLL: usize = 256;
const CONTROL_PER_POLL: usize = 256;
/// A connection whose client never starts the handshake is dropped after
/// this (swept on the tick cadence).
const PRE_HANDSHAKE_TTL: Duration = Duration::from_secs(5);

/// Granular readiness: one signal per session, so a frame arriving on one
/// link marks only that session ready instead of forcing the task to scan
/// every session it owns.
struct SessionSignal {
    id: u64,
    /// Dedup: set while the id sits in `ready`.
    queued: AtomicBool,
    ready: Arc<Mutex<Vec<u64>>>,
    /// The daemon task's wake cell (holds the task waker).
    cell: Arc<WakeCell>,
}

impl SessionSignal {
    /// Queue this session for the next poll (idempotent while queued).
    fn mark(&self) {
        if !self.queued.swap(true, Ordering::AcqRel) {
            self.ready.lock().push(self.id);
        }
    }
}

impl Wake for SessionSignal {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.mark();
        self.cell.wake();
    }
}

/// One client connection owned by the daemon task.
enum Session {
    /// Accepted but not yet handshaken.  The handshake is deferred until
    /// the client's hello arrives, so `accept_with_tickets` (a blocking
    /// exchange) runs with data already in hand and finishes promptly.
    Handshaking {
        conn: Option<ace_net::Connection>,
        since: Instant,
    },
    /// Secure link up.  At most one command is in flight per session —
    /// exactly the ordering the threaded shell's per-connection command
    /// thread enforced.
    Established {
        link: SecureLink,
        from: ClientInfo,
        /// Reply channel (and offer time) of the in-flight command.
        pending: Option<(Receiver<CmdLine>, Instant)>,
    },
}

struct SessionSlot {
    session: Session,
    signal: Arc<SessionSignal>,
}

/// A whole daemon as one cooperative task: accept, handshake, command
/// parsing/gating, admission, dispatch, replies, datagrams, ticks, stats,
/// and lease renewal — everything the four threads did, multiplexed onto
/// the shared runtime's worker pool.
struct DaemonTask {
    listener: ace_net::Listener,
    listener_dead: bool,
    dsocket: ace_net::DatagramSocket,
    dsocket_dead: bool,
    identity: Arc<KeyPair>,
    vault: Arc<TicketVault>,
    semantics: Arc<Semantics>,
    auth: AuthMode,
    name: String,
    class: String,
    room: String,
    incarnation: u64,
    tick: Duration,
    stats_interval: Duration,
    stop: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    upgrading: Arc<AtomicBool>,
    deregister: Arc<AtomicBool>,
    control_tx: AdmissionQueue<ControlMsg>,
    control_rx: AdmissionReceiver<ControlMsg>,
    behavior: Box<dyn ServiceBehavior>,
    ctx: ServiceCtx,
    registry: NotificationRegistry,
    stats: DispatchStats,
    queue_wait: Arc<Histogram>,
    shed_deadline: Arc<Counter>,
    accepted: Arc<Counter>,
    resume_hits: Arc<Counter>,
    full_handshakes: Arc<Counter>,
    rejected: Arc<Counter>,
    upgrade_rejected: Arc<Counter>,
    sealed_bytes: Arc<Counter>,
    opened_bytes: Arc<Counter>,
    sessions: HashMap<u64, SessionSlot>,
    next_session: u64,
    ready: Arc<Mutex<Vec<u64>>>,
    wake_cell: Arc<WakeCell>,
    lease: LeaseState,
    started: bool,
    last_tick: Instant,
    last_stats: Instant,
}

impl RuntimeTask for DaemonTask {
    fn poll(&mut self, cx: &mut TaskContext<'_>) -> TaskPoll {
        // Register wakers BEFORE checking for work: an event landing
        // between the check and the park must still wake us (spurious
        // wakes are safe; lost wakes are not).
        self.wake_cell.register(cx.waker());
        if !self.listener_dead {
            self.listener.register_waker(cx.waker());
        }
        if !self.dsocket_dead {
            self.dsocket.register_waker(cx.waker());
        }
        self.control_rx.register_waker(cx.waker());

        if !self.started {
            self.started = true;
            self.behavior.on_start(&mut self.ctx);
            drain_events(&mut self.ctx, &self.registry, &self.name);
        }

        // An external stop (shutdown/crash/retire) skips new intake
        // entirely, mirroring the threaded control loop's top-of-loop
        // check; buffered frames and already-computed replies still go out
        // first.
        if self.stop.load(Ordering::SeqCst) {
            return self.stop_poll();
        }

        let mut more = false;
        self.poll_accepts(&mut more);
        self.poll_datagrams(&mut more);
        self.poll_sessions(&mut more);
        self.drain_control(&mut more);
        // Replies flush AFTER dispatch and BEFORE the stop check below, so
        // the client that sent `shutdown` receives its acknowledgement
        // before the daemon tears down.
        self.flush_replies(&mut more);

        if self.stop.load(Ordering::SeqCst) {
            return self.stop_poll();
        }

        let now = Instant::now();
        if now.duration_since(self.last_tick) >= self.tick {
            self.last_tick = now;
            self.behavior.on_tick(&mut self.ctx);
            drain_events(&mut self.ctx, &self.registry, &self.name);
            if self.ctx.stop_requested {
                self.stop.store(true, Ordering::SeqCst);
            }
            self.sweep_stale_handshakes(now);
        }
        if self.stop.load(Ordering::SeqCst) {
            return self.stop_poll();
        }
        if !self.stats_interval.is_zero() && self.last_stats.elapsed() >= self.stats_interval {
            self.last_stats = Instant::now();
            // Shared-runtime gauges ride the same periodic stats event as
            // the daemon's own counters.
            if let Some(rt) = &self.ctx.runtime {
                rt.publish_into(self.ctx.metrics());
            }
            self.behavior.on_stats(&mut self.ctx);
            self.ctx.push_stats_event();
        }
        self.lease.tick();

        if more {
            return TaskPoll::Again;
        }
        // Park until an endpoint wakes us or the earliest periodic
        // deadline (tick, stats, lease renewal) arrives.  The tick timer
        // also bounds how long an in-flight reply waits for its timeout
        // check.
        let mut at = self.last_tick + self.tick;
        if !self.stats_interval.is_zero() {
            at = at.min(self.last_stats + self.stats_interval);
        }
        if let Some(renew) = self.lease.next_deadline() {
            at = at.min(renew);
        }
        cx.set_timer(at);
        TaskPoll::Pending
    }
}

impl DaemonTask {
    /// The task's last act.  The threaded command threads kept reading
    /// frames right up to the stop flag and blocked for in-flight replies,
    /// so a client whose frame raced the teardown still got an answer
    /// (E_UPGRADING during a quiesce, E_INTERNAL for work the dying
    /// control queue abandoned) before its link closed.  Reproduce that
    /// here, and run `finish` (on_stop + the goodbye sequence — slow,
    /// networked) *before* the sweep so the unread-frame window between
    /// the sweep and the link drop is microseconds, not the whole
    /// teardown.
    fn stop_poll(&mut self) -> TaskPoll {
        self.finish();
        let mut ignored = false;
        self.poll_sessions(&mut ignored);
        while self.control_rx.try_recv().is_some() {}
        self.flush_replies(&mut ignored);
        TaskPoll::Complete
    }

    fn poll_accepts(&mut self, more: &mut bool) {
        if self.listener_dead {
            return;
        }
        let mut n = 0;
        while n < ACCEPTS_PER_POLL {
            match self.listener.try_accept() {
                Ok(Some(conn)) => {
                    n += 1;
                    self.accepted.incr();
                    let id = self.next_session;
                    self.next_session += 1;
                    let signal = Arc::new(SessionSignal {
                        id,
                        queued: AtomicBool::new(false),
                        ready: Arc::clone(&self.ready),
                        cell: Arc::clone(&self.wake_cell),
                    });
                    let waker = Waker::from(Arc::clone(&signal));
                    conn.register_waker(&waker);
                    // The hello may have raced the registration.
                    if conn.has_pending() {
                        signal.mark();
                    }
                    self.sessions.insert(
                        id,
                        SessionSlot {
                            session: Session::Handshaking {
                                conn: Some(conn),
                                since: Instant::now(),
                            },
                            signal,
                        },
                    );
                }
                Ok(None) => return,
                Err(_) => {
                    // Listener gone: on the simulated net that only happens
                    // when this host was killed, and a revived host never
                    // restores the bind — only a respawned daemon can listen
                    // again.  Surviving here would leave a zombie: still
                    // renewing its lease and answering pings over sessions
                    // that outlived the crash, yet refusing every new
                    // connection — which pins the supervisor's health probes
                    // green and blocks the respawn forever.  Die as crashed
                    // so the lease lapses and recovery proceeds.
                    self.listener_dead = true;
                    self.crashed.store(true, Ordering::SeqCst);
                    self.stop.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
        *more = true;
    }

    fn poll_datagrams(&mut self, more: &mut bool) {
        if self.dsocket_dead {
            return;
        }
        let mut n = 0;
        while n < DGRAMS_PER_POLL {
            match self.dsocket.poll_recv() {
                Ok(Some(datagram)) => {
                    n += 1;
                    // Datagrams are lossy by contract: a saturated bulk
                    // lane drops them (counted by the admission shed
                    // counters) rather than buffering without bound.
                    match self
                        .control_tx
                        .offer(Lane::Bulk, ControlMsg::Data(datagram))
                    {
                        Ok(()) | Err(AdmitError::Busy) => {}
                        Err(AdmitError::Closed) => return,
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    // Same as a dead listener: the bind is gone for good
                    // (host killed), so the daemon dies as crashed rather
                    // than linger half-reachable.
                    self.dsocket_dead = true;
                    self.crashed.store(true, Ordering::SeqCst);
                    self.stop.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
        *more = true;
    }

    fn poll_sessions(&mut self, more: &mut bool) {
        let ready: Vec<u64> = std::mem::take(&mut *self.ready.lock());
        for id in ready {
            if !self.progress_handshake(id) {
                continue;
            }
            self.read_session_frames(id, more);
        }
    }

    /// Advance a handshaking session; `true` when the session is (now)
    /// established and should be read from.
    fn progress_handshake(&mut self, id: u64) -> bool {
        let Some(slot) = self.sessions.get_mut(&id) else {
            return false;
        };
        // Clear BEFORE processing: a wake during processing re-queues the
        // session (and re-wakes the task) instead of being lost.
        slot.signal.queued.store(false, Ordering::Release);
        let Session::Handshaking { conn, .. } = &mut slot.session else {
            return true;
        };
        if !conn.as_ref().map(|c| c.has_pending()).unwrap_or(false) {
            return false; // spurious wake; TTL sweep reaps abandoned peers
        }
        let c = conn.take().expect("handshaking session holds its conn");
        // The client's hello is already here, so this bounded blocking
        // exchange completes promptly (the watchdog covers the slow case).
        match SecureLink::accept_with_tickets(c, &self.identity, &self.vault) {
            Ok(mut link) => {
                if link.resumed() {
                    self.resume_hits.incr();
                } else {
                    self.full_handshakes.incr();
                }
                link.attach_metrics(
                    Arc::clone(&self.sealed_bytes),
                    Arc::clone(&self.opened_bytes),
                );
                let waker = Waker::from(Arc::clone(&slot.signal));
                link.register_waker(&waker);
                let from = ClientInfo {
                    principal: link.peer_principal().to_string(),
                    addr: link.peer_addr().clone(),
                };
                slot.session = Session::Established {
                    link,
                    from,
                    pending: None,
                };
                true
            }
            Err(_) => {
                // Failed handshake: drop the connection.
                self.sessions.remove(&id);
                false
            }
        }
    }

    /// Parse, validate, gate, and admit frames from one established
    /// session — the command thread's per-message pipeline, minus the
    /// blocking reply wait (see `flush_replies`).
    fn read_session_frames(&mut self, id: u64, more: &mut bool) {
        let mut dead = false;
        {
            let Some(slot) = self.sessions.get_mut(&id) else {
                return;
            };
            let Session::Established {
                link,
                from,
                pending,
            } = &mut slot.session
            else {
                return;
            };
            if pending.is_some() {
                return; // one in flight; flush_replies re-marks the session
            }
            let mut frames = 0;
            while frames < FRAMES_PER_SESSION {
                let cmd = match link.try_recv_cmd() {
                    Ok(Some(cmd)) => cmd,
                    Ok(None) => break,
                    Err(LinkError::Malformed(msg)) => {
                        frames += 1;
                        if link
                            .send_cmd(&Reply::err(ErrorCode::Parse, msg).to_cmdline())
                            .is_err()
                        {
                            dead = true;
                            break;
                        }
                        continue;
                    }
                    // Closed peer, dead host, or a tampered frame: end the
                    // session.
                    Err(_) => {
                        dead = true;
                        break;
                    }
                };
                frames += 1;
                // Semantic validation happens before admission, exactly as
                // §2.2 describes the receiving side's parser doing.
                if let Err(e) = self.semantics.validate(&cmd) {
                    self.rejected.incr();
                    if link
                        .send_cmd(&Reply::err(ErrorCode::Semantics, e.to_string()).to_cmdline())
                        .is_err()
                    {
                        dead = true;
                        break;
                    }
                    continue;
                }
                // Quiesce gate: once an upgrade begins, refuse new work
                // before it reaches the draining control queue.  Probes and
                // the upgrade plane itself stay open.
                if self.upgrading.load(Ordering::SeqCst)
                    && !matches!(cmd.name(), "ping" | "describe" | "aceUpgrade")
                {
                    self.upgrade_rejected.incr();
                    if link
                        .send_cmd(
                            &Reply::err(ErrorCode::Upgrading, "service is upgrading; retry")
                                .to_cmdline(),
                        )
                        .is_err()
                    {
                        dead = true;
                        break;
                    }
                    continue;
                }
                // Overload control before the control queue: expired
                // deadlines and saturated lanes are refused with retryable
                // errors instead of buffered.
                let now = Instant::now();
                let deadline = cmd
                    .deadline_ms()
                    .map(|ms| now + Duration::from_millis(ms.max(0) as u64));
                if self.control_tx.enforce_deadlines() {
                    if let Some(ms) = cmd.deadline_ms() {
                        if ms <= 0 {
                            self.shed_deadline.incr();
                            if link
                                .send_cmd(
                                    &Reply::err(ErrorCode::Deadline, "deadline already expired")
                                        .to_cmdline(),
                                )
                                .is_err()
                            {
                                dead = true;
                                break;
                            }
                            continue;
                        }
                    }
                }
                let lane = if protocol::is_priority_verb(cmd.name()) {
                    Lane::Priority
                } else {
                    Lane::Bulk
                };
                let (reply_tx, reply_rx) = crossbeam_channel::bounded(1);
                match self.control_tx.offer(
                    lane,
                    ControlMsg::Execute {
                        cmd,
                        from: from.clone(),
                        reply: reply_tx,
                        enqueued: now,
                        deadline,
                    },
                ) {
                    Ok(()) => {
                        *pending = Some((reply_rx, now));
                        break; // one in flight per session
                    }
                    Err(AdmitError::Busy) => {
                        if link
                            .send_cmd(
                                &Reply::err(
                                    ErrorCode::Busy,
                                    "admission queue saturated; retry later",
                                )
                                .to_cmdline(),
                            )
                            .is_err()
                        {
                            dead = true;
                            break;
                        }
                        continue;
                    }
                    Err(AdmitError::Closed) => {
                        dead = true;
                        break;
                    }
                }
            }
            if frames >= FRAMES_PER_SESSION && !dead {
                // Cap hit with input possibly still buffered: re-queue the
                // session and yield instead of starving siblings.
                slot.signal.mark();
                *more = true;
            }
        }
        if dead {
            self.sessions.remove(&id);
        }
    }

    /// The control thread's dequeue half: CoDel accounting, queue-lapsed
    /// deadline shedding, upgrade plane, dispatch.
    fn drain_control(&mut self, more: &mut bool) {
        let mut n = 0;
        while n < CONTROL_PER_POLL {
            match self.control_rx.try_recv() {
                Some(ControlMsg::Execute {
                    cmd,
                    from,
                    reply,
                    enqueued,
                    deadline,
                }) => {
                    n += 1;
                    let waited = enqueued.elapsed();
                    self.control_rx.note_wait(waited);
                    self.queue_wait.record(waited);
                    // Shed work whose client-side budget lapsed in queue.
                    if self.control_rx.enforce_deadlines() {
                        if let Some(d) = deadline {
                            if Instant::now() >= d {
                                self.shed_deadline.incr();
                                let _ = reply.send(
                                    Reply::err(
                                        ErrorCode::Deadline,
                                        "deadline expired in queue; shed before execution",
                                    )
                                    .to_cmdline(),
                                );
                                continue;
                            }
                        }
                    }
                    if cmd.name() == "aceUpgrade" {
                        let response = handle_upgrade(
                            &self.control_rx,
                            &mut self.behavior,
                            &mut self.ctx,
                            &mut self.registry,
                            &mut self.stats,
                            &self.upgrading,
                            &self.auth,
                            &self.name,
                            &self.class,
                            &self.room,
                            &self.semantics,
                            self.incarnation,
                            &cmd,
                            &from,
                            &self.stop,
                        );
                        let _ = reply.send(response.to_cmdline());
                        continue;
                    }
                    dispatch_execute(
                        &mut self.behavior,
                        &mut self.ctx,
                        &mut self.registry,
                        &mut self.stats,
                        &self.auth,
                        &self.name,
                        &self.class,
                        &self.room,
                        &self.semantics,
                        self.incarnation,
                        cmd,
                        from,
                        reply,
                        deadline,
                        &self.stop,
                    );
                }
                Some(ControlMsg::Data(datagram)) => {
                    n += 1;
                    self.behavior.on_data(&mut self.ctx, datagram);
                    drain_events(&mut self.ctx, &self.registry, &self.name);
                }
                Some(ControlMsg::Stop) => {
                    self.stop.store(true, Ordering::SeqCst);
                    return;
                }
                None => return,
            }
        }
        *more = true;
    }

    /// Deliver finished replies back onto their sessions — the command
    /// thread's `reply_rx.recv_timeout` made non-blocking.
    fn flush_replies(&mut self, more: &mut bool) {
        let mut dead: Vec<u64> = Vec::new();
        for (&id, slot) in self.sessions.iter_mut() {
            let Session::Established { link, pending, .. } = &mut slot.session else {
                continue;
            };
            let Some((reply_rx, offered)) = pending else {
                continue;
            };
            let reply = match reply_rx.try_recv() {
                Ok(reply) => reply,
                Err(TryRecvError::Empty) => {
                    if offered.elapsed() < REPLY_TIMEOUT {
                        continue;
                    }
                    Reply::err(ErrorCode::Internal, "control plane did not reply").to_cmdline()
                }
                Err(TryRecvError::Disconnected) => {
                    Reply::err(ErrorCode::Internal, "control plane did not reply").to_cmdline()
                }
            };
            *pending = None;
            if link.send_cmd(&reply).is_err() {
                dead.push(id);
            } else {
                // More frames may be buffered behind the one just
                // answered.
                slot.signal.mark();
                *more = true;
            }
        }
        for id in dead {
            self.sessions.remove(&id);
        }
    }

    fn sweep_stale_handshakes(&mut self, now: Instant) {
        self.sessions.retain(|_, slot| match &slot.session {
            Session::Handshaking { since, .. } => now.duration_since(*since) < PRE_HANDSHAKE_TTL,
            Session::Established { .. } => true,
        });
    }

    /// Graceful teardown: `on_stop` (unless crashed) and the Fig. 9
    /// goodbye sequence.  The listener/datagram binds release when the
    /// runtime drops this task — before `TaskHandle::wait` returns.
    fn finish(&mut self) {
        let crashed = self.crashed.load(Ordering::SeqCst);
        if !crashed {
            self.behavior.on_stop(&mut self.ctx);
        }
        self.lease
            .goodbye(crashed, self.deregister.load(Ordering::SeqCst));
    }
}

/// Everything the control thread owns, bundled so the spawn site stays
/// readable as the daemon grows capabilities.
struct ControlParams {
    rx: AdmissionReceiver<ControlMsg>,
    behavior: Box<dyn ServiceBehavior>,
    ctx: ServiceCtx,
    stop: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    upgrading: Arc<AtomicBool>,
    auth: AuthMode,
    name: String,
    class: String,
    room: String,
    semantics: Arc<Semantics>,
    tick: Duration,
    stats_interval: Duration,
    incarnation: u64,
    notifications: Vec<(String, Registration)>,
}

/// Per-dispatch bookkeeping shared between the main loop and the upgrade
/// drain (which executes queued verbs through the same path).
struct DispatchStats {
    panics: Arc<Counter>,
    errors: Arc<Counter>,
    /// Per-verb service-time histograms, cached so the hot path never takes
    /// the registry lock after a verb's first execution.
    verb_hists: HashMap<String, Arc<Histogram>>,
}

fn control_loop(params: ControlParams) {
    let ControlParams {
        rx,
        mut behavior,
        mut ctx,
        stop,
        crashed,
        upgrading,
        auth,
        name,
        class,
        room,
        semantics,
        tick,
        stats_interval,
        incarnation,
        notifications,
    } = params;
    let mut registry = NotificationRegistry::new();
    // Listeners carried over from the previous incarnation (live upgrade)
    // are live before the first command executes.
    for (watched, registration) in notifications {
        registry.add(&watched, registration);
    }
    // Eagerly created so `aceStats` always reports them, even at zero.
    let mut stats = DispatchStats {
        panics: ctx.metrics().counter("control.panics"),
        errors: ctx.metrics().counter("cmd.errors"),
        verb_hists: HashMap::new(),
    };
    let queue_wait = ctx.metrics().histogram("control.queueWait");
    let shed_deadline = ctx.metrics().counter("shed.deadline");
    let mut last_stats = Instant::now();
    behavior.on_start(&mut ctx);
    drain_events(&mut ctx, &registry, &name);

    loop {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        match rx.recv_timeout(tick) {
            Ok(ControlMsg::Execute {
                cmd,
                from,
                reply,
                enqueued,
                deadline,
            }) => {
                // Feed the CoDel estimator (the queue-depth gauge is kept
                // current by the admission queue itself, on enqueue *and*
                // dequeue).
                let waited = enqueued.elapsed();
                rx.note_wait(waited);
                queue_wait.record(waited);
                // Shed work whose client-side budget lapsed in queue: the
                // caller is gone, executing would burn capacity for nobody.
                if rx.enforce_deadlines() {
                    if let Some(d) = deadline {
                        if Instant::now() >= d {
                            shed_deadline.incr();
                            let _ = reply.send(
                                Reply::err(
                                    ErrorCode::Deadline,
                                    "deadline expired in queue; shed before execution",
                                )
                                .to_cmdline(),
                            );
                            continue;
                        }
                    }
                }
                if cmd.name() == "aceUpgrade" {
                    let response = handle_upgrade(
                        &rx,
                        &mut behavior,
                        &mut ctx,
                        &mut registry,
                        &mut stats,
                        &upgrading,
                        &auth,
                        &name,
                        &class,
                        &room,
                        &semantics,
                        incarnation,
                        &cmd,
                        &from,
                        &stop,
                    );
                    let _ = reply.send(response.to_cmdline());
                    continue;
                }
                dispatch_execute(
                    &mut behavior,
                    &mut ctx,
                    &mut registry,
                    &mut stats,
                    &auth,
                    &name,
                    &class,
                    &room,
                    &semantics,
                    incarnation,
                    cmd,
                    from,
                    reply,
                    deadline,
                    &stop,
                );
            }
            Ok(ControlMsg::Data(datagram)) => {
                behavior.on_data(&mut ctx, datagram);
                drain_events(&mut ctx, &registry, &name);
            }
            Ok(ControlMsg::Stop) => break,
            Err(AdmissionRecvError::Timeout) => {
                behavior.on_tick(&mut ctx);
                drain_events(&mut ctx, &registry, &name);
                if ctx.stop_requested {
                    stop.store(true, Ordering::SeqCst);
                }
            }
            Err(AdmissionRecvError::Disconnected) => break,
        }
        if !stats_interval.is_zero() && last_stats.elapsed() >= stats_interval {
            last_stats = Instant::now();
            behavior.on_stats(&mut ctx);
            ctx.push_stats_event();
        }
    }
    if !crashed.load(Ordering::SeqCst) {
        behavior.on_stop(&mut ctx);
    }
}

/// Execute one queued command end-to-end: authorize + run (panic-proofed),
/// record service time, send the reply, fire notifications, drain events.
#[allow(clippy::too_many_arguments)]
fn dispatch_execute(
    behavior: &mut Box<dyn ServiceBehavior>,
    ctx: &mut ServiceCtx,
    registry: &mut NotificationRegistry,
    stats: &mut DispatchStats,
    auth: &AuthMode,
    name: &str,
    class: &str,
    room: &str,
    semantics: &Semantics,
    incarnation: u64,
    cmd: CmdLine,
    from: ClientInfo,
    reply: Sender<CmdLine>,
    deadline: Option<Instant>,
    stop: &AtomicBool,
) {
    let started = Instant::now();
    // Handlers (and any downstream call they make) see the remaining
    // client budget through `ctx.time_remaining()`.
    ctx.set_deadline(deadline);
    // A panicking handler must not take down the control thread — the
    // caller gets an Internal error and the daemon keeps serving everyone
    // else.
    let response = std::panic::catch_unwind(AssertUnwindSafe(|| {
        execute(
            behavior,
            ctx,
            registry,
            auth,
            name,
            class,
            room,
            semantics,
            incarnation,
            &cmd,
            &from,
        )
    }))
    .unwrap_or_else(|_| {
        stats.panics.incr();
        ctx.log("error", format!("handler for `{}` panicked", cmd.name()));
        Reply::err(
            ErrorCode::Internal,
            format!("handler for `{}` panicked", cmd.name()),
        )
    });
    ctx.set_deadline(None);
    stats
        .verb_hists
        .entry(cmd.name().to_string())
        .or_insert_with(|| ctx.metrics().histogram(&format!("cmd.{}", cmd.name())))
        .record(started.elapsed());
    let succeeded = response.is_ok();
    if !succeeded {
        stats.errors.incr();
    }
    let _ = reply.send(response.to_cmdline());
    // §2.5: notifications fire after the command has executed.
    if succeeded {
        fire_notifications(ctx, registry, name, &cmd);
    }
    drain_events(ctx, registry, name);
    if ctx.stop_requested {
        stop.store(true, Ordering::SeqCst);
    }
}

/// The short grace period after the quiesce gate closes: a command thread
/// that checked the gate just before it closed may still enqueue one verb,
/// so the drain takes one extra look after going empty.
const QUIESCE_GRACE: Duration = Duration::from_millis(5);

/// The `aceUpgrade` control plane, run on the control thread so the drain
/// and snapshot observe a fully quiesced behavior.
#[allow(clippy::too_many_arguments)]
fn handle_upgrade(
    rx: &AdmissionReceiver<ControlMsg>,
    behavior: &mut Box<dyn ServiceBehavior>,
    ctx: &mut ServiceCtx,
    registry: &mut NotificationRegistry,
    stats: &mut DispatchStats,
    upgrading: &AtomicBool,
    auth: &AuthMode,
    name: &str,
    class: &str,
    room: &str,
    semantics: &Semantics,
    incarnation: u64,
    cmd: &CmdLine,
    from: &ClientInfo,
    stop: &AtomicBool,
) -> Reply {
    // The upgrade plane is never authorization-exempt: quiescing a daemon
    // is as invasive as `shutdown`.
    let env = action_env_for(name, class, room, cmd);
    if !auth.check(&from.principal, &env) {
        ctx.log(
            "security",
            format!(
                "denied `aceUpgrade` from {} at {}",
                from.principal, from.addr
            ),
        );
        return Reply::err(ErrorCode::Denied, "no credentials permit `aceUpgrade`");
    }
    match cmd.get_text("phase") {
        Some("status") => Reply::ok_with(|c| {
            c.arg("upgrading", upgrading.load(Ordering::SeqCst))
                .arg("incarnation", incarnation)
        }),
        Some("abort") => {
            upgrading.store(false, Ordering::SeqCst);
            ctx.log("info", "upgrade aborted; re-admitting traffic");
            Reply::ok_with(|c| c.arg("incarnation", incarnation))
        }
        Some("quiesce") => {
            let started = Instant::now();
            upgrading.store(true, Ordering::SeqCst);
            // Drain in-flight verbs: everything already queued (plus any
            // straggler that passed the gate as it closed) executes and
            // replies normally before the state is frozen.
            let mut drained: u64 = 0;
            let mut graced = false;
            loop {
                match rx.try_recv() {
                    Some(ControlMsg::Execute {
                        cmd,
                        from,
                        reply,
                        deadline,
                        ..
                    }) => {
                        graced = false;
                        if cmd.name() == "aceUpgrade" {
                            // A second driver racing us observes the quiesce
                            // already in progress instead of recursing.
                            let _ = reply.send(
                                Reply::ok_with(|c| {
                                    c.arg("upgrading", true).arg("incarnation", incarnation)
                                })
                                .to_cmdline(),
                            );
                            continue;
                        }
                        drained += 1;
                        dispatch_execute(
                            behavior,
                            ctx,
                            registry,
                            stats,
                            auth,
                            name,
                            class,
                            room,
                            semantics,
                            incarnation,
                            cmd,
                            from,
                            reply,
                            deadline,
                            stop,
                        );
                    }
                    Some(ControlMsg::Data(datagram)) => {
                        behavior.on_data(ctx, datagram);
                        drain_events(ctx, registry, name);
                    }
                    Some(ControlMsg::Stop) => {
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                    None => {
                        if graced {
                            break;
                        }
                        std::thread::sleep(QUIESCE_GRACE);
                        graced = true;
                    }
                }
            }
            let metrics = Arc::clone(ctx.metrics());
            metrics.counter("upgrade.drainedVerbs").add(drained);
            metrics
                .histogram("upgrade.quiesceTime")
                .record(started.elapsed());
            let snapshot = behavior.snapshot_state();
            let notifications = registry.export();
            ctx.log(
                "info",
                format!("quiesced for upgrade ({drained} verbs drained)"),
            );
            Reply::ok_with(|c| {
                let mut c = c.arg("incarnation", incarnation).arg("drained", drained);
                if let Some(bytes) = &snapshot {
                    c = c.arg("snapshot", Value::Word(protocol::hex_encode(bytes)));
                }
                if !notifications.is_empty() {
                    c = c.arg(
                        "notifications",
                        protocol::registrations_to_value(&notifications),
                    );
                }
                c
            })
        }
        _ => Reply::err(
            ErrorCode::Semantics,
            "phase must be quiesce | abort | status",
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn execute(
    behavior: &mut Box<dyn ServiceBehavior>,
    ctx: &mut ServiceCtx,
    registry: &mut NotificationRegistry,
    auth: &AuthMode,
    name: &str,
    class: &str,
    room: &str,
    semantics: &Semantics,
    incarnation: u64,
    cmd: &CmdLine,
    from: &ClientInfo,
) -> Reply {
    // Liveness probes are exempt from authorization — the framework itself
    // pings services whose principals it cannot know in advance.
    let exempt = matches!(cmd.name(), "ping" | "describe");
    if !exempt {
        let env = action_env_for(name, class, room, cmd);
        if !auth.check(&from.principal, &env) {
            ctx.log(
                "security",
                format!(
                    "denied `{}` from {} at {}",
                    cmd.name(),
                    from.principal,
                    from.addr
                ),
            );
            return Reply::err(
                ErrorCode::Denied,
                format!("no credentials permit `{}`", cmd.name()),
            );
        }
    }

    match cmd.name() {
        "ping" => Reply::ok_with(|c| c.arg("service", name).arg("incarnation", incarnation)),
        "describe" => {
            let mut names: Vec<Scalar> = semantics
                .specs()
                .map(|s| Scalar::Word(s.name.clone()))
                .collect();
            names.sort_by(|a, b| match (a, b) {
                (Scalar::Word(x), Scalar::Word(y)) => x.cmp(y),
                _ => std::cmp::Ordering::Equal,
            });
            Reply::ok_with(|c| c.arg("cmds", Value::Vector(names)).arg("class", class))
        }
        "shutdown" => {
            ctx.request_stop();
            Reply::ok()
        }
        "aceStats" => {
            // Shared-runtime gauges (tasks live, worker count, long polls)
            // refresh on demand, so `aceStats` sees current values even
            // between periodic stats events.
            if let Some(rt) = &ctx.runtime {
                rt.publish_into(ctx.metrics());
            }
            // Let the service export its internal state first (e.g. WAL
            // batch counters from the store), then freeze the registry.
            behavior.on_stats(ctx);
            let mut snap = ctx.metrics().snapshot();
            if let Some(prefix) = cmd.get_text("prefix") {
                snap.retain_prefix(prefix);
            }
            snap.to_reply()
        }
        "addNotification" => {
            // Validation against `base_semantics` should guarantee these,
            // but a graceful reply beats trusting that forever.
            let (Some(watched), Some(service), Some(host), Some(port), Some(notify_cmd)) = (
                cmd.get_text("cmd"),
                cmd.get_text("service"),
                cmd.get_text("host"),
                cmd.get_int("port"),
                cmd.get_text("notifyCmd"),
            ) else {
                return Reply::err(ErrorCode::Semantics, "missing or mistyped argument");
            };
            let registration = Registration {
                service: service.to_string(),
                addr: Addr::new(host, port as u16),
                notify_cmd: notify_cmd.to_string(),
            };
            registry.add(watched, registration);
            Reply::ok()
        }
        "removeNotification" => {
            let (Some(watched), Some(service)) = (cmd.get_text("cmd"), cmd.get_text("service"))
            else {
                return Reply::err(ErrorCode::Semantics, "missing or mistyped argument");
            };
            if registry.remove(watched, service) {
                Reply::ok()
            } else {
                Reply::err(ErrorCode::NotFound, "no such notification")
            }
        }
        _ => behavior.handle(ctx, cmd, from),
    }
}

fn fire_notifications(
    ctx: &ServiceCtx,
    registry: &NotificationRegistry,
    name: &str,
    executed: &CmdLine,
) {
    for registration in registry.listeners(executed.name()) {
        let n = NotificationRegistry::notification_cmd(registration, name, executed);
        ctx.send_async(registration.addr.clone(), n);
    }
}

fn drain_events(ctx: &mut ServiceCtx, registry: &NotificationRegistry, name: &str) {
    if ctx.pending_events.is_empty() {
        return;
    }
    let events = std::mem::take(&mut ctx.pending_events);
    for event in events {
        fire_notifications(ctx, registry, name, &event);
    }
}

/// The Fig. 9 step-3 registration command for `config`.
fn register_cmd(config: &DaemonConfig) -> CmdLine {
    CmdLine::new("register")
        .arg("name", config.name.as_str())
        .arg("host", config.host.as_str())
        .arg("port", config.port)
        .arg("room", config.room.as_str())
        .arg("class", config.class.as_str())
        .arg("incarnation", config.incarnation)
}

/// The ASD lease client (§2.4): periodic renewal, lapsed-lease
/// re-registration, and the graceful-stop deregistration sequence.  Shared
/// by the thread-per-daemon `lease_loop` and the cooperative `DaemonTask`.
struct LeaseState {
    net: SimNet,
    config: DaemonConfig,
    identity: Arc<KeyPair>,
    renewals: Arc<Counter>,
    failures: Arc<Counter>,
    reregisters: Arc<Counter>,
    budget_denied: Arc<Counter>,
    retry_budget: Arc<RetryBudget>,
    /// Link failures back off exponentially from a quarter-period up to
    /// one full renewal period, jittered per daemon so a room of restarted
    /// services doesn't reconnect to the ASD in lockstep.
    reconnect: RetryPolicy,
    link_failures: u32,
    client: Option<ServiceClient>,
    next_renew: Instant,
}

impl LeaseState {
    fn new(
        net: SimNet,
        config: DaemonConfig,
        identity: Arc<KeyPair>,
        metrics: &MetricsRegistry,
        retry_budget: Arc<RetryBudget>,
    ) -> LeaseState {
        let reconnect = RetryPolicy::new(config.lease_renew / 4)
            .with_cap(config.lease_renew)
            .with_seed(config.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
            }));
        LeaseState {
            renewals: metrics.counter("lease.renewals"),
            failures: metrics.counter("lease.failures"),
            reregisters: metrics.counter("lease.reregisters"),
            budget_denied: metrics.counter("retry.budgetDenied"),
            next_renew: Instant::now() + config.lease_renew,
            reconnect,
            link_failures: 0,
            client: None,
            net,
            config,
            identity,
            retry_budget,
        }
    }

    /// When `tick` next has renewal work, if this daemon holds a lease.
    fn next_deadline(&self) -> Option<Instant> {
        self.config.asd.as_ref().map(|_| self.next_renew)
    }

    /// Renew the lease if due.  Bounded work: at most one connect and one
    /// call per invocation.
    fn tick(&mut self) {
        let Some(asd) = self.config.asd.clone() else {
            return;
        };
        if Instant::now() < self.next_renew {
            return;
        }
        self.next_renew = Instant::now() + self.config.lease_renew;
        // Each renewal period is fresh (non-retry) work: it earns back a
        // slice of the shared retry budget.
        self.retry_budget.note_call();
        if self.client.is_none() {
            self.client =
                ServiceClient::connect(&self.net, &self.config.host, asd, &self.identity).ok();
        }
        match self.client.as_mut() {
            Some(c) => {
                let renew = CmdLine::new("renewLease")
                    .arg("name", self.config.name.as_str())
                    .arg("incarnation", self.config.incarnation);
                match c.call_ok(&renew) {
                    Ok(()) => {
                        self.renewals.incr();
                        self.link_failures = 0;
                    }
                    Err(ClientError::Service {
                        code: ErrorCode::NotFound,
                        ..
                    }) => {
                        // Lease lapsed (e.g. an ASD restart): re-register.
                        self.reregisters.incr();
                        let _ = c.call_ok(&register_cmd(&self.config));
                    }
                    Err(_) => {
                        self.failures.incr();
                        self.client = None;
                        self.schedule_retry();
                    }
                }
            }
            None => {
                // Connect itself failed (ASD down or unreachable).
                self.failures.incr();
                self.schedule_retry();
            }
        }
    }

    /// An early (before the next full period) retry must be paid for out
    /// of the shared budget — when the bucket is dry we fall back to the
    /// regular renewal cadence instead of adding retry pressure to an ASD
    /// that is already struggling.
    fn schedule_retry(&mut self) {
        self.next_renew = if self.retry_budget.try_withdraw() {
            Instant::now() + self.reconnect.delay_for(self.link_failures)
        } else {
            self.budget_denied.incr();
            Instant::now() + self.config.lease_renew
        };
        self.link_failures = self.link_failures.saturating_add(1);
    }

    /// Graceful stop: remove our registrations (crashed daemons can't —
    /// that's what leases are for).  A retiring daemon skips
    /// deregistration: its live-upgrade replacement owns the registrations
    /// now, and a late `removeService` here would clobber them.
    fn goodbye(&mut self, crashed: bool, deregister: bool) {
        let Some(asd) = self.config.asd.clone() else {
            return;
        };
        if crashed {
            return;
        }
        if deregister {
            if let Ok(mut c) =
                ServiceClient::connect(&self.net, &self.config.host, asd, &self.identity)
            {
                let _ = c
                    .call_ok(&CmdLine::new("removeService").arg("name", self.config.name.as_str()));
            }
            if let Some(roomdb) = &self.config.roomdb {
                if let Ok(mut c) = ServiceClient::connect(
                    &self.net,
                    &self.config.host,
                    roomdb.clone(),
                    &self.identity,
                ) {
                    let _ = c.call_ok(
                        &CmdLine::new("roomRemove").arg("service", self.config.name.as_str()),
                    );
                }
            }
        }
        if let Some(logger) = &self.config.logger {
            if let Ok(mut c) =
                ServiceClient::connect(&self.net, &self.config.host, logger.clone(), &self.identity)
            {
                let _ = c.call_ok(
                    &CmdLine::new("log")
                        .arg("level", "info")
                        .arg(
                            "msg",
                            Value::Str(format!("service {} stopped", self.config.name)),
                        )
                        .arg("service", self.config.name.as_str())
                        .arg("host", self.config.host.as_str()),
                );
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn lease_loop(
    net: SimNet,
    config: DaemonConfig,
    identity: Arc<KeyPair>,
    stop: Arc<AtomicBool>,
    crashed: Arc<AtomicBool>,
    deregister: Arc<AtomicBool>,
    metrics: Arc<MetricsRegistry>,
    retry_budget: Arc<RetryBudget>,
) {
    let mut lease = LeaseState::new(net, config, identity, &metrics, retry_budget);
    if lease.config.asd.is_none() {
        // Nothing to renew and nothing to say goodbye to; just wait for
        // shutdown.
        while !stop.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(25));
        }
        return;
    }
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(Duration::from_millis(10));
        lease.tick();
    }
    lease.goodbye(
        crashed.load(Ordering::SeqCst),
        deregister.load(Ordering::SeqCst),
    );
}
