//! Unified retry/backoff policy (§9 robustness).
//!
//! Every recovery path in the stack — failover clients hunting for a moved
//! service, store clients reconnecting to a replica, daemons renewing
//! leases or registering with the ASD — used to carry its own ad-hoc
//! fixed-interval sleep loop.  [`RetryPolicy`] replaces those with one
//! shared vocabulary: exponential backoff with a cap, *deterministic*
//! jitter (a pure function of the policy seed and the attempt number, so
//! simulation runs replay identically), an optional attempt limit, and an
//! optional wall-clock budget.
//!
//! A policy is an immutable recipe; [`RetryPolicy::start`] stamps it with
//! the current instant to produce a [`Retry`] schedule whose
//! [`Retry::backoff`] is called between attempts:
//!
//! ```
//! use ace_core::retry::RetryPolicy;
//! use std::time::Duration;
//!
//! let policy = RetryPolicy::new(Duration::from_millis(1))
//!     .with_budget(Duration::from_millis(20));
//! let mut retry = policy.start();
//! let mut attempts = 1;
//! loop {
//!     // ... try the operation ...
//!     if !retry.backoff() {
//!         break; // budget exhausted
//!     }
//!     attempts += 1;
//! }
//! assert!(attempts > 1);
//! ```

use crate::metrics::Counter;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A storm-prevention retry budget (token bucket), shared by every retry
/// loop of one client or daemon.
///
/// Backoff alone does not stop a synchronized fleet from amplifying an
/// overload: when a daemon sheds with `E_BUSY`, each caller that retries
/// multiplies the offered load.  A budget caps the *ratio* of retries to
/// fresh work: every logical request deposits a fraction of a token
/// ([`RetryBudget::note_call`]), every retry withdraws a whole one
/// ([`RetryBudget::try_withdraw`]), and when the bucket is empty the retry
/// is skipped — the failure surfaces immediately instead of adding fuel.
/// The bucket starts full (`max` tokens) so cold-start blips can still be
/// ridden out.
///
/// Token arithmetic is done in integer milli-tokens on one atomic, so the
/// budget can be shared across threads without locks.
#[derive(Debug)]
pub struct RetryBudget {
    /// Current balance in milli-tokens.
    mtokens: AtomicI64,
    /// Bucket capacity in milli-tokens.
    max_mtokens: i64,
    /// Deposit per logical request, in milli-tokens.
    deposit_mtokens: i64,
    /// Retries refused because the bucket was empty.
    denied: AtomicU64,
}

impl RetryBudget {
    /// A bucket holding at most `max` retry tokens, refilled by
    /// `deposit_per_call` tokens per logical request (clamped to `[0, 1]`).
    pub fn new(max: u32, deposit_per_call: f64) -> RetryBudget {
        let max_mtokens = i64::from(max) * 1000;
        RetryBudget {
            mtokens: AtomicI64::new(max_mtokens),
            max_mtokens,
            deposit_mtokens: (deposit_per_call.clamp(0.0, 1.0) * 1000.0) as i64,
            denied: AtomicU64::new(0),
        }
    }

    /// The conventional client budget: retries may add at most ~10% load
    /// on top of fresh requests, with a 10-token reserve for cold starts.
    pub fn default_for_client() -> RetryBudget {
        RetryBudget::new(10, 0.1)
    }

    /// Record one logical (non-retry) request, depositing its fraction of
    /// a retry token.
    pub fn note_call(&self) {
        let prev = self
            .mtokens
            .fetch_add(self.deposit_mtokens, Ordering::Relaxed);
        if prev + self.deposit_mtokens > self.max_mtokens {
            self.mtokens.store(self.max_mtokens, Ordering::Relaxed);
        }
    }

    /// Try to pay for one retry.  Returns `false` — and counts the denial —
    /// when the bucket is empty, in which case the caller must *not* retry.
    pub fn try_withdraw(&self) -> bool {
        let mut cur = self.mtokens.load(Ordering::Relaxed);
        loop {
            if cur < 1000 {
                self.denied.fetch_add(1, Ordering::Relaxed);
                return false;
            }
            match self.mtokens.compare_exchange_weak(
                cur,
                cur - 1000,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Whole tokens currently in the bucket.
    pub fn balance(&self) -> u32 {
        (self.mtokens.load(Ordering::Relaxed).max(0) / 1000) as u32
    }

    /// How many retries the budget has refused so far.
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }
}

/// An immutable retry recipe: exponential backoff, cap, deterministic
/// jitter, and optional attempt/wall-clock limits.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    initial: Duration,
    multiplier: f64,
    cap: Duration,
    /// Fraction of each delay randomized away, in `[0, 1]`.  Jitter only
    /// ever *shortens* a delay, so `cap` stays an upper bound.
    jitter: f64,
    max_attempts: Option<u32>,
    budget: Option<Duration>,
    retry_budget: Option<Arc<RetryBudget>>,
    seed: u64,
    counter: Option<Arc<Counter>>,
}

impl RetryPolicy {
    /// Exponential backoff starting at `initial`, doubling per attempt,
    /// capped at 1s, with 10% deterministic jitter and no attempt or
    /// wall-clock limit.
    pub fn new(initial: Duration) -> RetryPolicy {
        RetryPolicy {
            initial,
            multiplier: 2.0,
            cap: Duration::from_secs(1),
            jitter: 0.1,
            max_attempts: None,
            budget: None,
            retry_budget: None,
            seed: 0x9E37_79B9_7F4A_7C15,
            counter: None,
        }
    }

    /// A flat schedule: every delay exactly `interval`, no jitter.  This is
    /// the legacy behavior of the pre-policy retry loops.
    pub fn fixed(interval: Duration) -> RetryPolicy {
        RetryPolicy {
            initial: interval,
            multiplier: 1.0,
            cap: interval,
            jitter: 0.0,
            max_attempts: None,
            budget: None,
            retry_budget: None,
            seed: 0,
            counter: None,
        }
    }

    /// Growth factor between consecutive delays (≥ 1.0).
    pub fn with_multiplier(mut self, multiplier: f64) -> RetryPolicy {
        assert!(multiplier >= 1.0, "backoff must not shrink");
        self.multiplier = multiplier;
        self
    }

    /// Upper bound on any single delay.
    pub fn with_cap(mut self, cap: Duration) -> RetryPolicy {
        self.cap = cap;
        self
    }

    /// Fraction of each delay randomized away (clamped to `[0, 1]`).
    pub fn with_jitter(mut self, jitter: f64) -> RetryPolicy {
        self.jitter = jitter.clamp(0.0, 1.0);
        self
    }

    /// Give up after this many *retries* (calls to [`Retry::backoff`]).
    pub fn with_max_attempts(mut self, attempts: u32) -> RetryPolicy {
        self.max_attempts = Some(attempts);
        self
    }

    /// Give up once this much wall-clock time has elapsed since
    /// [`RetryPolicy::start`].
    pub fn with_budget(mut self, budget: Duration) -> RetryPolicy {
        self.budget = Some(budget);
        self
    }

    /// Charge every backoff against a shared storm-prevention
    /// [`RetryBudget`]: when the bucket is empty, [`Retry::backoff`] gives
    /// up immediately instead of amplifying an overload.  The caller is
    /// responsible for depositing via [`RetryBudget::note_call`] once per
    /// logical request.
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> RetryPolicy {
        self.retry_budget = Some(budget);
        self
    }

    /// Seed for the jitter stream.  Two schedules with the same policy and
    /// seed produce identical delays — simulation runs replay exactly.
    pub fn with_seed(mut self, seed: u64) -> RetryPolicy {
        self.seed = seed;
        self
    }

    /// Count every backoff actually taken on `counter` (typically the
    /// owning daemon's `retry.backoffs` metric).
    pub fn with_counter(mut self, counter: Arc<Counter>) -> RetryPolicy {
        self.counter = Some(counter);
        self
    }

    /// The delay before retry number `attempt` (0-based), as a pure
    /// function of the policy — no clock, no shared RNG.
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let base = self.initial.as_secs_f64() * self.multiplier.powi(attempt as i32);
        let capped = base.min(self.cap.as_secs_f64());
        let scaled = if self.jitter > 0.0 {
            // splitmix64 of (seed, attempt) → fraction in [0, 1); jitter
            // shortens the delay by up to `jitter * capped`.
            let mut z = self
                .seed
                .wrapping_add((attempt as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let frac = (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
            capped * (1.0 - self.jitter * frac)
        } else {
            capped
        };
        Duration::from_secs_f64(scaled.max(0.0))
    }

    /// Stamp the policy with the current instant, producing a live
    /// schedule.
    pub fn start(&self) -> Retry {
        Retry {
            policy: self.clone(),
            attempt: 0,
            deadline: self.budget.map(|b| Instant::now() + b),
        }
    }
}

/// A live retry schedule produced by [`RetryPolicy::start`].
#[derive(Debug)]
pub struct Retry {
    policy: RetryPolicy,
    attempt: u32,
    deadline: Option<Instant>,
}

impl Retry {
    /// How many backoffs have been taken so far.
    pub fn attempt(&self) -> u32 {
        self.attempt
    }

    /// Time left in the wall-clock budget, if one was set.
    pub fn remaining(&self) -> Option<Duration> {
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// Whether the schedule still permits another attempt *right now*.
    pub fn exhausted(&self) -> bool {
        if let Some(max) = self.policy.max_attempts {
            if self.attempt >= max {
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// Sleep before the next attempt.  Returns `false` — without sleeping —
    /// once the attempt limit or wall-clock budget is exhausted; sleeps are
    /// clamped so the schedule never overshoots its deadline.
    pub fn backoff(&mut self) -> bool {
        if self.exhausted() {
            return false;
        }
        if let Some(budget) = &self.policy.retry_budget {
            if !budget.try_withdraw() {
                return false;
            }
        }
        let mut delay = self.policy.delay_for(self.attempt);
        if let Some(deadline) = self.deadline {
            delay = delay.min(deadline.saturating_duration_since(Instant::now()));
        }
        self.attempt += 1;
        if let Some(counter) = &self.policy.counter {
            counter.incr();
        }
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_grow_exponentially_up_to_cap() {
        let p = RetryPolicy::new(Duration::from_millis(10))
            .with_jitter(0.0)
            .with_cap(Duration::from_millis(50));
        assert_eq!(p.delay_for(0), Duration::from_millis(10));
        assert_eq!(p.delay_for(1), Duration::from_millis(20));
        assert_eq!(p.delay_for(2), Duration::from_millis(40));
        assert_eq!(p.delay_for(3), Duration::from_millis(50));
        assert_eq!(p.delay_for(10), Duration::from_millis(50));
    }

    #[test]
    fn fixed_policy_is_flat() {
        let p = RetryPolicy::fixed(Duration::from_millis(25));
        for attempt in 0..8 {
            assert_eq!(p.delay_for(attempt), Duration::from_millis(25));
        }
    }

    #[test]
    fn jitter_is_deterministic_per_seed_and_bounded() {
        let a = RetryPolicy::new(Duration::from_millis(100)).with_seed(7);
        let b = RetryPolicy::new(Duration::from_millis(100)).with_seed(7);
        let c = RetryPolicy::new(Duration::from_millis(100)).with_seed(8);
        let mut differs = false;
        for attempt in 0..16 {
            assert_eq!(a.delay_for(attempt), b.delay_for(attempt));
            assert!(a.delay_for(attempt) <= Duration::from_secs(1));
            // Jitter shortens by at most the jitter fraction.
            let base = Duration::from_millis(100).as_secs_f64() * 2f64.powi(attempt as i32);
            let floor = base.min(1.0) * 0.9;
            assert!(a.delay_for(attempt).as_secs_f64() >= floor - 1e-9);
            differs |= a.delay_for(attempt) != c.delay_for(attempt);
        }
        assert!(differs, "different seeds should jitter differently");
    }

    #[test]
    fn max_attempts_limits_backoffs() {
        let mut retry = RetryPolicy::fixed(Duration::from_millis(1))
            .with_max_attempts(3)
            .start();
        let mut taken = 0;
        while retry.backoff() {
            taken += 1;
        }
        assert_eq!(taken, 3);
        assert!(retry.exhausted());
    }

    #[test]
    fn counter_tracks_backoffs_taken() {
        let c = Arc::new(Counter::new());
        let mut retry = RetryPolicy::fixed(Duration::from_millis(1))
            .with_max_attempts(2)
            .with_counter(Arc::clone(&c))
            .start();
        while retry.backoff() {}
        assert_eq!(c.get(), 2);
    }

    #[test]
    fn retry_budget_starts_full_and_refuses_when_empty() {
        let budget = RetryBudget::new(2, 0.1);
        assert!(budget.try_withdraw());
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw(), "bucket exhausted");
        assert_eq!(budget.denied(), 1);
        // 10 fresh calls buy back one retry token.
        for _ in 0..10 {
            budget.note_call();
        }
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw());
    }

    #[test]
    fn retry_budget_deposits_cap_at_max() {
        let budget = RetryBudget::new(1, 1.0);
        for _ in 0..100 {
            budget.note_call();
        }
        assert_eq!(budget.balance(), 1);
        assert!(budget.try_withdraw());
        assert!(!budget.try_withdraw());
    }

    #[test]
    fn backoff_respects_retry_budget() {
        let budget = Arc::new(RetryBudget::new(3, 0.0));
        let mut retry = RetryPolicy::fixed(Duration::from_millis(1))
            .with_retry_budget(Arc::clone(&budget))
            .start();
        let mut taken = 0;
        while retry.backoff() {
            taken += 1;
        }
        assert_eq!(taken, 3, "only the budgeted retries run");
        assert_eq!(budget.denied(), 1);
    }

    #[test]
    fn budget_bounds_total_sleep() {
        let mut retry = RetryPolicy::fixed(Duration::from_millis(5))
            .with_budget(Duration::from_millis(40))
            .start();
        let start = Instant::now();
        while retry.backoff() {}
        let elapsed = start.elapsed();
        assert!(elapsed >= Duration::from_millis(40), "{elapsed:?}");
        assert!(elapsed < Duration::from_millis(400), "{elapsed:?}");
    }
}
