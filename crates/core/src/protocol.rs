//! Shared wire vocabulary of the ACE framework services.
//!
//! The daemon startup sequence (Fig. 9) has every daemon talk to three
//! framework services — the Room Database, the ACE Service Directory, and
//! the Network Logger — before it begins its own work.  Both sides of those
//! conversations (the daemons in `crates/directory` and the startup code in
//! this crate) need the same command definitions, so they live here.
//!
//! Also defines the built-in commands every ACE daemon understands
//! (`ping`, `describe`, `shutdown`, `addNotification`, `removeNotification`,
//! §2.5).

use ace_lang::{ArgType, CmdLine, CmdSpec, Semantics};

/// Well-known port of the ACE Service Directory ("the location of which is
/// known to all ACE daemons", §2.4).
pub const ASD_PORT: u16 = 5000;
/// Well-known port of the Room Database.
pub const ROOMDB_PORT: u16 = 5001;
/// Well-known port of the Network Logger.
pub const LOGGER_PORT: u16 = 5002;

/// Verbs admitted on the daemon's **priority lane**: the control, health,
/// lease, and upgrade plane that must keep answering while bulk traffic is
/// being shed.  Everything else rides the bounded bulk lane and may be
/// refused with `E_BUSY` under overload.
pub fn is_priority_verb(name: &str) -> bool {
    matches!(
        name,
        // Health / liveness.
        "ping" | "describe" | "aceStats"
        // Control plane.
        | "shutdown" | "aceUpgrade"
        // Lease / registration plane (ASD + Room DB verbs).
        | "register" | "renewLease" | "removeService"
        | "roomRegister" | "roomRemove"
    )
}

/// Built-in commands of every service daemon.  Service-specific semantics
/// inherit from this set (the root of the Fig. 6 hierarchy).
pub fn base_semantics() -> Semantics {
    Semantics::new()
        .with(CmdSpec::new("ping", "liveness probe; replies ok"))
        .with(CmdSpec::new(
            "describe",
            "list the commands this service understands",
        ))
        .with(CmdSpec::new("shutdown", "gracefully stop this daemon"))
        .with(
            CmdSpec::new(
                "addNotification",
                "register to be notified when a command/event executes here",
            )
            .required("cmd", ArgType::Word, "command or event name to listen for")
            .required("service", ArgType::Word, "name of the service to notify")
            .required("host", ArgType::Word, "host of the service to notify")
            .required("port", ArgType::Int, "port of the service to notify")
            .required(
                "notifyCmd",
                ArgType::Word,
                "command to invoke on the notified service",
            ),
        )
        .with(
            CmdSpec::new("removeNotification", "deregister a notification")
                .required("cmd", ArgType::Word, "command or event name")
                .required("service", ArgType::Word, "service that was to be notified"),
        )
        .with(
            CmdSpec::new(
                "aceStats",
                "unified metrics snapshot: counters, gauges, latency quantiles",
            )
            .optional(
                "prefix",
                ArgType::Str,
                "only metrics whose name starts with this prefix",
            ),
        )
        .with(
            CmdSpec::new(
                "aceUpgrade",
                "live-upgrade control: quiesce (drain + snapshot), abort, status",
            )
            .required("phase", ArgType::Word, "quiesce | abort | status"),
        )
}

/// Commands understood by the ACE Service Directory (§2.4).
pub fn asd_semantics() -> Semantics {
    Semantics::new()
        .inheriting(&base_semantics())
        .with(
            CmdSpec::new("register", "register a service; replies with a lease")
                .required("name", ArgType::Word, "unique service name")
                .required("host", ArgType::Word, "host the service runs on")
                .required("port", ArgType::Int, "port the service listens on")
                .required("room", ArgType::Word, "room the service lives in")
                .required("class", ArgType::Str, "service class (hierarchy path)")
                .optional(
                    "incarnation",
                    ArgType::Int,
                    "spawn generation; older incarnations are fenced out",
                ),
        )
        .with(
            CmdSpec::new("renewLease", "renew a registration lease")
                .required("name", ArgType::Word, "registered service name")
                .optional(
                    "incarnation",
                    ArgType::Int,
                    "spawn generation; older incarnations are fenced out",
                ),
        )
        .with(
            CmdSpec::new("removeService", "deregister a service on shutdown").required(
                "name",
                ArgType::Word,
                "registered service name",
            ),
        )
        .with(
            CmdSpec::new("lookup", "find services; replies with matches")
                .optional("name", ArgType::Word, "exact service name")
                .optional("class", ArgType::Str, "service class to match")
                .optional("room", ArgType::Word, "restrict to one room"),
        )
        .with(CmdSpec::new(
            "listServices",
            "list all currently registered service names",
        ))
        .with(CmdSpec::new(
            "shardMap",
            "the directory shard map: replica addresses per shard",
        ))
}

/// Commands understood by the Room Database (§4.11).
pub fn roomdb_semantics() -> Semantics {
    Semantics::new()
        .inheriting(&base_semantics())
        .with(
            CmdSpec::new("roomRegister", "place a service within a room")
                .required("service", ArgType::Word, "service name")
                .required("host", ArgType::Word, "host name")
                .required("port", ArgType::Int, "service port")
                .required("room", ArgType::Word, "room name")
                .optional("x", ArgType::Float, "position in the room (metres)")
                .optional("y", ArgType::Float, "position in the room (metres)")
                .optional("z", ArgType::Float, "position in the room (metres)"),
        )
        .with(
            CmdSpec::new("roomRemove", "remove a service from its room").required(
                "service",
                ArgType::Word,
                "service name",
            ),
        )
        .with(
            CmdSpec::new("roomServices", "list services within a room").required(
                "room",
                ArgType::Word,
                "room name",
            ),
        )
        .with(
            CmdSpec::new("roomInfo", "room metadata: building, dimensions").required(
                "room",
                ArgType::Word,
                "room name",
            ),
        )
        .with(
            CmdSpec::new("defineRoom", "create or update a room definition")
                .required("room", ArgType::Word, "room name")
                .required("building", ArgType::Word, "building name")
                .optional("width", ArgType::Float, "room width (metres)")
                .optional("depth", ArgType::Float, "room depth (metres)")
                .optional("height", ArgType::Float, "room height (metres)"),
        )
        .with(CmdSpec::new("listRooms", "list all defined rooms"))
}

/// Commands understood by the Network Logger (§4.14).
pub fn logger_semantics() -> Semantics {
    Semantics::new()
        .inheriting(&base_semantics())
        .with(
            CmdSpec::new("log", "append one activity record")
                .required("level", ArgType::Word, "info | warn | error | security")
                .required("msg", ArgType::Str, "the record text")
                .optional("service", ArgType::Word, "originating service")
                .optional("host", ArgType::Word, "originating host"),
        )
        .with(
            CmdSpec::new("tail", "return the most recent records")
                .optional("count", ArgType::Int, "how many records (default 10)")
                .optional("level", ArgType::Word, "filter by level"),
        )
        .with(CmdSpec::new("logStats", "record counts by level"))
        .with(
            CmdSpec::new("event", "append one typed event record")
                .required("service", ArgType::Word, "originating service")
                .required("kind", ArgType::Word, "event kind, e.g. stats")
                .required(
                    "data",
                    ArgType::Word,
                    "hex-encoded wire-form command carrying the event fields",
                )
                .optional("host", ArgType::Word, "originating host"),
        )
        .with(
            CmdSpec::new("queryEvents", "typed event records for one service")
                .required("service", ArgType::Word, "originating service")
                .optional("kind", ArgType::Word, "filter by event kind")
                .optional("count", ArgType::Int, "how many records (default 10)"),
        )
}

/// Commands a scale-out persistent-store replica understands on top of
/// its basic `psPut`/`psGet` plane: snapshot shipping for rebuilds
/// (`psSnapFetch` + `psWalTail`), per-shard read leases, and the shard
/// placement map (the store analog of the directory's `shardMap`).
pub fn store_scaleout_semantics() -> Semantics {
    Semantics::new()
        .with(
            CmdSpec::new(
                "psSnapFetch",
                "fetch the replica's current snapshot in chunks (offset 0 cuts a fresh one)",
            )
            .required("offset", ArgType::Int, "byte offset into the snapshot")
            .optional("chunk", ArgType::Int, "max chunk bytes (default 32768)"),
        )
        .with(
            CmdSpec::new(
                "psWalTail",
                "applied writes at or after a sequence number (snapshot catch-up)",
            )
            .required("since", ArgType::Int, "first sequence number wanted")
            .optional("max", ArgType::Int, "max entries per reply (default 512)"),
        )
        .with(
            CmdSpec::new("psLeaseGrant", "grant/renew the shard read lease")
                .required("holder", ArgType::Str, "leaseholder address host:port")
                .required("epoch", ArgType::Int, "lease epoch (newer wins)")
                .required("ttlMs", ArgType::Int, "lease duration in milliseconds"),
        )
        .with(
            CmdSpec::new("psLeaseRevoke", "revoke the shard read lease if held")
                .required("holder", ArgType::Str, "leaseholder address host:port")
                .required("epoch", ArgType::Int, "lease epoch being revoked"),
        )
        .with(
            CmdSpec::new(
                "psGetLeased",
                "read a key served only by the live leaseholder",
            )
            .required("ns", ArgType::Word, "namespace")
            .required("key", ArgType::Str, "key"),
        )
        .with(CmdSpec::new(
            "psPlacement",
            "the store placement map: replica addresses per shard group",
        ))
}

/// Hex-encode arbitrary bytes as a `<WORD>` so blobs (multi-line KeyNote
/// credential text, binary payloads) can travel inside commands — the
/// grammar's quoted strings cannot carry newlines or quotes.
pub fn hex_encode(data: &[u8]) -> String {
    const DIGITS: &[u8; 16] = b"0123456789abcdef";
    // The `x` prefix keeps the token a <WORD> even when every digit is
    // decimal (which would re-lex as an integer).  Nibble lookups into one
    // byte buffer: this sits under every stored blob and every read-repair
    // push, where the formatting machinery of `write!` is pure overhead.
    let mut out = Vec::with_capacity(data.len() * 2 + 1);
    out.push(b'x');
    for &b in data {
        out.push(DIGITS[(b >> 4) as usize]);
        out.push(DIGITS[(b & 0x0f) as usize]);
    }
    String::from_utf8(out).expect("hex digits are ASCII")
}

/// Decode a [`hex_encode`]d word (uppercase digits accepted).
pub fn hex_decode(hex: &str) -> Option<Vec<u8>> {
    fn nibble(b: u8) -> Option<u8> {
        match b {
            b'0'..=b'9' => Some(b - b'0'),
            b'a'..=b'f' => Some(b - b'a' + 10),
            b'A'..=b'F' => Some(b - b'A' + 10),
            _ => None,
        }
    }
    let hex = hex.strip_prefix('x').unwrap_or(hex);
    if !hex.len().is_multiple_of(2) {
        return None;
    }
    hex.as_bytes()
        .chunks_exact(2)
        .map(|pair| Some(nibble(pair[0])? << 4 | nibble(pair[1])?))
        .collect()
}

/// Checksum used to seal state snapshots (FNV-1a, 64 bit).
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Seal a behavior state snapshot for transport and storage.
///
/// The payload is a command line (the same vocabulary state travels in on
/// the wire), framed with its kind and an FNV-1a checksum so that a torn
/// or bit-flipped blob is *refused* at restore time rather than half
/// applied — a live upgrade must never seed the replacement incarnation
/// with corrupt state.
pub fn seal_snapshot(kind: &str, state: CmdLine) -> Vec<u8> {
    let inner = state.to_wire().into_bytes();
    let crc = fnv1a64(&inner);
    CmdLine::new("snapshot")
        .arg("kind", ace_lang::Value::Word(kind.to_string()))
        .arg("crc", ace_lang::Value::Word(format!("x{crc:016x}")))
        .arg("data", ace_lang::Value::Word(hex_encode(&inner)))
        .to_wire()
        .into_bytes()
}

/// Open a sealed snapshot, verifying kind and checksum.  Any framing,
/// kind, or integrity mismatch refuses the whole snapshot.
pub fn open_snapshot(kind: &str, bytes: &[u8]) -> Result<CmdLine, String> {
    let text = std::str::from_utf8(bytes).map_err(|_| "snapshot is not text".to_string())?;
    let outer = CmdLine::parse(text).map_err(|e| format!("snapshot frame does not parse: {e}"))?;
    if outer.name() != "snapshot" {
        return Err(format!("not a snapshot frame: `{}`", outer.name()));
    }
    match outer.get_text("kind") {
        Some(k) if k == kind => {}
        Some(k) => return Err(format!("snapshot kind mismatch: got `{k}`, want `{kind}`")),
        None => return Err("snapshot frame missing kind".to_string()),
    }
    let crc = outer
        .get_text("crc")
        .and_then(|w| u64::from_str_radix(w.strip_prefix('x').unwrap_or(w), 16).ok())
        .ok_or_else(|| "snapshot frame missing checksum".to_string())?;
    let inner = outer
        .get_text("data")
        .and_then(hex_decode)
        .ok_or_else(|| "snapshot payload is not valid hex".to_string())?;
    if fnv1a64(&inner) != crc {
        return Err("snapshot checksum mismatch (torn or corrupted)".to_string());
    }
    let inner_text =
        std::str::from_utf8(&inner).map_err(|_| "snapshot payload is not text".to_string())?;
    CmdLine::parse(inner_text).map_err(|e| format!("snapshot payload does not parse: {e}"))
}

/// A directory entry as returned by ASD `lookup` replies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceEntry {
    pub name: String,
    pub addr: ace_net::Addr,
    pub class: String,
    pub room: String,
}

/// Encode entries as the `services={{name,host,port,class,room},…}` array
/// carried in `lookup` replies.  All cells are quoted strings so every row
/// is homogeneous per the grammar (a bare `1234` would re-lex as an
/// integer).
pub fn entries_to_value(entries: &[ServiceEntry]) -> ace_lang::Value {
    use ace_lang::Scalar;
    ace_lang::Value::Array(
        entries
            .iter()
            .map(|e| {
                vec![
                    Scalar::Str(e.name.clone()),
                    Scalar::Str(e.addr.host.to_string()),
                    Scalar::Str(e.addr.port.to_string()),
                    Scalar::Str(e.class.clone()),
                    Scalar::Str(e.room.clone()),
                ]
            })
            .collect(),
    )
}

/// Decode a `services=` array back into entries.  Malformed rows are
/// rejected wholesale (`None`) — a half-decoded directory is worse than an
/// error.
pub fn entries_from_value(value: &ace_lang::Value) -> Option<Vec<ServiceEntry>> {
    let rows = match value {
        // An empty array encodes as `{}`, which re-parses as an empty
        // vector — treat it as zero rows.
        v if v.as_vector().is_some_and(|s| s.is_empty()) => return Some(Vec::new()),
        v => v.as_array()?,
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != 5 {
            return None;
        }
        let cell = |i: usize| row[i].as_text();
        let port: u16 = cell(2)?.parse().ok()?;
        out.push(ServiceEntry {
            name: cell(0)?.to_string(),
            addr: ace_net::Addr::new(cell(1)?, port),
            class: cell(3)?.to_string(),
            room: cell(4)?.to_string(),
        });
    }
    Some(out)
}

/// Encode notification registrations as a
/// `notifications={{cmd,service,host,port,notifyCmd},…}` array — carried in
/// `aceUpgrade quiesce` replies so a replacement incarnation keeps every
/// listener the old one had.
pub fn registrations_to_value(rows: &[(String, crate::notify::Registration)]) -> ace_lang::Value {
    use ace_lang::Scalar;
    ace_lang::Value::Array(
        rows.iter()
            .map(|(cmd, r)| {
                vec![
                    Scalar::Str(cmd.clone()),
                    Scalar::Str(r.service.clone()),
                    Scalar::Str(r.addr.host.to_string()),
                    Scalar::Str(r.addr.port.to_string()),
                    Scalar::Str(r.notify_cmd.clone()),
                ]
            })
            .collect(),
    )
}

/// Decode a `notifications=` array back into registrations.  Malformed rows
/// reject the whole value (`None`) — better to restart with no listeners
/// than with a half-decoded registry.
pub fn registrations_from_value(
    value: &ace_lang::Value,
) -> Option<Vec<(String, crate::notify::Registration)>> {
    let rows = match value {
        v if v.as_vector().is_some_and(|s| s.is_empty()) => return Some(Vec::new()),
        v => v.as_array()?,
    };
    let mut out = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != 5 {
            return None;
        }
        let cell = |i: usize| row[i].as_text();
        let port: u16 = cell(3)?.parse().ok()?;
        out.push((
            cell(0)?.to_string(),
            crate::notify::Registration {
                service: cell(1)?.to_string(),
                addr: ace_net::Addr::new(cell(2)?, port),
                notify_cmd: cell(4)?.to_string(),
            },
        ));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ace_lang::CmdLine;

    #[test]
    fn entries_roundtrip() {
        let entries = vec![
            ServiceEntry {
                name: "cam1".into(),
                addr: ace_net::Addr::new("bar", 1234),
                class: "PTZCamera".into(),
                room: "hawk".into(),
            },
            ServiceEntry {
                name: "proj".into(),
                addr: ace_net::Addr::new("tube", 99),
                class: "Projector".into(),
                room: "hawk".into(),
            },
        ];
        let v = entries_to_value(&entries);
        assert_eq!(entries_from_value(&v), Some(entries.clone()));
        // And the value survives the wire.
        let cmd = CmdLine::new("ok").arg("services", v);
        let back = CmdLine::parse(&cmd.to_wire()).unwrap();
        assert_eq!(
            entries_from_value(back.get("services").unwrap()),
            Some(entries)
        );
    }

    #[test]
    fn entries_empty_roundtrip() {
        let v = entries_to_value(&[]);
        assert_eq!(entries_from_value(&v), Some(vec![]));
    }

    #[test]
    fn entries_reject_malformed() {
        use ace_lang::{Scalar, Value};
        let bad = Value::Array(vec![vec![Scalar::Word("only".into())]]);
        assert_eq!(entries_from_value(&bad), None);
        assert_eq!(entries_from_value(&Value::Int(1)), None);
    }

    #[test]
    fn base_commands_validate() {
        let sem = base_semantics();
        sem.validate(&CmdLine::new("ping")).unwrap();
        sem.validate(
            &CmdLine::new("addNotification")
                .arg("cmd", "ptzMove")
                .arg("service", "recorder")
                .arg("host", "bar")
                .arg("port", 1234)
                .arg("notifyCmd", "onPtzMove"),
        )
        .unwrap();
    }

    #[test]
    fn asd_inherits_base() {
        let sem = asd_semantics();
        sem.validate(&CmdLine::new("ping")).unwrap();
        sem.validate(
            &CmdLine::new("register")
                .arg("name", "foo")
                .arg("host", "bar")
                .arg("port", 1234)
                .arg("room", "hawk")
                .arg("class", "ACEService"),
        )
        .unwrap();
        assert!(sem.validate(&CmdLine::new("register")).is_err());
    }

    #[test]
    fn lookup_args_optional() {
        let sem = asd_semantics();
        sem.validate(&CmdLine::new("lookup")).unwrap();
        sem.validate(&CmdLine::new("lookup").arg("class", "PTZCamera"))
            .unwrap();
    }

    #[test]
    fn roomdb_and_logger_validate() {
        roomdb_semantics()
            .validate(
                &CmdLine::new("roomRegister")
                    .arg("service", "foo")
                    .arg("host", "bar")
                    .arg("port", 1)
                    .arg("room", "hawk"),
            )
            .unwrap();
        logger_semantics()
            .validate(
                &CmdLine::new("log")
                    .arg("level", "info")
                    .arg("msg", "service foo started"),
            )
            .unwrap();
    }
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    #[test]
    fn snapshot_roundtrip() {
        let state = CmdLine::new("asdState").arg("lease", 300).arg(
            "services",
            entries_to_value(&[ServiceEntry {
                name: "cam1".into(),
                addr: ace_net::Addr::new("bar", 1234),
                class: "PTZCamera".into(),
                room: "hawk".into(),
            }]),
        );
        let sealed = seal_snapshot("asd", state.clone());
        let opened = open_snapshot("asd", &sealed).unwrap();
        assert_eq!(opened.to_wire(), state.to_wire());
    }

    #[test]
    fn snapshot_kind_is_fenced() {
        let sealed = seal_snapshot("asd", CmdLine::new("asdState"));
        assert!(open_snapshot("roomdb", &sealed).is_err());
    }

    #[test]
    fn snapshot_refuses_torn_and_flipped_bytes() {
        let sealed = seal_snapshot("asd", CmdLine::new("asdState").arg("lease", 300));
        // Torn write: any truncation refuses.
        for cut in 1..sealed.len() {
            assert!(
                open_snapshot("asd", &sealed[..cut]).is_err(),
                "accepted a snapshot torn at byte {cut}"
            );
        }
        // Bit flip: corrupt every byte in turn.
        for i in 0..sealed.len() {
            let mut bent = sealed.clone();
            bent[i] ^= 0x04;
            assert!(
                open_snapshot("asd", &bent).is_err(),
                "accepted a snapshot with byte {i} flipped"
            );
        }
    }
}

#[cfg(test)]
mod hex_tests {
    use super::*;

    #[test]
    fn hex_roundtrip() {
        for data in [&b""[..], b"a", b"hello\nworld \"quoted\"", &[0u8, 255, 128]] {
            assert_eq!(hex_decode(&hex_encode(data)).unwrap(), data);
        }
    }

    #[test]
    fn hex_rejects_garbage() {
        assert_eq!(hex_decode("abc"), None); // odd length
        assert_eq!(hex_decode("zz"), None);
        assert!(hex_decode("").unwrap().is_empty());
    }
}
