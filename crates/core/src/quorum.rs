//! Majority-quorum bookkeeping.
//!
//! The persistent store's replica client (§6) and the sharded directory
//! plane both follow the same discipline: issue a write to every replica
//! of a group, count acknowledgements, and succeed only when a majority
//! answered — a partitioned minority can never diverge silently.  The
//! counting (and the "reached quorum but not the full set" degraded
//! signal that drives redundancy warnings) lives here so both planes
//! share one implementation.

/// The majority quorum for a replica group of `replicas` members.
pub fn majority(replicas: usize) -> usize {
    replicas / 2 + 1
}

/// One quorum round: a write fanned out to `total` replicas that must be
/// acknowledged by at least `quorum` of them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuorumRound {
    total: usize,
    quorum: usize,
    acked: usize,
}

impl QuorumRound {
    /// A round over `total` replicas with an explicit quorum (clamped to
    /// `1..=total`).
    pub fn new(total: usize, quorum: usize) -> QuorumRound {
        QuorumRound {
            total,
            quorum: quorum.clamp(1, total.max(1)),
            acked: 0,
        }
    }

    /// A round requiring a simple majority of `total`.
    pub fn majority_of(total: usize) -> QuorumRound {
        QuorumRound::new(total, majority(total))
    }

    /// Record one replica acknowledgement.
    pub fn ack(&mut self) {
        self.acked += 1;
    }

    /// Acknowledgements so far.
    pub fn acked(&self) -> usize {
        self.acked
    }

    /// The quorum this round requires.
    pub fn quorum(&self) -> usize {
        self.quorum
    }

    /// Did enough replicas acknowledge?
    pub fn reached(&self) -> bool {
        self.acked >= self.quorum
    }

    /// Reached quorum, but not the full replica set: the write is durable
    /// yet redundancy is reduced until repair catches the stragglers up.
    pub fn degraded(&self) -> bool {
        self.reached() && self.acked < self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_is_floor_half_plus_one() {
        assert_eq!(majority(1), 1);
        assert_eq!(majority(2), 2);
        assert_eq!(majority(3), 2);
        assert_eq!(majority(4), 3);
        assert_eq!(majority(5), 3);
    }

    #[test]
    fn round_tracks_reached_and_degraded() {
        let mut round = QuorumRound::majority_of(3);
        assert_eq!(round.quorum(), 2);
        assert!(!round.reached());
        round.ack();
        assert!(!round.reached());
        round.ack();
        assert!(round.reached());
        assert!(round.degraded(), "2/3 is durable but not fully redundant");
        round.ack();
        assert!(round.reached());
        assert!(!round.degraded());
    }

    #[test]
    fn quorum_is_clamped_sanely() {
        assert_eq!(QuorumRound::new(3, 0).quorum(), 1);
        assert_eq!(QuorumRound::new(3, 9).quorum(), 3);
        // Degenerate empty group still needs one ack to "reach" quorum,
        // so a fan-out that found no replicas can never claim success.
        assert!(!QuorumRound::new(0, 1).reached());
    }
}
