//! Per-target circuit breakers for ACE clients.
//!
//! A client hammering a melting daemon makes the melt worse: every retry
//! is another admission attempt, every reconnect another handshake.  A
//! breaker watches each target's recent outcomes and, once failures (link
//! errors and `E_BUSY` sheds) cross a threshold inside a rolling window,
//! **opens**: calls fail fast locally without touching the network.  After
//! a cool-down the breaker goes **half-open** and lets a bounded number of
//! probe calls through; one success closes it, one failure re-opens it.
//!
//! The state machine:
//!
//! ```text
//!           failures ≥ threshold in window
//! Closed ─────────────────────────────────▶ Open
//!   ▲                                        │ cool-down elapsed
//!   │ probe succeeds                         ▼
//!   └──────────────────────────────────── HalfOpen ──▶ Open (probe fails)
//! ```

use crate::metrics::{Counter, MetricsRegistry};
use ace_net::Addr;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Tuning of one [`BreakerRegistry`].
#[derive(Debug, Clone)]
pub struct BreakerConfig {
    /// Rolling window over which failures are counted.
    pub window: Duration,
    /// Failures inside the window that open the breaker.
    pub failure_threshold: u32,
    /// How long an open breaker rejects before going half-open.
    pub open_for: Duration,
    /// Concurrent probes allowed while half-open.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            window: Duration::from_secs(2),
            failure_threshold: 5,
            open_for: Duration::from_millis(250),
            half_open_probes: 1,
        }
    }
}

/// What [`BreakerRegistry::check`] decided about a prospective call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerVerdict {
    /// Call away (breaker closed, or a half-open probe slot was granted).
    Admit,
    /// The breaker is open: fail fast without touching the network.
    Rejected,
}

#[derive(Debug)]
enum State {
    Closed {
        /// Failure timestamps inside the rolling window (bounded by the
        /// threshold: older entries are evicted as they expire).
        failures: Vec<Instant>,
    },
    Open {
        until: Instant,
    },
    HalfOpen {
        probes_in_flight: u32,
    },
}

/// Per-target circuit breakers, shared by every client of one process.
pub struct BreakerRegistry {
    config: BreakerConfig,
    targets: Mutex<HashMap<Addr, State>>,
    opened: Option<Arc<Counter>>,
    rejected: Option<Arc<Counter>>,
}

impl BreakerRegistry {
    /// A registry with the given tuning and no metrics.
    pub fn new(config: BreakerConfig) -> BreakerRegistry {
        BreakerRegistry {
            config,
            targets: Mutex::new(HashMap::new()),
            opened: None,
            rejected: None,
        }
    }

    /// Count breaker transitions (`breaker.opened`) and fast-fail
    /// rejections (`breaker.rejected`) on `metrics`.
    pub fn with_metrics(mut self, metrics: &MetricsRegistry) -> BreakerRegistry {
        self.opened = Some(metrics.counter("breaker.opened"));
        self.rejected = Some(metrics.counter("breaker.rejected"));
        self
    }

    /// Should a call to `target` proceed?  Half-open probe slots are
    /// claimed here and released by `record_success`/`record_failure`, so
    /// every `Admit` must be followed by exactly one outcome report.
    pub fn check(&self, target: &Addr) -> BreakerVerdict {
        let mut targets = self.targets.lock();
        let Some(state) = targets.get_mut(target) else {
            return BreakerVerdict::Admit; // no history: closed
        };
        match state {
            State::Closed { .. } => BreakerVerdict::Admit,
            State::Open { until } => {
                if Instant::now() >= *until {
                    *state = State::HalfOpen {
                        probes_in_flight: 1,
                    };
                    BreakerVerdict::Admit
                } else {
                    if let Some(c) = &self.rejected {
                        c.incr();
                    }
                    BreakerVerdict::Rejected
                }
            }
            State::HalfOpen { probes_in_flight } => {
                if *probes_in_flight < self.config.half_open_probes {
                    *probes_in_flight += 1;
                    BreakerVerdict::Admit
                } else {
                    if let Some(c) = &self.rejected {
                        c.incr();
                    }
                    BreakerVerdict::Rejected
                }
            }
        }
    }

    /// Report a successful call to `target`.  A half-open breaker closes;
    /// a closed breaker forgets its failure history.
    pub fn record_success(&self, target: &Addr) {
        let mut targets = self.targets.lock();
        if let Some(state) = targets.get_mut(target) {
            *state = State::Closed {
                failures: Vec::new(),
            };
        }
    }

    /// Report a failed call (link error or `E_BUSY` shed).  Returns `true`
    /// when this failure *opened* the breaker — the caller should then
    /// evict pooled links and cached resolutions for the target, exactly
    /// as `note_upgrading` does.
    pub fn record_failure(&self, target: &Addr) -> bool {
        let now = Instant::now();
        let mut targets = self.targets.lock();
        let state = targets.entry(target.clone()).or_insert(State::Closed {
            failures: Vec::new(),
        });
        match state {
            State::Closed { failures } => {
                failures.retain(|t| now.duration_since(*t) < self.config.window);
                failures.push(now);
                if failures.len() as u32 >= self.config.failure_threshold {
                    *state = State::Open {
                        until: now + self.config.open_for,
                    };
                    if let Some(c) = &self.opened {
                        c.incr();
                    }
                    return true;
                }
                false
            }
            State::HalfOpen { .. } => {
                // The probe failed: straight back to open.
                *state = State::Open {
                    until: now + self.config.open_for,
                };
                if let Some(c) = &self.opened {
                    c.incr();
                }
                true
            }
            State::Open { .. } => false,
        }
    }

    /// Is the breaker for `target` currently open (rejecting)?
    pub fn is_open(&self, target: &Addr) -> bool {
        let targets = self.targets.lock();
        matches!(
            targets.get(target),
            Some(State::Open { until }) if Instant::now() < *until
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn addr() -> Addr {
        Addr::new("host-a", 1234)
    }

    fn registry(open_for: Duration) -> BreakerRegistry {
        BreakerRegistry::new(BreakerConfig {
            window: Duration::from_secs(10),
            failure_threshold: 3,
            open_for,
            half_open_probes: 1,
        })
    }

    #[test]
    fn opens_after_threshold_failures() {
        let b = registry(Duration::from_secs(60));
        assert_eq!(b.check(&addr()), BreakerVerdict::Admit);
        assert!(!b.record_failure(&addr()));
        assert!(!b.record_failure(&addr()));
        assert!(b.record_failure(&addr()), "third failure opens");
        assert_eq!(b.check(&addr()), BreakerVerdict::Rejected);
        assert!(b.is_open(&addr()));
    }

    #[test]
    fn success_resets_failure_history() {
        let b = registry(Duration::from_secs(60));
        b.record_failure(&addr());
        b.record_failure(&addr());
        b.record_success(&addr());
        assert!(!b.record_failure(&addr()));
        assert!(!b.record_failure(&addr()));
        assert_eq!(b.check(&addr()), BreakerVerdict::Admit);
    }

    #[test]
    fn half_open_admits_one_probe_then_closes_on_success() {
        let b = registry(Duration::from_millis(10));
        for _ in 0..3 {
            b.record_failure(&addr());
        }
        assert_eq!(b.check(&addr()), BreakerVerdict::Rejected);
        std::thread::sleep(Duration::from_millis(15));
        // Cool-down over: one probe is admitted, a second is rejected.
        assert_eq!(b.check(&addr()), BreakerVerdict::Admit);
        assert_eq!(b.check(&addr()), BreakerVerdict::Rejected);
        b.record_success(&addr());
        assert_eq!(b.check(&addr()), BreakerVerdict::Admit);
        assert!(!b.is_open(&addr()));
    }

    #[test]
    fn failed_probe_reopens() {
        let b = registry(Duration::from_millis(10));
        for _ in 0..3 {
            b.record_failure(&addr());
        }
        std::thread::sleep(Duration::from_millis(15));
        assert_eq!(b.check(&addr()), BreakerVerdict::Admit);
        assert!(b.record_failure(&addr()), "failed probe re-opens");
        assert_eq!(b.check(&addr()), BreakerVerdict::Rejected);
    }

    #[test]
    fn targets_are_independent() {
        let b = registry(Duration::from_secs(60));
        let other = Addr::new("host-b", 99);
        for _ in 0..3 {
            b.record_failure(&addr());
        }
        assert_eq!(b.check(&addr()), BreakerVerdict::Rejected);
        assert_eq!(b.check(&other), BreakerVerdict::Admit);
    }

    #[test]
    fn old_failures_age_out_of_window() {
        let b = BreakerRegistry::new(BreakerConfig {
            window: Duration::from_millis(20),
            failure_threshold: 3,
            open_for: Duration::from_secs(60),
            half_open_probes: 1,
        });
        b.record_failure(&addr());
        b.record_failure(&addr());
        std::thread::sleep(Duration::from_millis(25));
        // The first two fell out of the window: not enough to open.
        assert!(!b.record_failure(&addr()));
        assert_eq!(b.check(&addr()), BreakerVerdict::Admit);
    }
}
