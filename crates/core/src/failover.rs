//! Mobile sockets: transparent client failover (§9).
//!
//! The paper lists as immediate future work "research and development of
//! mobile sockets … to handle downed ACE services allowing clients to
//! quickly resume their tasks with other service instances and to ensure
//! service mobility."  [`FailoverClient`] is that capability: a client
//! bound to a service *name* rather than an address.  On any link failure
//! it re-resolves the name through the ASD and retries against wherever the
//! service now lives — a restarted instance, or a replacement on a
//! different host.
//!
//! Commands are retried at most once per resolution, so a command that
//! *executed* but whose reply was lost is not silently executed twice
//! unless the caller opts in with [`FailoverClient::call_idempotent`].

use crate::client::{ClientError, ServiceClient};
use crate::protocol;
use crate::retry::RetryPolicy;
use ace_lang::{CmdLine, ErrorCode};
use ace_net::{Addr, HostId, SimNet};
use ace_security::keys::KeyPair;
use std::time::Duration;

/// A client bound to a service name, resolved through the ASD.
///
/// # Delivery semantics
///
/// * [`FailoverClient::call`] is **at-most-once**: resolution and
///   connection failures are retried within the retry window, but once a
///   command has been sent on an established link, a lost reply surfaces
///   as an error — the command may or may not have executed, and the
///   client never re-sends it.
/// * [`FailoverClient::call_idempotent`] is **at-least-once**: link
///   failures after send are also retried against a fresh resolution, so
///   the command can execute more than once.  Only use it for commands
///   that are safe to repeat (reads, absolute writes, registrations).
pub struct FailoverClient {
    net: SimNet,
    from_host: HostId,
    identity: KeyPair,
    asd: Addr,
    service_name: String,
    /// How long to keep re-resolving before giving up.
    retry_window: Duration,
    /// Backoff between re-resolutions (lets leases expire / restarts
    /// finish).
    policy: RetryPolicy,
    current: Option<ServiceClient>,
    /// Resolutions performed (observability for tests/experiments).
    resolutions: u64,
}

impl FailoverClient {
    /// Bind to `service_name`, resolving through the ASD at `asd`.
    pub fn bind(
        net: SimNet,
        from_host: impl Into<HostId>,
        identity: KeyPair,
        asd: Addr,
        service_name: impl Into<String>,
    ) -> FailoverClient {
        FailoverClient {
            net,
            from_host: from_host.into(),
            identity,
            asd,
            service_name: service_name.into(),
            retry_window: Duration::from_secs(10),
            policy: RetryPolicy::new(Duration::from_millis(50))
                .with_cap(Duration::from_millis(400)),
            current: None,
            resolutions: 0,
        }
    }

    /// Adjust how long a failed call keeps hunting for a live instance.
    pub fn with_retry_window(mut self, window: Duration) -> FailoverClient {
        self.retry_window = window;
        self
    }

    /// Use a flat retry interval (legacy fixed-sleep behavior).
    pub fn with_retry_interval(mut self, interval: Duration) -> FailoverClient {
        self.policy = RetryPolicy::fixed(interval);
        self
    }

    /// Use a custom backoff policy between re-resolutions.  Any wall-clock
    /// budget on the policy is ignored; the retry window set by
    /// [`FailoverClient::with_retry_window`] governs how long a call hunts.
    pub fn with_policy(mut self, policy: RetryPolicy) -> FailoverClient {
        self.policy = policy;
        self
    }

    /// How many times the name has been (re-)resolved.
    pub fn resolutions(&self) -> u64 {
        self.resolutions
    }

    fn resolve(&mut self) -> Result<Addr, ClientError> {
        let mut asd_client =
            ServiceClient::connect(&self.net, &self.from_host, self.asd.clone(), &self.identity)?;
        let reply =
            asd_client.call(&CmdLine::new("lookup").arg("name", self.service_name.as_str()))?;
        let entries = reply
            .get("services")
            .and_then(protocol::entries_from_value)
            .unwrap_or_default();
        match entries.into_iter().next() {
            Some(entry) => Ok(entry.addr),
            None => Err(ClientError::Service {
                code: ErrorCode::NotFound,
                msg: format!("{} not registered", self.service_name),
            }),
        }
    }

    fn connect_current(&mut self) -> Result<&mut ServiceClient, ClientError> {
        if self.current.is_none() {
            let addr = self.resolve()?;
            self.resolutions += 1;
            self.current = Some(ServiceClient::connect(
                &self.net,
                &self.from_host,
                addr,
                &self.identity,
            )?);
        }
        Ok(self.current.as_mut().expect("just connected"))
    }

    /// Issue a command with at-most-once execution: on a *connection* or
    /// *resolution* failure the call hunts for a live instance within the
    /// retry window, but once a command has been sent on an established
    /// link, a lost reply surfaces as an error rather than being retried.
    pub fn call(&mut self, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        self.call_inner(cmd, false)
    }

    /// Issue an idempotent command with at-least-once semantics: link
    /// failures *after* send are also retried against a fresh resolution.
    pub fn call_idempotent(&mut self, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        self.call_inner(cmd, true)
    }

    fn call_inner(
        &mut self,
        cmd: &CmdLine,
        retry_after_send: bool,
    ) -> Result<CmdLine, ClientError> {
        let mut retry = self.policy.clone().with_budget(self.retry_window).start();
        let mut last_err: Option<ClientError>;
        loop {
            let had_connection = self.current.is_some();
            match self.connect_current() {
                Ok(client) => match client.call(cmd) {
                    Ok(reply) => return Ok(reply),
                    Err(err @ ClientError::Service { .. }) => return Err(err),
                    Err(link_err) => {
                        self.current = None;
                        // A send on an established link may have executed;
                        // only retry when the caller allows it or the link
                        // was fresh enough that nothing can have run.
                        if !retry_after_send && had_connection {
                            return Err(link_err);
                        }
                        last_err = Some(link_err);
                    }
                },
                Err(err) => {
                    self.current = None;
                    last_err = Some(err);
                }
            }
            if !retry.backoff() {
                return Err(last_err.unwrap_or(ClientError::Service {
                    code: ErrorCode::Unavailable,
                    msg: "retry window exhausted".into(),
                }));
            }
        }
    }
}

impl std::fmt::Debug for FailoverClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FailoverClient({} via ASD {})",
            self.service_name, self.asd
        )
    }
}
