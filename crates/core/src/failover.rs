//! Mobile sockets: transparent client failover (§9).
//!
//! The paper lists as immediate future work "research and development of
//! mobile sockets … to handle downed ACE services allowing clients to
//! quickly resume their tasks with other service instances and to ensure
//! service mobility."  [`FailoverClient`] is that capability: a client
//! bound to a service *name* rather than an address.  On any link failure
//! it re-resolves the name through the ASD and retries against wherever the
//! service now lives — a restarted instance, or a replacement on a
//! different host.
//!
//! Commands are retried at most once per resolution, so a command that
//! *executed* but whose reply was lost is not silently executed twice
//! unless the caller opts in with [`FailoverClient::call_idempotent`].
//!
//! # The connection fast path
//!
//! Out of the box every call re-resolves through the ASD and dials a fresh
//! full-handshake link — correct, but expensive under churn.  Two opt-in
//! layers remove that cost without weakening the semantics:
//!
//! * [`FailoverClient::with_pool`] checks links out of a shared
//!   [`LinkPool`] instead of dialing per resolution (and pool misses ride
//!   session resumption);
//! * [`FailoverClient::with_resolution_cache`] remembers resolved
//!   addresses in a [`ResolutionCache`] for a TTL derived from the ASD
//!   lease, so the ASD round trip disappears from the steady state.
//!
//! Both layers invalidate eagerly: *any* link failure drops the cached
//! resolution for the service (the address may be stale) and discards the
//! pooled link (it may have a reply in flight).  A cache can additionally
//! be wired to the ASD's `serviceExpired` event via
//! [`ResolutionInvalidator`], so lease expiry invalidates even idle
//! clients.

use crate::behavior::{ClientInfo, ServiceBehavior, ServiceCtx};
use crate::breaker::{BreakerRegistry, BreakerVerdict};
use crate::client::{ClientError, ServiceClient};
use crate::metrics::{Counter, MetricsRegistry};
use crate::pool::{LinkPool, PooledLink};
use crate::protocol;
use crate::retry::{RetryBudget, RetryPolicy};
use ace_lang::{ArgType, CmdLine, CmdSpec, ErrorCode, Reply, Semantics};
use ace_net::{Addr, HostId, SimNet};
use ace_security::keys::KeyPair;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fallback resolution TTL when the ASD reply does not carry a lease.
const DEFAULT_RESOLUTION_TTL: Duration = Duration::from_secs(2);

/// Upper bound on the TTL a lookup reply may impose on the cache.  A
/// corrupt or hostile `lease` argument (e.g. `i64::MAX` milliseconds)
/// must not produce an `Instant` arithmetic overflow in
/// [`ResolutionCache::store`] or an effectively-immortal cache entry.
const MAX_RESOLUTION_TTL: Duration = Duration::from_secs(3600);

/// Derive a cache TTL from the `lease` argument of an ASD lookup reply.
///
/// Absent, zero, or negative leases fall back to
/// [`DEFAULT_RESOLUTION_TTL`] (a zero TTL would turn every steady-state
/// resolve into a cache miss); oversized leases are clamped to
/// [`MAX_RESOLUTION_TTL`].
fn resolution_ttl(lease_ms: Option<i64>) -> Duration {
    match lease_ms {
        Some(ms) if ms > 0 => Duration::from_millis(ms as u64).min(MAX_RESOLUTION_TTL),
        _ => DEFAULT_RESOLUTION_TTL,
    }
}

// ---------------------------------------------------------------------------
// Resolution cache
// ---------------------------------------------------------------------------

/// A shared name → address cache with per-entry TTL, fed by ASD lookups and
/// invalidated on link failures and `serviceExpired` events.
///
/// The TTL is derived from the ASD's lease duration (the `lease` argument
/// of the lookup reply): an entry can only outlive the registration that
/// produced it by at most one lease, and the eager invalidation paths
/// usually clear it much sooner.
pub struct ResolutionCache {
    inner: Mutex<HashMap<String, CachedResolution>>,
    hits: Arc<Counter>,
    misses: Arc<Counter>,
    invalidations: Arc<Counter>,
}

struct CachedResolution {
    addr: Addr,
    expires: Instant,
}

impl ResolutionCache {
    /// A cache with its own private counters.
    pub fn new() -> ResolutionCache {
        Self::with_metrics(&MetricsRegistry::new())
    }

    /// A cache whose counters (`resolve.cache_hits`, `resolve.cache_misses`,
    /// `resolve.invalidations`) live in `metrics`.
    pub fn with_metrics(metrics: &MetricsRegistry) -> ResolutionCache {
        ResolutionCache {
            inner: Mutex::new(HashMap::new()),
            hits: metrics.counter("resolve.cache_hits"),
            misses: metrics.counter("resolve.cache_misses"),
            invalidations: metrics.counter("resolve.invalidations"),
        }
    }

    /// The unexpired address for `name`, if cached.
    pub fn get(&self, name: &str) -> Option<Addr> {
        let mut inner = self.inner.lock();
        match inner.get(name) {
            Some(c) if c.expires > Instant::now() => {
                self.hits.incr();
                Some(c.addr.clone())
            }
            Some(_) => {
                inner.remove(name);
                self.misses.incr();
                None
            }
            None => {
                self.misses.incr();
                None
            }
        }
    }

    /// Record a resolution with the given TTL.
    pub fn store(&self, name: &str, addr: Addr, ttl: Duration) {
        self.inner.lock().insert(
            name.to_string(),
            CachedResolution {
                addr,
                expires: Instant::now() + ttl,
            },
        );
    }

    /// Drop the entry for `name` (link failure, `serviceExpired`).
    pub fn invalidate(&self, name: &str) {
        if self.inner.lock().remove(name).is_some() {
            self.invalidations.incr();
        }
    }

    /// Cached (possibly expired) entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// Is the cache empty?
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits.get(), self.misses.get())
    }
}

impl Default for ResolutionCache {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for ResolutionCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ResolutionCache({} entries)", self.len())
    }
}

// ---------------------------------------------------------------------------
// serviceExpired → cache invalidation listener
// ---------------------------------------------------------------------------

/// A tiny service behavior that turns ASD `serviceExpired` notifications
/// into [`ResolutionCache::invalidate`] calls.  Spawn it as a daemon and
/// subscribe it with [`subscribe_expiry_invalidation`]; every client
/// sharing the cache then drops dead addresses as soon as the ASD reaps
/// them, not just when their own calls fail.
pub struct ResolutionInvalidator {
    cache: Arc<ResolutionCache>,
}

impl ResolutionInvalidator {
    pub fn new(cache: Arc<ResolutionCache>) -> ResolutionInvalidator {
        ResolutionInvalidator { cache }
    }
}

impl ServiceBehavior for ResolutionInvalidator {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(
            CmdSpec::new("onServiceExpired", "an ASD lease lapsed")
                .optional("service", ArgType::Str, "origin service")
                .optional("cmd", ArgType::Str, "origin command")
                .optional("name", ArgType::Word, "the expired service"),
        )
    }

    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        if cmd.name() == "onServiceExpired" {
            if let Some(name) = cmd.get_text("name") {
                self.cache.invalidate(name);
            }
        }
        Reply::ok()
    }
}

/// Subscribe a spawned [`ResolutionInvalidator`] daemon (registered as
/// `listener_name` at `listener_addr`) to the ASD's `serviceExpired` event.
pub fn subscribe_expiry_invalidation(
    asd_client: &mut ServiceClient,
    listener_name: &str,
    listener_addr: &Addr,
) -> Result<(), ClientError> {
    asd_client.call_ok(
        &CmdLine::new("addNotification")
            .arg("cmd", "serviceExpired")
            .arg("service", listener_name)
            .arg("host", listener_addr.host.as_str())
            .arg("port", listener_addr.port)
            .arg("notifyCmd", "onServiceExpired"),
    )
}

// ---------------------------------------------------------------------------
// The failover client
// ---------------------------------------------------------------------------

/// The established connection a [`FailoverClient`] holds between calls:
/// either its own dedicated link or a checkout from a shared pool.
enum Conn {
    Direct(ServiceClient),
    Pooled(PooledLink),
}

impl Conn {
    fn call(&mut self, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        match self {
            Conn::Direct(c) => c.call(cmd),
            Conn::Pooled(p) => p.call(cmd),
        }
    }

    /// Could a command already have executed on this link before the
    /// current call?  True for links held over from a previous call and
    /// for pool checkouts that reused an idle link.
    fn is_established(&self, held_over: bool) -> bool {
        held_over
            || match self {
                Conn::Direct(_) => false,
                Conn::Pooled(p) => p.was_reused(),
            }
    }

    fn target(&self) -> Addr {
        match self {
            Conn::Direct(c) => c.target().clone(),
            Conn::Pooled(p) => p.target().clone(),
        }
    }
}

/// A client bound to a service name, resolved through the ASD.
///
/// # Delivery semantics
///
/// * [`FailoverClient::call`] is **at-most-once**: resolution and
///   connection failures are retried within the retry window, but once a
///   command has been sent on an established link, a lost reply surfaces
///   as an error — the command may or may not have executed, and the
///   client never re-sends it.
/// * [`FailoverClient::call_idempotent`] is **at-least-once**: link
///   failures after send are also retried against a fresh resolution, so
///   the command can execute more than once.  Only use it for commands
///   that are safe to repeat (reads, absolute writes, registrations).
pub struct FailoverClient {
    net: SimNet,
    from_host: HostId,
    identity: KeyPair,
    /// Directory replicas to resolve through, tried in order.  A single
    /// ASD is the one-element case; the sharded directory plane passes
    /// the replica set of the shard owning `service_name`.
    directory: Vec<Addr>,
    service_name: String,
    /// How long to keep re-resolving before giving up.
    retry_window: Duration,
    /// Backoff between re-resolutions (lets leases expire / restarts
    /// finish).
    policy: RetryPolicy,
    current: Option<Conn>,
    pool: Option<Arc<LinkPool>>,
    cache: Option<Arc<ResolutionCache>>,
    breaker: Option<Arc<BreakerRegistry>>,
    retry_budget: Option<Arc<RetryBudget>>,
    /// Resolutions performed (observability for tests/experiments).
    resolutions: u64,
    /// Calls rejected locally by an open circuit breaker.
    breaker_fast_fails: u64,
}

impl FailoverClient {
    /// Bind to `service_name`, resolving through the ASD at `asd`.
    pub fn bind(
        net: SimNet,
        from_host: impl Into<HostId>,
        identity: KeyPair,
        asd: Addr,
        service_name: impl Into<String>,
    ) -> FailoverClient {
        FailoverClient {
            net,
            from_host: from_host.into(),
            identity,
            directory: vec![asd],
            service_name: service_name.into(),
            retry_window: Duration::from_secs(10),
            policy: RetryPolicy::new(Duration::from_millis(50))
                .with_cap(Duration::from_millis(400)),
            current: None,
            pool: None,
            cache: None,
            breaker: None,
            retry_budget: None,
            resolutions: 0,
            breaker_fast_fails: 0,
        }
    }

    /// Resolve through a replicated directory: `replicas` are tried in
    /// order until one answers, so a crashed directory replica costs one
    /// extra round trip instead of a failed resolution.  Replaces the
    /// single address given to [`FailoverClient::bind`]; an empty vector
    /// is ignored.
    pub fn with_directory_replicas(mut self, replicas: Vec<Addr>) -> FailoverClient {
        if !replicas.is_empty() {
            self.directory = replicas;
        }
        self
    }

    /// Adjust how long a failed call keeps hunting for a live instance.
    pub fn with_retry_window(mut self, window: Duration) -> FailoverClient {
        self.retry_window = window;
        self
    }

    /// Use a flat retry interval (legacy fixed-sleep behavior).
    pub fn with_retry_interval(mut self, interval: Duration) -> FailoverClient {
        self.policy = RetryPolicy::fixed(interval);
        self
    }

    /// Use a custom backoff policy between re-resolutions.  Any wall-clock
    /// budget on the policy is ignored; the retry window set by
    /// [`FailoverClient::with_retry_window`] governs how long a call hunts.
    pub fn with_policy(mut self, policy: RetryPolicy) -> FailoverClient {
        self.policy = policy;
        self
    }

    /// Check service links (and ASD lookup links) out of `pool` instead of
    /// dialing a dedicated connection per resolution.
    pub fn with_pool(mut self, pool: Arc<LinkPool>) -> FailoverClient {
        self.pool = Some(pool);
        self
    }

    /// Cache resolved addresses in `cache` (TTL from the ASD lease).
    pub fn with_resolution_cache(mut self, cache: Arc<ResolutionCache>) -> FailoverClient {
        self.cache = Some(cache);
        self
    }

    /// Guard calls with per-target circuit breakers (shared across the
    /// process's clients).  Link failures and `E_BUSY` sheds count toward
    /// opening; an open breaker fails calls fast without touching the
    /// network, and opening evicts pooled links and the cached resolution
    /// exactly like an `E_UPGRADING` rejection does.
    pub fn with_breaker(mut self, breaker: Arc<BreakerRegistry>) -> FailoverClient {
        self.breaker = Some(breaker);
        self
    }

    /// Cap this client's retries with a shared [`RetryBudget`]: each call
    /// deposits a fraction of a retry, each actual retry withdraws one, so
    /// sustained failure degrades to roughly one attempt per call instead
    /// of a full retry storm.
    pub fn with_retry_budget(mut self, budget: Arc<RetryBudget>) -> FailoverClient {
        self.retry_budget = Some(budget);
        self
    }

    /// How many times the name has been (re-)resolved through the ASD
    /// (cache hits don't count — that is the point of the cache).
    pub fn resolutions(&self) -> u64 {
        self.resolutions
    }

    /// Calls rejected locally because the target's breaker was open.
    pub fn breaker_fast_fails(&self) -> u64 {
        self.breaker_fast_fails
    }

    fn lookup_via(&self, asd_client: &mut ServiceClient) -> Result<CmdLine, ClientError> {
        asd_client.call(&CmdLine::new("lookup").arg("name", self.service_name.as_str()))
    }

    fn lookup_pooled(&self, pool: &Arc<LinkPool>, asd: &Addr) -> Result<CmdLine, ClientError> {
        let mut link = pool.checkout(asd)?;
        link.call(&CmdLine::new("lookup").arg("name", self.service_name.as_str()))
    }

    /// One lookup round trip against a specific directory replica.
    fn lookup_replica(&self, asd: &Addr) -> Result<CmdLine, ClientError> {
        match &self.pool {
            Some(pool) => {
                let pool = Arc::clone(pool);
                self.lookup_pooled(&pool, asd)
            }
            None => {
                let mut asd_client = ServiceClient::connect(
                    &self.net,
                    &self.from_host,
                    asd.clone(),
                    &self.identity,
                )?;
                self.lookup_via(&mut asd_client)
            }
        }
    }

    fn resolve(&mut self) -> Result<Addr, ClientError> {
        if let Some(cache) = &self.cache {
            if let Some(addr) = cache.get(&self.service_name) {
                return Ok(addr);
            }
        }
        // Hunt across the directory replica set: any live replica can
        // answer, so only fail when every replica is unreachable.
        let mut reply = None;
        let mut last_err: Option<ClientError> = None;
        for asd in self.directory.clone() {
            match self.lookup_replica(&asd) {
                Ok(r) => {
                    reply = Some(r);
                    break;
                }
                Err(err) => last_err = Some(err),
            }
        }
        let reply = match reply {
            Some(r) => r,
            None => {
                return Err(last_err.unwrap_or(ClientError::Service {
                    code: ErrorCode::Unavailable,
                    msg: "no directory replica configured".into(),
                }))
            }
        };
        self.resolutions += 1;
        let entries = reply
            .get("services")
            .and_then(protocol::entries_from_value)
            .unwrap_or_default();
        match entries.into_iter().next() {
            Some(entry) => {
                if let Some(cache) = &self.cache {
                    let ttl = resolution_ttl(reply.get_int("lease"));
                    cache.store(&self.service_name, entry.addr.clone(), ttl);
                }
                Ok(entry.addr)
            }
            None => Err(ClientError::Service {
                code: ErrorCode::NotFound,
                msg: format!("{} not registered", self.service_name),
            }),
        }
    }

    fn connect_current(&mut self) -> Result<&mut Conn, ClientError> {
        if self.current.is_none() {
            let addr = self.resolve()?;
            if let Some(breaker) = &self.breaker {
                if breaker.check(&addr) == BreakerVerdict::Rejected {
                    self.breaker_fast_fails += 1;
                    return Err(ClientError::Service {
                        code: ErrorCode::Busy,
                        msg: format!("circuit breaker open for {addr}"),
                    });
                }
            }
            let dialed = match &self.pool {
                Some(pool) => pool.checkout(&addr).map(Conn::Pooled),
                None => {
                    ServiceClient::connect(&self.net, &self.from_host, addr.clone(), &self.identity)
                        .map(Conn::Direct)
                }
            };
            match dialed {
                Ok(conn) => self.current = Some(conn),
                Err(err) => {
                    // A breaker `Admit` (possibly a half-open probe slot)
                    // must see exactly one outcome report.
                    self.note_target_failure(&addr);
                    return Err(err);
                }
            }
        }
        Ok(self.current.as_mut().expect("just connected"))
    }

    /// Issue a command with at-most-once execution: on a *connection* or
    /// *resolution* failure the call hunts for a live instance within the
    /// retry window, but once a command has been sent on an established
    /// link, a lost reply surfaces as an error rather than being retried.
    pub fn call(&mut self, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        self.call_inner(cmd, false)
    }

    /// Issue an idempotent command with at-least-once semantics: link
    /// failures *after* send are also retried against a fresh resolution.
    pub fn call_idempotent(&mut self, cmd: &CmdLine) -> Result<CmdLine, ClientError> {
        self.call_inner(cmd, true)
    }

    /// A link-level failure makes the cached resolution suspect: the
    /// service may have moved.  Drop both the link and the cache entry so
    /// the next attempt resolves fresh.
    fn note_link_failure(&mut self) {
        self.current = None;
        if let Some(cache) = &self.cache {
            cache.invalidate(&self.service_name);
        }
    }

    /// Report a failed call to the breaker.  When this failure *opens* the
    /// target's breaker, evict its pooled links and the cached resolution —
    /// the same cleanup `note_upgrading` performs — so no client keeps
    /// dialing a melting instance from warm state.
    fn note_target_failure(&mut self, target: &Addr) {
        if let Some(breaker) = &self.breaker {
            if breaker.record_failure(target) {
                if let Some(pool) = &self.pool {
                    pool.evict(target);
                }
                if let Some(cache) = &self.cache {
                    cache.invalidate(&self.service_name);
                }
            }
        }
    }

    fn note_target_success(&mut self, target: &Addr) {
        if let Some(breaker) = &self.breaker {
            breaker.record_success(target);
        }
    }

    /// An `E_UPGRADING` rejection is *not* a link failure — the link is
    /// healthy and a plain drop would park it back into the pool, handing
    /// the next checkout a connection to the quiescing instance.  Discard
    /// the held link explicitly, evict any idle links parked for the same
    /// address, and drop the cached resolution so the retry resolves the
    /// replacement.
    fn note_upgrading(&mut self) {
        match self.current.take() {
            Some(Conn::Pooled(link)) => {
                let target = link.target().clone();
                link.discard();
                if let Some(pool) = &self.pool {
                    pool.evict(&target);
                }
            }
            Some(Conn::Direct(client)) => client.close(),
            None => {}
        }
        if let Some(cache) = &self.cache {
            cache.invalidate(&self.service_name);
        }
    }

    fn call_inner(
        &mut self,
        cmd: &CmdLine,
        retry_after_send: bool,
    ) -> Result<CmdLine, ClientError> {
        if let Some(budget) = &self.retry_budget {
            budget.note_call();
        }
        let mut policy = self.policy.clone().with_budget(self.retry_window);
        if let Some(budget) = &self.retry_budget {
            policy = policy.with_retry_budget(Arc::clone(budget));
        }
        let mut retry = policy.start();
        // Commands without an explicit deadline get stamped with what is
        // left of the hunt window on each attempt, so servers can shed
        // work we will have given up on.
        let hunt_deadline = Instant::now() + self.retry_window;
        let stamp = cmd.deadline_ms().is_none();
        let mut last_err: Option<ClientError>;
        loop {
            let attempt_cmd;
            let cmd = if stamp {
                let remaining = hunt_deadline.saturating_duration_since(Instant::now());
                let mut c = cmd.clone();
                c.set_deadline_ms(remaining.as_millis() as i64);
                attempt_cmd = c;
                &attempt_cmd
            } else {
                cmd
            };
            let held_over = self.current.is_some();
            match self.connect_current() {
                Ok(conn) => {
                    let established = conn.is_established(held_over);
                    let target = conn.target();
                    match conn.call(cmd) {
                        Ok(reply) => {
                            self.note_target_success(&target);
                            return Ok(reply);
                        }
                        Err(err @ ClientError::Service { .. }) => match err.code() {
                            // E_UPGRADING means the verb was not executed
                            // and the replacement is moments away: evict
                            // the link + resolution and keep hunting.
                            Some(ErrorCode::Upgrading) => {
                                self.note_upgrading();
                                last_err = Some(err);
                            }
                            // E_BUSY / E_DEADLINE: the daemon shed the
                            // command before executing it.  The link is
                            // healthy — keep it — but an overloaded target
                            // counts toward opening its breaker.
                            Some(code) if code.is_retryable() => {
                                self.note_target_failure(&target);
                                last_err = Some(err);
                            }
                            _ => return Err(err),
                        },
                        Err(link_err) => {
                            self.note_target_failure(&target);
                            self.note_link_failure();
                            // A send on an established link may have
                            // executed; only retry when the caller allows it
                            // or the link was fresh enough that nothing can
                            // have run.
                            if !retry_after_send && established {
                                return Err(link_err);
                            }
                            last_err = Some(link_err);
                        }
                    }
                }
                Err(err) => {
                    // Resolution failures, dial failures, and breaker
                    // fast-fails.  Only link-level errors implicate the
                    // cached resolution.
                    if matches!(err, ClientError::Link(_)) {
                        self.note_link_failure();
                    }
                    last_err = Some(err);
                }
            }
            if !retry.backoff() {
                return Err(last_err.unwrap_or(ClientError::Service {
                    code: ErrorCode::Unavailable,
                    msg: "retry window exhausted".into(),
                }));
            }
        }
    }
}

impl std::fmt::Debug for FailoverClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "FailoverClient({} via {} directory replica{})",
            self.service_name,
            self.directory.len(),
            if self.directory.len() == 1 { "" } else { "s" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_respects_ttl_and_invalidation() {
        let cache = ResolutionCache::new();
        let addr = Addr::new("svc", 700);
        cache.store("echo", addr.clone(), Duration::from_secs(5));
        assert_eq!(cache.get("echo"), Some(addr.clone()));
        cache.invalidate("echo");
        assert_eq!(cache.get("echo"), None);

        cache.store("echo", addr, Duration::from_millis(10));
        std::thread::sleep(Duration::from_millis(25));
        assert_eq!(cache.get("echo"), None, "expired entry must not serve");
        let (hits, misses) = cache.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 2);
    }

    // Regression: a lookup reply carrying lease=0 (or a negative or
    // absurdly large value) must not poison the cache with a zero-duration
    // or overflowing TTL.
    #[test]
    fn resolution_ttl_clamps_degenerate_leases() {
        assert_eq!(resolution_ttl(None), DEFAULT_RESOLUTION_TTL);
        assert_eq!(resolution_ttl(Some(0)), DEFAULT_RESOLUTION_TTL);
        assert_eq!(resolution_ttl(Some(-5_000)), DEFAULT_RESOLUTION_TTL);
        assert_eq!(resolution_ttl(Some(i64::MIN)), DEFAULT_RESOLUTION_TTL);
        assert_eq!(resolution_ttl(Some(1_500)), Duration::from_millis(1_500));
        assert_eq!(resolution_ttl(Some(i64::MAX)), MAX_RESOLUTION_TTL);
    }

    #[test]
    fn overflowing_lease_does_not_panic_the_cache() {
        // Before the clamp, Instant::now() + Duration::from_millis(i64::MAX
        // as u64) panicked inside ResolutionCache::store.
        let cache = ResolutionCache::new();
        let addr = Addr::new("svc", 700);
        cache.store("echo", addr.clone(), resolution_ttl(Some(i64::MAX)));
        assert_eq!(cache.get("echo"), Some(addr));
    }
}
