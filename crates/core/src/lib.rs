//! # ace-core — the ACE service daemon framework
//!
//! The paper's primary contribution (§2): a modular infrastructure in which
//! every capability of an Ambient Computational Environment — device
//! control, databases, media processing, user identification — is a small
//! *service daemon* with a common shell:
//!
//! * **four-thread runtime** ([`daemon`]) — main, per-connection command,
//!   control, and data threads joined by message queues (§2.1.1);
//! * **secure links** ([`link`]) — encrypted sockets with proven principal
//!   identity (§3.1);
//! * **command language plumbing** — parsing and semantic validation on the
//!   command thread (§2.2, via `ace-lang`);
//! * **authorization** ([`auth`]) — the Fig. 10 KeyNote check on every
//!   command (§3.2);
//! * **notifications** ([`notify`]) — the Fig. 8 listen/notify registry
//!   (§2.5);
//! * **startup sequence** — the Fig. 9 Room DB → ASD → Net Logger
//!   registration, plus lease renewal and graceful deregistration (§2.4,
//!   §2.6);
//! * **client API** ([`client`]) — the call/return-command discipline.
//!
//! A complete service is a [`ServiceBehavior`] implementation plus a
//! [`DaemonConfig`]:
//!
//! ```
//! use ace_core::prelude::*;
//! use ace_net::SimNet;
//!
//! struct Echo;
//! impl ServiceBehavior for Echo {
//!     fn semantics(&self) -> Semantics {
//!         Semantics::new().with(
//!             CmdSpec::new("echo", "echo back").required("text", ArgType::Str, "payload"))
//!     }
//!     fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
//!         let text = cmd.get_text("text").unwrap_or("").to_string();
//!         Reply::ok_with(|c| c.arg("text", text))
//!     }
//! }
//!
//! let net = SimNet::new();
//! net.add_host("bar");
//! let daemon = Daemon::spawn(
//!     &net,
//!     DaemonConfig::new("echo1", "Service.Echo", "hawk", "bar", 4100),
//!     Box::new(Echo),
//! ).unwrap();
//!
//! let me = ace_security::keys::KeyPair::generate(&mut rand::thread_rng());
//! let mut client = ServiceClient::connect(&net, &"bar".into(), daemon.addr().clone(), &me).unwrap();
//! let reply = client.call(&CmdLine::new("echo").arg("text", "hi")).unwrap();
//! assert_eq!(reply.get_text("text"), Some("hi"));
//! daemon.shutdown();
//! ```

pub mod admission;
pub mod auth;
pub mod behavior;
pub mod breaker;
pub mod client;
pub mod daemon;
pub mod failover;
pub mod link;
pub mod metrics;
pub mod notify;
pub mod pool;
pub mod protocol;
pub mod quorum;
pub mod retry;
pub mod runtime;
pub mod supervise;

pub use admission::{AdmissionConfig, AdmitError, Lane};
pub use auth::{action_env_for, AuthMode, Authorizer, CredentialSource};
pub use behavior::{ClientInfo, ServiceBehavior, ServiceCtx};
pub use breaker::{BreakerConfig, BreakerRegistry, BreakerVerdict};
pub use client::{ClientError, ServiceClient};
pub use daemon::{Daemon, DaemonConfig, DaemonHandle, SpawnError};
pub use failover::{
    subscribe_expiry_invalidation, FailoverClient, ResolutionCache, ResolutionInvalidator,
};
pub use link::{LinkError, SecureLink, TicketCache, TicketVault};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry, RegistrySnapshot, StatsReport};
pub use notify::{NotificationRegistry, Notifier, NotifierTask, Registration};
pub use pool::{LinkPool, PooledLink};
pub use protocol::{ServiceEntry, ASD_PORT, LOGGER_PORT, ROOMDB_PORT};
pub use quorum::{majority, QuorumRound};
pub use retry::{Retry, RetryBudget, RetryPolicy};
pub use runtime::{Runtime, RuntimeMode, RuntimeTask, TaskContext, TaskHandle, TaskPoll};
pub use supervise::{
    live_upgrade, Respawn, RespawnFn, RestartPolicy, SuperviseError, SupervisedSpec, Supervisor,
    SupervisorReport, UpgradeError, UpgradeFn, UpgradeStats,
};

/// Everything needed to implement and run a service.
pub mod prelude {
    pub use crate::admission::AdmissionConfig;
    pub use crate::auth::{AuthMode, Authorizer};
    pub use crate::behavior::{ClientInfo, ServiceBehavior, ServiceCtx};
    pub use crate::breaker::{BreakerConfig, BreakerRegistry};
    pub use crate::client::{ClientError, ServiceClient};
    pub use crate::daemon::{Daemon, DaemonConfig, DaemonHandle};
    pub use crate::failover::{
        subscribe_expiry_invalidation, FailoverClient, ResolutionCache, ResolutionInvalidator,
    };
    pub use crate::link::{TicketCache, TicketVault};
    pub use crate::metrics::{MetricsRegistry, StatsReport};
    pub use crate::pool::{LinkPool, PooledLink};
    pub use crate::protocol::ServiceEntry;
    pub use crate::quorum::{majority, QuorumRound};
    pub use crate::retry::{Retry, RetryBudget, RetryPolicy};
    pub use crate::runtime::{Runtime, RuntimeMode};
    pub use crate::supervise::{
        live_upgrade, Respawn, RestartPolicy, SupervisedSpec, Supervisor, UpgradeError,
        UpgradeStats,
    };
    pub use ace_lang::{
        req_f64, req_int, req_text, ArgType, CmdLine, CmdSpec, ErrorCode, Reply, Scalar, Semantics,
        Value,
    };
    pub use ace_net::{Addr, HostId, SimNet};
}
