//! The unified observability layer, end to end: `aceStats` round-trips on
//! directory, store, and media daemons; notify fan-out survives a dead
//! subscriber with counted (never silent) drops; and periodic `stats`
//! events land in the Net Logger as typed, queryable records.

use ace_core::prelude::*;
use ace_core::protocol::LOGGER_PORT;
use ace_directory::LoggerClient;
use ace_media::Frame;
use ace_net::{FaultKind, FaultPlan};
use ace_security::keys::KeyPair;
use ace_store::{DiskImage, MemStorage, StorageHandle, StoreClient, StoreReplica, WalConfig};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

fn wait_until(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    false
}

/// Fetch and decode one daemon's `aceStats`.
fn ace_stats(client: &mut ServiceClient, prefix: Option<&str>) -> StatsReport {
    let mut cmd = CmdLine::new("aceStats");
    if let Some(p) = prefix {
        cmd.push_arg("prefix", p);
    }
    let reply = client.call(&cmd).expect("aceStats answers");
    StatsReport::from_cmdline(&reply)
}

fn assert_sane_quantiles(report: &StatsReport, name: &str, min_count: u64) {
    let h = report
        .histograms
        .get(name)
        .unwrap_or_else(|| panic!("histogram `{name}` missing: {:?}", report.histograms.keys()));
    assert!(
        h.count >= min_count,
        "{name}: count {} < {min_count}",
        h.count
    );
    assert!(
        h.p50_us <= h.p90_us && h.p90_us <= h.p99_us,
        "{name}: quantiles out of order: {h:?}"
    );
    assert!(h.p99_us <= h.max_us as f64, "{name}: p99 above max: {h:?}");
}

/// ASD: per-verb latency histograms, queue gauges, and link byte counters
/// all move after traffic, and the prefix filter narrows the reply.
#[test]
fn ace_stats_roundtrip_asd() {
    let net = SimNet::new();
    net.add_host("core");
    let daemon = Daemon::spawn(
        &net,
        DaemonConfig::new("asd", "Service.Directory.ASD", "machine", "core", 4300),
        Box::new(ace_directory::Asd::new(Duration::from_secs(60))),
    )
    .unwrap();
    let me = keypair();
    let mut client =
        ServiceClient::connect(&net, &"core".into(), daemon.addr().clone(), &me).unwrap();

    for _ in 0..8 {
        client.call(&CmdLine::new("ping")).unwrap();
    }

    let report = ace_stats(&mut client, None);
    assert_sane_quantiles(&report, "cmd.ping", 8);
    assert!(
        report
            .counters
            .get("link.sealedBytes")
            .copied()
            .unwrap_or(0)
            > 0,
        "sealed byte counter never moved: {:?}",
        report.counters
    );
    assert!(
        report.gauges.contains_key("control.queueDepth"),
        "queue depth gauge missing: {:?}",
        report.gauges
    );
    assert_sane_quantiles(&report, "control.queueWait", 8);

    let narrowed = ace_stats(&mut client, Some("cmd."));
    assert!(narrowed.histograms.keys().all(|k| k.starts_with("cmd.")));
    assert!(narrowed.counters.keys().all(|k| k.starts_with("cmd.")));
    assert!(!narrowed.histograms.is_empty());

    daemon.shutdown();
}

/// A daemon on the shared runtime surfaces the `runtime.*` gauge family
/// through `aceStats`; a daemon pinned to the threaded shell does not.
#[test]
fn ace_stats_roundtrip_runtime_gauges() {
    let net = SimNet::new();
    net.add_host("core");
    let pool = ace_core::Runtime::new(2);
    let shared = Daemon::spawn(
        &net,
        DaemonConfig::new("shared", "Service.Directory.ASD", "machine", "core", 4310)
            .with_runtime_pool(pool.clone()),
        Box::new(ace_directory::Asd::new(Duration::from_secs(60))),
    )
    .unwrap();
    let threaded = Daemon::spawn(
        &net,
        DaemonConfig::new("threaded", "Service.Directory.ASD", "machine", "core", 4311)
            .with_runtime(RuntimeMode::Threads),
        Box::new(ace_directory::Asd::new(Duration::from_secs(60))),
    )
    .unwrap();
    let me = keypair();

    let mut client =
        ServiceClient::connect(&net, &"core".into(), shared.addr().clone(), &me).unwrap();
    for _ in 0..4 {
        client.call(&CmdLine::new("ping")).unwrap();
    }
    let report = ace_stats(&mut client, Some("runtime."));
    // The shared daemon contributes two tasks: its main task plus its
    // cooperative notifier.
    assert!(
        report.gauges.get("runtime.tasksLive").copied().unwrap_or(0) >= 2,
        "shared daemon must report live runtime tasks: {:?}",
        report.gauges
    );
    assert!(
        report.gauges.get("runtime.workers").copied().unwrap_or(0) >= 2,
        "worker pool size missing: {:?}",
        report.gauges
    );
    assert!(
        report.gauges.get("runtime.polls").copied().unwrap_or(0) > 0,
        "poll counter never moved: {:?}",
        report.gauges
    );
    for key in [
        "runtime.readyQueue",
        "runtime.timerFires",
        "runtime.workerParks",
        "runtime.longPolls",
        "runtime.workersInjected",
    ] {
        assert!(
            report.gauges.contains_key(key),
            "{key} missing from aceStats: {:?}",
            report.gauges
        );
    }

    let mut old_school =
        ServiceClient::connect(&net, &"core".into(), threaded.addr().clone(), &me).unwrap();
    old_school.call(&CmdLine::new("ping")).unwrap();
    let report = ace_stats(&mut old_school, Some("runtime."));
    assert!(
        report.gauges.is_empty(),
        "threaded daemon must not report shared-runtime gauges: {:?}",
        report.gauges
    );

    shared.shutdown();
    threaded.shutdown();
    pool.shutdown();
}

/// A WAL-backed store replica re-exports WAL batch stats through `aceStats`.
#[test]
fn ace_stats_roundtrip_store_replica() {
    let net = SimNet::new();
    net.add_host("store");
    let storage = StorageHandle::Memory(MemStorage::new());
    let (disk, _report) = DiskImage::open(&storage, WalConfig::default()).unwrap();
    let daemon = Daemon::spawn(
        &net,
        DaemonConfig::new("store_a", "Service.Store", "machine", "store", 4310),
        Box::new(StoreReplica::new(disk, Duration::from_secs(3600))),
    )
    .unwrap();

    let mut store = StoreClient::new(net.clone(), "store", keypair(), vec![daemon.addr().clone()]);
    for i in 0..5 {
        store
            .put("ns", &format!("key{i}"), format!("value{i}").as_bytes())
            .unwrap();
    }

    let me = keypair();
    let mut client =
        ServiceClient::connect(&net, &"store".into(), daemon.addr().clone(), &me).unwrap();
    let report = ace_stats(&mut client, None);
    // Gauges are keyed by daemon identity so co-located replicas never
    // collapse into one series.
    assert!(
        report
            .gauges
            .get("store.store_a.entries")
            .copied()
            .unwrap_or(0)
            >= 5,
        "store entries gauge: {:?}",
        report.gauges
    );
    assert!(
        report
            .gauges
            .get("wal.store_a.appends")
            .copied()
            .unwrap_or(0)
            >= 5,
        "wal append gauge: {:?}",
        report.gauges
    );
    assert!(
        !report.histograms.is_empty(),
        "no per-verb histograms after traffic"
    );

    daemon.shutdown();
}

/// Two replicas of the same class on one host must publish *distinct*
/// `store.*`/`wal.*` series — keyed by daemon name — so an aggregator that
/// merges their registries sees both, not one overwriting the other.
#[test]
fn store_gauges_are_distinct_series_per_daemon() {
    let net = SimNet::new();
    net.add_host("store");
    let mut daemons = Vec::new();
    for (name, port, writes) in [("store_a", 4330u16, 3usize), ("store_b", 4331, 7)] {
        let storage = StorageHandle::Memory(MemStorage::new());
        let (disk, _report) = DiskImage::open(&storage, WalConfig::default()).unwrap();
        let daemon = Daemon::spawn(
            &net,
            DaemonConfig::new(name, "Service.Store", "machine", "store", port),
            Box::new(StoreReplica::new(disk, Duration::from_secs(3600))),
        )
        .unwrap();
        let mut store =
            StoreClient::new(net.clone(), "store", keypair(), vec![daemon.addr().clone()]);
        for i in 0..writes {
            store.put("ns", &format!("k{i}"), b"v").unwrap();
        }
        daemons.push(daemon);
    }

    let me = keypair();
    let mut merged = std::collections::BTreeMap::new();
    for daemon in &daemons {
        let mut client =
            ServiceClient::connect(&net, &"store".into(), daemon.addr().clone(), &me).unwrap();
        merged.extend(ace_stats(&mut client, None).gauges);
    }
    assert_eq!(merged.get("store.store_a.entries").copied(), Some(3));
    assert_eq!(merged.get("store.store_b.entries").copied(), Some(7));
    assert!(merged.get("wal.store_a.appends").copied().unwrap_or(0) >= 3);
    assert!(merged.get("wal.store_b.appends").copied().unwrap_or(0) >= 7);
    assert!(
        !merged.contains_key("store.entries") && !merged.contains_key("wal.appends"),
        "unkeyed legacy series must be gone: {merged:?}"
    );

    for daemon in daemons {
        daemon.shutdown();
    }
}

/// A media daemon (the mixer) reports per-verb latency plus its own gauges.
#[test]
fn ace_stats_roundtrip_media_mixer() {
    let net = SimNet::new();
    net.add_host("av");
    let daemon = Daemon::spawn(
        &net,
        DaemonConfig::new("mixer", "Service.Media.Mixer", "hawk", "av", 4320),
        Box::new(ace_media::services::AudioMixer::new("out")),
    )
    .unwrap();
    let me = keypair();
    let mut client =
        ServiceClient::connect(&net, &"av".into(), daemon.addr().clone(), &me).unwrap();

    client
        .call_ok(&CmdLine::new("addInput").arg("stream", "mic1"))
        .unwrap();
    for seq in 0..6i64 {
        let frame = Frame {
            stream: "mic1".into(),
            seq,
            data: vec![0, 1, 2, 3],
        };
        client.call(&frame.to_cmd()).unwrap();
    }

    let report = ace_stats(&mut client, None);
    assert_sane_quantiles(&report, "cmd.push", 6);
    assert_eq!(report.gauges.get("mixer.inputs").copied(), Some(1));
    assert!(
        report.gauges.get("mixer.mixed").copied().unwrap_or(0) >= 6,
        "mixer gauges: {:?}",
        report.gauges
    );

    daemon.shutdown();
}

struct Poker;
impl ServiceBehavior for Poker {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("poke", "fire a watched command"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
}

struct Recorder(Arc<AtomicU64>);
impl ServiceBehavior for Recorder {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(
            CmdSpec::new("observe", "record one notification")
                .optional("service", ArgType::Word, "originating service")
                .optional("cmd", ArgType::Word, "executed command"),
        )
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        match cmd.name() {
            "observe" => {
                self.0.fetch_add(1, Ordering::SeqCst);
                Reply::ok()
            }
            other => Reply::err(ErrorCode::Internal, format!("unrouted command `{other}`")),
        }
    }
}

/// One crashed subscriber must not stall or starve fan-out to the healthy
/// one, and every failed delivery is counted on the origin — never silent.
#[test]
fn notify_fanout_survives_dead_subscriber() {
    let net = SimNet::new();
    for h in ["origin", "alive", "dead", "tester"] {
        net.add_host(h);
    }
    let origin = Daemon::spawn(
        &net,
        DaemonConfig::new("poker", "Service.Test", "room", "origin", 4400),
        Box::new(Poker),
    )
    .unwrap();
    let seen = Arc::new(AtomicU64::new(0));
    let alive = Daemon::spawn(
        &net,
        DaemonConfig::new("rec_alive", "Service.Test", "room", "alive", 4401),
        Box::new(Recorder(Arc::clone(&seen))),
    )
    .unwrap();
    let doomed = Daemon::spawn(
        &net,
        DaemonConfig::new("rec_dead", "Service.Test", "room", "dead", 4402),
        Box::new(Recorder(Arc::new(AtomicU64::new(0)))),
    )
    .unwrap();

    let me = keypair();
    let mut client =
        ServiceClient::connect(&net, &"tester".into(), origin.addr().clone(), &me).unwrap();
    for (service, addr) in [("rec_alive", alive.addr()), ("rec_dead", doomed.addr())] {
        client
            .call_ok(
                &CmdLine::new("addNotification")
                    .arg("cmd", "poke")
                    .arg("service", service)
                    .arg("host", addr.host.as_str())
                    .arg("port", addr.port as i64)
                    .arg("notifyCmd", "observe"),
            )
            .unwrap();
    }

    // The subscriber on `dead` goes down before any notification flows.
    let plan = FaultPlan::new(Duration::from_millis(100))
        .at(Duration::ZERO, FaultKind::Crash("dead".into()));
    plan.spawn(&net).join();

    const POKES: u64 = 20;
    for _ in 0..POKES {
        client.call_ok(&CmdLine::new("poke")).unwrap();
    }

    // Delivery is asynchronous: the healthy subscriber must receive every
    // single notification despite the dead peer ahead of it in the queue.
    assert!(
        wait_until(Duration::from_secs(10), || {
            seen.load(Ordering::SeqCst) >= POKES
        }),
        "healthy subscriber starved: got {} of {POKES}",
        seen.load(Ordering::SeqCst)
    );

    // The origin's registry owns the evidence: deliveries and drops both
    // counted.
    let accounted = wait_until(Duration::from_secs(5), || {
        let report = ace_stats(&mut client, Some("notify."));
        report
            .counters
            .get("notify.delivered")
            .copied()
            .unwrap_or(0)
            >= POKES
            && report.counters.get("notify.drops").copied().unwrap_or(0) >= 1
    });
    if !accounted {
        let report = ace_stats(&mut client, Some("notify."));
        panic!(
            "origin never accounted the dead subscriber: {:?}",
            report.counters
        );
    }

    origin.shutdown();
    alive.shutdown();
}

/// Daemons push periodic `stats` events to the Net Logger; the logger keeps
/// them as typed records answering `queryEvents`, and the payload decodes
/// back into a [`StatsReport`].
#[test]
fn stats_events_flow_to_logger() {
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("podium");
    let logger = Daemon::spawn(
        &net,
        DaemonConfig::new(
            "netlogger",
            "Service.Logger",
            "machine",
            "core",
            LOGGER_PORT,
        ),
        Box::new(ace_directory::NetLogger::new(1000)),
    )
    .unwrap();

    let cam = Daemon::spawn(
        &net,
        DaemonConfig::new("cam1", "Service.Device.PTZCamera", "hawk", "podium", 4410)
            .with_logger(logger.addr().clone())
            .with_stats_interval(Duration::from_millis(40)),
        Box::new(ace_env::PtzCamera::new(ace_env::CameraModel::Vcc4)),
    )
    .unwrap();

    let me = keypair();
    let mut cam_client =
        ServiceClient::connect(&net, &"podium".into(), cam.addr().clone(), &me).unwrap();
    let mut log_client =
        LoggerClient::connect(&net, &"core".into(), logger.addr().clone(), &me).unwrap();

    // Stats pushes ride the control loop, so keep it busy past the interval.
    let deadline = Instant::now() + Duration::from_secs(10);
    let rows = loop {
        cam_client.call(&CmdLine::new("ping")).unwrap();
        let rows = log_client.query_events("cam1", Some("stats"), 5).unwrap();
        if !rows.is_empty() {
            break rows;
        }
        assert!(Instant::now() < deadline, "no stats event arrived");
        std::thread::sleep(Duration::from_millis(25));
    };

    let (_seq, service, kind, host, fields) = rows.last().unwrap();
    assert_eq!(service, "cam1");
    assert_eq!(kind, "stats");
    assert_eq!(host, "podium");
    assert_eq!(fields.name(), "stats");
    let report = StatsReport::from_cmdline(fields);
    assert!(
        report.histograms.contains_key("cmd.ping"),
        "event payload lacks ping latency: {:?}",
        report.histograms.keys()
    );

    // Typed events also flow through the client API directly, and malformed
    // payloads are rejected instead of stored.
    log_client
        .event("tester", "custom", &CmdLine::new("note").arg("x", 1))
        .unwrap();
    let rows = log_client.query_events("tester", None, 5).unwrap();
    assert_eq!(rows.len(), 1);
    assert_eq!(rows[0].4.get_int("x"), Some(1));
    let err = ServiceClient::connect(&net, &"core".into(), logger.addr().clone(), &me)
        .unwrap()
        .call(
            &CmdLine::new("event")
                .arg("service", "tester")
                .arg("kind", "bad")
                .arg("data", Value::Word("xzz".into())),
        )
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Semantics));

    cam.shutdown();
    logger.shutdown();
}
