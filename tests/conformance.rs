//! Command-plane conformance: every registered verb of every daemon type is
//! fired with malformed variants — missing arguments, wrong-typed arguments,
//! empty strings — and must answer with an error `Reply`, never a panic and
//! never a dead link.  §2.2's promise is that semantic validation happens
//! *before* dispatch; this test pins the complementary handler-side promise
//! that nothing a validated-or-rejected command can carry crashes a daemon.

use ace_core::prelude::*;
use ace_core::protocol;
use ace_core::AdmissionConfig;
use ace_lang::{CmdSpec, ScalarType};
use ace_security::keys::KeyPair;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A value that satisfies `ty`.
fn valid_value(ty: &ArgType) -> Value {
    match ty {
        ArgType::Int => Value::Int(1),
        ArgType::Float => Value::Float(1.5),
        ArgType::Word => Value::Word("w".into()),
        ArgType::Str => Value::Str("text".into()),
        ArgType::Vector(t) => Value::Vector(vec![valid_scalar(*t)]),
        ArgType::Array(t) => Value::Array(vec![vec![valid_scalar(*t)]]),
        ArgType::Any => Value::Int(1),
    }
}

fn valid_scalar(t: ScalarType) -> Scalar {
    match t {
        ScalarType::Int => Scalar::Int(1),
        ScalarType::Float => Scalar::Float(1.5),
        ScalarType::Word => Scalar::Word("w".into()),
        ScalarType::Str => Scalar::Str("text".into()),
    }
}

/// A value that violates `ty` (`None` for `Any`, which accepts everything).
fn wrong_value(ty: &ArgType) -> Option<Value> {
    match ty {
        ArgType::Int => Some(Value::Word("notanint".into())),
        ArgType::Float => Some(Value::Word("notafloat".into())),
        // A multi-word string cannot narrow to a word.
        ArgType::Word => Some(Value::Str("two words".into())),
        ArgType::Str | ArgType::Vector(_) | ArgType::Array(_) => Some(Value::Int(7)),
        ArgType::Any => None,
    }
}

/// Every fuzz variant for one command spec.
fn variants(spec: &CmdSpec) -> Vec<CmdLine> {
    // All required args, valid values, optionally skipping one.
    let base = |skip: Option<&str>| {
        let mut c = CmdLine::new(spec.name.as_str());
        for a in spec.args.iter().filter(|a| a.required) {
            if Some(a.name.as_str()) != skip {
                c.push_arg(a.name.as_str(), valid_value(&a.ty));
            }
        }
        c
    };
    let mut out = vec![CmdLine::new(spec.name.as_str()), base(None)];
    // Everything including optionals.
    let mut all = CmdLine::new(spec.name.as_str());
    for a in &spec.args {
        all.push_arg(a.name.as_str(), valid_value(&a.ty));
    }
    out.push(all);
    for a in &spec.args {
        if a.required {
            // Just this one missing.
            out.push(base(Some(a.name.as_str())));
        }
        if let Some(w) = wrong_value(&a.ty) {
            let mut c = base(Some(a.name.as_str()));
            c.push_arg(a.name.as_str(), w);
            out.push(c);
        }
        if matches!(a.ty, ArgType::Str) {
            // Empty text passes validation and reaches the handler.
            let mut c = base(Some(a.name.as_str()));
            c.push_arg(a.name.as_str(), Value::Str(String::new()));
            out.push(c);
        }
    }
    out
}

type Factory = fn() -> Box<dyn ServiceBehavior>;

/// Every daemon type with a self-contained constructor, across all crates.
fn factories() -> Vec<(&'static str, Factory)> {
    vec![
        ("asd", || {
            Box::new(ace_directory::Asd::new(Duration::from_secs(60)))
        }),
        ("roomdb", || Box::new(ace_directory::RoomDb::new())),
        ("netlogger", || Box::new(ace_directory::NetLogger::new(64))),
        ("aud", || Box::new(ace_identity::UserDb::new())),
        ("authdb", || Box::new(ace_identity::AuthDb::new())),
        ("fiu", || {
            Box::new(ace_identity::Fiu::new(
                ace_identity::ScannerDevice::default(),
            ))
        }),
        ("ibutton", || Box::new(ace_identity::IButtonReader::new())),
        ("idmonitor", || Box::new(ace_identity::IdMonitor::new())),
        ("converter", || {
            Box::new(ace_media::services::Converter::new(
                ace_media::Format::Pcm16,
                ace_media::Format::Ulaw,
            ))
        }),
        ("distribution", || {
            Box::new(ace_media::services::Distribution::new())
        }),
        ("audiocapture", || {
            Box::new(ace_media::services::AudioCapture::new(440.0, 0.8))
        }),
        ("audiomixer", || {
            Box::new(ace_media::services::AudioMixer::new("out"))
        }),
        ("echocancel", || {
            Box::new(ace_media::services::EchoCancel::new(8))
        }),
        ("audiosink", || {
            Box::new(ace_media::services::AudioSink::new())
        }),
        ("tts", || Box::new(ace_media::services::TextToSpeech::new())),
        ("stc", || {
            Box::new(ace_media::services::SpeechToCommand::new())
        }),
        ("videocapture", || {
            Box::new(ace_media::VideoCapture::new(64, 48))
        }),
        ("voice", || Box::new(ace_media::VoiceControl::new())),
        ("vnchost", || Box::new(ace_workspace::VncHost::new())),
        ("wss", || Box::new(ace_workspace::Wss::new())),
        ("camera", || {
            Box::new(ace_env::PtzCamera::new(ace_env::CameraModel::Vcc4))
        }),
        ("projector", || Box::new(ace_env::Projector::new())),
        ("store", || {
            Box::new(ace_store::StoreReplica::new(
                ace_store::DiskImage::new(),
                Duration::from_secs(3600),
            ))
        }),
        ("srm", || {
            Box::new(ace_resources::Srm::new(Duration::from_secs(3600)))
        }),
        ("hrm", || {
            Box::new(ace_resources::Hrm::new(
                ace_resources::HostProfile::default(),
            ))
        }),
        ("sal", || Box::new(ace_resources::Sal::new())),
        ("hal", || Box::new(ace_resources::Hal::new())),
        ("filestorage", || {
            Box::new(ace_apps::FileStorage::new(Vec::new()))
        }),
        ("robustcounter", || {
            Box::new(ace_apps::RobustCounter::new(Vec::new()))
        }),
        ("ophone", || Box::new(ace_apps::OPhone::new(440.0))),
    ]
}

/// Fire every variant of every verb at every daemon type; the daemon must
/// stay alive (no link death), and its `control.panics` counter must stay
/// zero — `catch_unwind` turning a panic into an `Internal` reply still
/// counts as a defect here.
#[test]
fn every_daemon_survives_malformed_commands() {
    for (i, (name, factory)) in factories().into_iter().enumerate() {
        let net = SimNet::new();
        net.add_host("h");
        let behavior = factory();
        let semantics = behavior.semantics().inheriting(&protocol::base_semantics());
        let daemon = Daemon::spawn(
            &net,
            DaemonConfig::new(
                format!("{name}1"),
                "Service.Conformance",
                "room",
                "h",
                4200 + i as u16,
            ),
            behavior,
        )
        .unwrap_or_else(|e| panic!("{name}: spawn failed: {e:?}"));

        let me = KeyPair::generate(&mut rand::thread_rng());
        let mut client =
            ServiceClient::connect(&net, &"h".into(), daemon.addr().clone(), &me).unwrap();

        // Directory handlers have been swept of `expect("validated")`
        // panics: every malformed command they see must come back as a
        // typed rejection, never an `Internal` error (the code a
        // `catch_unwind`-converted panic or unrouted command would carry).
        let no_internal = matches!(name, "asd" | "roomdb" | "netlogger");

        for spec in semantics.specs() {
            if spec.name == "shutdown" {
                continue;
            }
            for cmd in variants(spec) {
                match client.call(&cmd) {
                    Ok(_) => {}
                    Err(ClientError::Service { code, msg }) => {
                        if no_internal {
                            assert_ne!(
                                code,
                                ErrorCode::Internal,
                                "{name}: `{}` answered Internal: {msg}",
                                cmd.to_wire()
                            );
                        }
                    }
                    Err(e) => panic!("{name}: `{}` killed the link: {e}", cmd.to_wire()),
                }
            }
            // Missing required arguments must be rejected, not absorbed —
            // and rejected by *validation* (ErrorCode::Semantics), before
            // the handler ever runs (§2.2).
            if spec.args.iter().any(|a| a.required) {
                let bare = CmdLine::new(spec.name.as_str());
                match client.call(&bare) {
                    Err(ClientError::Service { code, .. }) => assert_eq!(
                        code,
                        ErrorCode::Semantics,
                        "{name}: bare `{}` must fail semantic validation",
                        spec.name
                    ),
                    Ok(_) => panic!("{name}: `{}` accepted a call with no arguments", spec.name),
                    Err(e) => panic!("{name}: bare `{}` killed the link: {e}", spec.name),
                }
            }
        }

        // Still alive, and no handler panicked along the way.
        client.call(&CmdLine::new("ping")).unwrap();
        let stats = client.call(&CmdLine::new("aceStats")).unwrap();
        let report = StatsReport::from_cmdline(&stats);
        assert_eq!(
            report.counters.get("control.panics").copied().unwrap_or(0),
            0,
            "{name}: a handler panicked during fuzzing"
        );
        daemon.shutdown();
    }
}

/// Overload conformance: every daemon type, spawned with a single-slot bulk
/// lane, must degrade the same way when saturated — well-formed *retryable*
/// `E_BUSY` for overflow, deterministic `E_DEADLINE` for an already-expired
/// budget, a priority lane (`ping`) that stays answerable throughout, and
/// zero panics.  No daemon class gets to invent its own collapse mode.
#[test]
fn every_daemon_sheds_cleanly_when_saturated() {
    for (i, (name, factory)) in factories().into_iter().enumerate() {
        let net = SimNet::new();
        net.add_host("h");
        let behavior = factory();
        let daemon = Daemon::spawn(
            &net,
            DaemonConfig::new(
                format!("{name}1"),
                "Service.Conformance",
                "room",
                "h",
                4600 + i as u16,
            )
            .with_admission(AdmissionConfig {
                bulk_capacity: 1,
                // Capacity overflow only: wait-based shedding would make the
                // expected error mix timing-dependent.
                queue_target: None,
                ..AdmissionConfig::default()
            }),
            behavior,
        )
        .unwrap_or_else(|e| panic!("{name}: spawn failed: {e:?}"));

        let me = KeyPair::generate(&mut rand::thread_rng());
        let mut probe =
            ServiceClient::connect(&net, &"h".into(), daemon.addr().clone(), &me).unwrap();

        // An already-spent budget is shed before the handler runs —
        // deterministically, on every class.
        let mut expired = CmdLine::new("removeNotification")
            .arg("cmd", "x")
            .arg("service", "y");
        expired.set_deadline_ms(0);
        match probe.call(&expired) {
            Err(ClientError::Service { code, msg }) => {
                assert_eq!(
                    code,
                    ErrorCode::Deadline,
                    "{name}: expired budget answered {code}: {msg}"
                );
                assert!(code.is_retryable(), "{name}: E_DEADLINE must be retryable");
                assert!(!msg.is_empty(), "{name}: E_DEADLINE carried no message");
            }
            other => panic!("{name}: expired budget was not shed: {other:?}"),
        }

        // Flood the one-slot bulk lane from several links until overflow is
        // observed.  Every reply must be ok, the expected E_NOTFOUND, or a
        // well-formed retryable shed — never a dead link, never another
        // error class.
        let stop = Arc::new(AtomicBool::new(false));
        let busy = Arc::new(AtomicU64::new(0));
        let workers: Vec<_> = (0..4)
            .map(|w| {
                let net = net.clone();
                let addr = daemon.addr().clone();
                let stop = Arc::clone(&stop);
                let busy = Arc::clone(&busy);
                let name = name.to_string();
                std::thread::spawn(move || {
                    let me = KeyPair::generate(&mut rand::thread_rng());
                    let mut client = ServiceClient::connect(&net, &"h".into(), addr, &me).unwrap();
                    let cmd = CmdLine::new("removeNotification")
                        .arg("cmd", format!("c{w}"))
                        .arg("service", "nobody");
                    while !stop.load(Ordering::SeqCst) {
                        match client.call(&cmd) {
                            Ok(_) => {}
                            Err(ClientError::Service { code, msg }) => match code {
                                ErrorCode::NotFound => {}
                                ErrorCode::Busy => {
                                    assert!(code.is_retryable());
                                    assert!(!msg.is_empty(), "{name}: E_BUSY carried no message");
                                    busy.fetch_add(1, Ordering::SeqCst);
                                }
                                ErrorCode::Deadline => {
                                    assert!(code.is_retryable());
                                }
                                other => panic!("{name}: flood answered {other}: {msg}"),
                            },
                            Err(e) => panic!("{name}: flood killed the link: {e}"),
                        }
                    }
                })
            })
            .collect();

        // The priority lane stays answerable while bulk is saturated.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while busy.load(Ordering::SeqCst) == 0 {
            probe
                .call(&CmdLine::new("ping"))
                .unwrap_or_else(|e| panic!("{name}: ping failed under bulk saturation: {e}"));
            assert!(
                std::time::Instant::now() < deadline,
                "{name}: flood never tripped E_BUSY (bulk lane not bounded?)"
            );
        }
        stop.store(true, Ordering::SeqCst);
        for w in workers {
            w.join().unwrap();
        }

        let stats = probe.call(&CmdLine::new("aceStats")).unwrap();
        let report = StatsReport::from_cmdline(&stats);
        assert_eq!(
            report.counters.get("control.panics").copied().unwrap_or(0),
            0,
            "{name}: a handler panicked during saturation"
        );
        assert!(
            report.counters.get("shed.bulkFull").copied().unwrap_or(0) > 0,
            "{name}: shed.bulkFull never moved despite observed E_BUSY"
        );
        daemon.shutdown();
    }
}
