//! Chaos test: the §9 robustness goal — "a robust and reliable system of
//! services that can detect and recover from failures" — under injected
//! host crashes, revivals, and partitions while clients keep operating.

use ace_core::prelude::*;
use ace_directory::{bootstrap, AsdClient};
use ace_security::keys::KeyPair;
use ace_store::{spawn_store_cluster, StoreClient, StoreError};
use std::time::Duration;

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("touch", "no-op"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
}

/// A service host crash-loops three times; the directory always converges
/// to the truth (registered while up, purged after death), and an
/// unaffected service keeps serving throughout.
#[test]
fn directory_tracks_crash_loops() {
    let net = SimNet::new();
    for h in ["core", "flaky", "stable"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_millis(300)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());

    let stable = Daemon::spawn(
        &net,
        fw.service_config("steady", "Service.Echo", "hawk", "stable", 6000)
            .with_lease_renew(Duration::from_millis(100)),
        Box::new(Echo),
    )
    .unwrap();
    let mut stable_client =
        ServiceClient::connect(&net, &"core".into(), stable.addr().clone(), &me).unwrap();
    let mut asd = AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();

    for round in 0..3 {
        // Bring the flaky service up.
        let flaky = Daemon::spawn(
            &net,
            fw.service_config("flaky", "Service.Echo", "hawk", "flaky", 6000)
                .with_lease_renew(Duration::from_millis(100)),
            Box::new(Echo),
        )
        .unwrap();
        assert!(
            asd.find("flaky").unwrap().is_some(),
            "round {round}: registered"
        );

        // Kill its host abruptly.
        net.kill_host(&"flaky".into());
        flaky.crash();

        // The lease purges it.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while asd.find("flaky").unwrap().is_some() {
            assert!(
                std::time::Instant::now() < deadline,
                "round {round}: never purged"
            );
            std::thread::sleep(Duration::from_millis(25));
        }

        // The unaffected service answered the whole time.
        stable_client.call_ok(&CmdLine::new("touch")).unwrap();

        net.revive_host(&"flaky".into());
    }

    stable.shutdown();
    fw.shutdown();
}

/// Partition the client from one store replica mid-run: quorum writes and
/// reads keep succeeding, and after healing the isolated replica converges.
#[test]
fn store_survives_partition_and_heals() {
    let net = SimNet::new();
    for h in ["core", "s1", "s2", "s3"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let cluster =
        spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], Duration::from_millis(100)).unwrap();
    let mut client = StoreClient::new(
        net.clone(),
        "core",
        KeyPair::generate(&mut rand::thread_rng()),
        cluster.addrs.clone(),
    );

    // Isolate s3 from everyone (client and peers).
    for other in ["core", "s1", "s2"] {
        net.partition(&"s3".into(), &other.into());
    }
    for i in 0..20 {
        client
            .put("chaos", &format!("k{i}"), b"during partition")
            .unwrap();
    }
    for i in 0..20 {
        assert_eq!(
            client.get("chaos", &format!("k{i}")).unwrap(),
            b"during partition"
        );
    }
    let s3_disk = &cluster.replicas[2].1;
    assert!(
        s3_disk.get(&("chaos".into(), "k0".into())).is_none(),
        "isolated replica missed the writes"
    );

    // Heal: anti-entropy converges s3.
    net.heal_all();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let caught_up = (0..20).all(|i| s3_disk.get(&("chaos".into(), format!("k{i}"))).is_some());
        if caught_up {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "s3 never converged");
        std::thread::sleep(Duration::from_millis(25));
    }

    cluster.shutdown();
    fw.shutdown();
}

/// Flapping partitions between client and service: calls fail during the
/// cut and succeed after healing — no wedged state, no double execution
/// beyond the documented at-most-once rule.
#[test]
fn links_recover_after_flapping_partitions() {
    let net = SimNet::new();
    for h in ["core", "svc"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let service = Daemon::spawn(
        &net,
        fw.service_config("svc", "Service.Echo", "hawk", "svc", 6000),
        Box::new(Echo),
    )
    .unwrap();

    for _ in 0..5 {
        // Healthy: a fresh client works.
        let mut client =
            ServiceClient::connect(&net, &"core".into(), service.addr().clone(), &me).unwrap();
        client.call_ok(&CmdLine::new("touch")).unwrap();

        // Cut: calls on the existing link fail.
        net.partition(&"core".into(), &"svc".into());
        assert!(client.call(&CmdLine::new("touch")).is_err());
        // New connections also fail.
        assert!(ServiceClient::connect(&net, &"core".into(), service.addr().clone(), &me).is_err());
        net.heal_all();
    }

    // After all the flapping, the daemon still serves.
    let mut client =
        ServiceClient::connect(&net, &"core".into(), service.addr().clone(), &me).unwrap();
    client.call_ok(&CmdLine::new("touch")).unwrap();

    service.shutdown();
    fw.shutdown();
}

/// Killing every store replica and reviving them all on their old disks
/// restores the full dataset.
#[test]
fn full_cluster_restart_preserves_data() {
    let net = SimNet::new();
    for h in ["core", "s1", "s2", "s3"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let cluster =
        spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], Duration::from_millis(100)).unwrap();
    let identity = KeyPair::generate(&mut rand::thread_rng());
    let mut client = StoreClient::new(net.clone(), "core", identity, cluster.addrs.clone());
    for i in 0..10 {
        client
            .put("blackout", &format!("k{i}"), b"precious")
            .unwrap();
    }

    // Total blackout.
    let mut disks = Vec::new();
    for (i, (handle, disk)) in cluster.replicas.into_iter().enumerate() {
        net.kill_host(&format!("s{}", i + 1).as_str().into());
        handle.crash();
        disks.push(disk);
    }
    assert!(matches!(
        client.get("blackout", "k0"),
        Err(StoreError::AllReplicasDown)
    ));

    // Power back on: every replica restarts on its surviving disk.
    let mut revived = Vec::new();
    for (i, disk) in disks.into_iter().enumerate() {
        let host = format!("s{}", i + 1);
        net.revive_host(&host.as_str().into());
        revived.push(
            ace_store::respawn_replica(&net, &fw, i, &host, disk, Duration::from_millis(100))
                .unwrap(),
        );
    }
    let mut client2 = StoreClient::new(
        net.clone(),
        "core",
        KeyPair::generate(&mut rand::thread_rng()),
        cluster.addrs.clone(),
    );
    for i in 0..10 {
        assert_eq!(
            client2.get("blackout", &format!("k{i}")).unwrap(),
            b"precious"
        );
    }

    for r in revived {
        r.shutdown();
    }
    fw.shutdown();
}
