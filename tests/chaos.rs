//! Chaos test: the §9 robustness goal — "a robust and reliable system of
//! services that can detect and recover from failures" — under injected
//! host crashes, revivals, and partitions while clients keep operating.

use ace_apps::OPhone;
use ace_core::prelude::*;
use ace_directory::{bootstrap, AsdClient};
use ace_env::{AceEnvironment, CameraModel, EnvConfig, Projector, PtzCamera};
use ace_identity::{AuthDb, Fiu, IButtonReader, IdMonitor, ScannerDevice, UserDb};
use ace_security::keys::KeyPair;
use ace_store::{spawn_store_cluster, StoreClient, StoreError};
use ace_workspace::{VncHost, Wss};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("touch", "no-op"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
}

/// A service host crash-loops three times; the directory always converges
/// to the truth (registered while up, purged after death), and an
/// unaffected service keeps serving throughout.
#[test]
fn directory_tracks_crash_loops() {
    let net = SimNet::new();
    for h in ["core", "flaky", "stable"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_millis(300)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());

    let stable = Daemon::spawn(
        &net,
        fw.service_config("steady", "Service.Echo", "hawk", "stable", 6000)
            .with_lease_renew(Duration::from_millis(100)),
        Box::new(Echo),
    )
    .unwrap();
    let mut stable_client =
        ServiceClient::connect(&net, &"core".into(), stable.addr().clone(), &me).unwrap();
    let mut asd = AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();

    for round in 0..3 {
        // Bring the flaky service up.
        let flaky = Daemon::spawn(
            &net,
            fw.service_config("flaky", "Service.Echo", "hawk", "flaky", 6000)
                .with_lease_renew(Duration::from_millis(100)),
            Box::new(Echo),
        )
        .unwrap();
        assert!(
            asd.find("flaky").unwrap().is_some(),
            "round {round}: registered"
        );

        // Kill its host abruptly.
        net.kill_host(&"flaky".into());
        flaky.crash();

        // The lease purges it.
        let deadline = std::time::Instant::now() + Duration::from_secs(10);
        while asd.find("flaky").unwrap().is_some() {
            assert!(
                std::time::Instant::now() < deadline,
                "round {round}: never purged"
            );
            std::thread::sleep(Duration::from_millis(25));
        }

        // The unaffected service answered the whole time.
        stable_client.call_ok(&CmdLine::new("touch")).unwrap();

        net.revive_host(&"flaky".into());
    }

    stable.shutdown();
    fw.shutdown();
}

/// Partition the client from one store replica mid-run: quorum writes and
/// reads keep succeeding, and after healing the isolated replica converges.
#[test]
fn store_survives_partition_and_heals() {
    let net = SimNet::new();
    for h in ["core", "s1", "s2", "s3"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let cluster =
        spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], Duration::from_millis(100)).unwrap();
    let mut client = StoreClient::new(
        net.clone(),
        "core",
        KeyPair::generate(&mut rand::thread_rng()),
        cluster.addrs.clone(),
    );

    // Isolate s3 from everyone (client and peers).
    for other in ["core", "s1", "s2"] {
        net.partition(&"s3".into(), &other.into());
    }
    for i in 0..20 {
        client
            .put("chaos", &format!("k{i}"), b"during partition")
            .unwrap();
    }
    for i in 0..20 {
        assert_eq!(
            client.get("chaos", &format!("k{i}")).unwrap(),
            b"during partition"
        );
    }
    let s3_disk = &cluster.replicas[2].1;
    assert!(
        s3_disk.get(&("chaos".into(), "k0".into())).is_none(),
        "isolated replica missed the writes"
    );

    // Heal: anti-entropy converges s3.
    net.heal_all();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let caught_up = (0..20).all(|i| s3_disk.get(&("chaos".into(), format!("k{i}"))).is_some());
        if caught_up {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "s3 never converged");
        std::thread::sleep(Duration::from_millis(25));
    }

    cluster.shutdown();
    fw.shutdown();
}

/// Flapping partitions between client and service: calls fail during the
/// cut and succeed after healing — no wedged state, no double execution
/// beyond the documented at-most-once rule.
#[test]
fn links_recover_after_flapping_partitions() {
    let net = SimNet::new();
    for h in ["core", "svc"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let service = Daemon::spawn(
        &net,
        fw.service_config("svc", "Service.Echo", "hawk", "svc", 6000),
        Box::new(Echo),
    )
    .unwrap();

    for _ in 0..5 {
        // Healthy: a fresh client works.
        let mut client =
            ServiceClient::connect(&net, &"core".into(), service.addr().clone(), &me).unwrap();
        client.call_ok(&CmdLine::new("touch")).unwrap();

        // Cut: calls on the existing link fail.
        net.partition(&"core".into(), &"svc".into());
        assert!(client.call(&CmdLine::new("touch")).is_err());
        // New connections also fail.
        assert!(ServiceClient::connect(&net, &"core".into(), service.addr().clone(), &me).is_err());
        net.heal_all();
    }

    // After all the flapping, the daemon still serves.
    let mut client =
        ServiceClient::connect(&net, &"core".into(), service.addr().clone(), &me).unwrap();
    client.call_ok(&CmdLine::new("touch")).unwrap();

    service.shutdown();
    fw.shutdown();
}

/// Killing every store replica and reviving them all on their old disks
/// restores the full dataset.
#[test]
fn full_cluster_restart_preserves_data() {
    let net = SimNet::new();
    for h in ["core", "s1", "s2", "s3"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let cluster =
        spawn_store_cluster(&net, &fw, &["s1", "s2", "s3"], Duration::from_millis(100)).unwrap();
    let identity = KeyPair::generate(&mut rand::thread_rng());
    let mut client = StoreClient::new(net.clone(), "core", identity, cluster.addrs.clone());
    for i in 0..10 {
        client
            .put("blackout", &format!("k{i}"), b"precious")
            .unwrap();
    }

    // Total blackout.
    let mut disks = Vec::new();
    for (i, (handle, disk)) in cluster.replicas.into_iter().enumerate() {
        net.kill_host(&format!("s{}", i + 1).as_str().into());
        handle.crash();
        disks.push(disk);
    }
    assert!(matches!(
        client.get("blackout", "k0"),
        Err(StoreError::AllReplicasDown)
    ));

    // Power back on: every replica restarts on its surviving disk.
    let mut revived = Vec::new();
    for (i, disk) in disks.into_iter().enumerate() {
        let host = format!("s{}", i + 1);
        net.revive_host(&host.as_str().into());
        revived.push(
            ace_store::respawn_replica(&net, &fw, i, &host, disk, Duration::from_millis(100))
                .unwrap(),
        );
    }
    let mut client2 = StoreClient::new(
        net.clone(),
        "core",
        KeyPair::generate(&mut rand::thread_rng()),
        cluster.addrs.clone(),
    );
    for i in 0..10 {
        assert_eq!(
            client2.get("blackout", &format!("k{i}")).unwrap(),
            b"precious"
        );
    }

    for r in revived {
        r.shutdown();
    }
    fw.shutdown();
}

/// Deterministic per-seed jitter for the traffic threads.
struct Jitter(u64);
impl Jitter {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }
}

/// The live-upgrade chaos scenario: roll an upgrade across **every** daemon
/// in the Fig. 18 building — resource tier, identity tier, workspace tier,
/// devices, store replicas, and finally the framework itself — one at a
/// time, while an O-Phone call and a store read/write stream keep running.
/// Then hot-swap both phones mid-call.
///
/// Invariants held throughout:
/// * **zero dropped calls** — every `speak` and every store round-trip
///   succeeds (quiesce bounces are retryable, never failures);
/// * **monotone incarnations** — no service is ever observed answering
///   under a lower incarnation than previously seen (no stale replies
///   from a superseded instance);
/// * **no stale data** — every store read returns the value written;
/// * the call survives the phones' own swap: sequence numbers stay
///   monotone and frames keep arriving.
fn run_rolling_upgrade_chaos(seed: u64) {
    let mut env = AceEnvironment::build(EnvConfig::default()).unwrap();
    let admin = env.admin;

    // Two O-Phones in a call across compute hosts.
    let oph_a = Daemon::spawn(
        &env.net,
        env.fw
            .service_config("oph_a", "Service.App.OPhone", "hawk", "bar", 5900)
            .with_lease_renew(Duration::from_millis(250)),
        Box::new(OPhone::new(440.0)),
    )
    .unwrap();
    let oph_b = Daemon::spawn(
        &env.net,
        env.fw
            .service_config("oph_b", "Service.App.OPhone", "nichols", "tube", 5900)
            .with_lease_renew(Duration::from_millis(250)),
        Box::new(OPhone::new(880.0)),
    )
    .unwrap();
    let mut dialer =
        ServiceClient::connect(&env.net, &"core".into(), oph_a.addr().clone(), &admin).unwrap();
    dialer
        .call_ok(&CmdLine::new("dial").arg("peer", "oph_b"))
        .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let dropped: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let speak_ok = Arc::new(AtomicU64::new(0));
    let last_seq = Arc::new(AtomicU64::new(0));

    // Stream 1: sustained O-Phone traffic. The failover client retries
    // through quiesce bounces (E_UPGRADING evicts its pooled link and
    // cached resolution) — a drop is a hard failure.
    let speak_thread = {
        let net = env.net.clone();
        let asd_addr = env.fw.asd_addr.clone();
        let stop = Arc::clone(&stop);
        let dropped = Arc::clone(&dropped);
        let speak_ok = Arc::clone(&speak_ok);
        let last_seq = Arc::clone(&last_seq);
        let metrics = MetricsRegistry::new();
        let pool = Arc::new(LinkPool::with_metrics(&net, "core", admin, &metrics));
        let cache = Arc::new(ResolutionCache::with_metrics(&metrics));
        let mut rng = Jitter(seed | 1);
        std::thread::spawn(move || {
            let mut phone = FailoverClient::bind(net, "core", admin, asd_addr, "oph_a")
                .with_retry_window(Duration::from_secs(10))
                .with_pool(pool)
                .with_resolution_cache(cache);
            while !stop.load(Ordering::SeqCst) {
                let len = 40 + (rng.next() % 4) * 40;
                match phone.call(&CmdLine::new("speak").arg("len", len as i64)) {
                    Ok(reply) => {
                        speak_ok.fetch_add(1, Ordering::SeqCst);
                        let seq = reply.get_int("seq").unwrap_or(-1);
                        let prev = last_seq.load(Ordering::SeqCst);
                        if seq < 0 || (seq as u64) < prev {
                            dropped.lock().unwrap().push(format!(
                                "speak seq went backwards: {seq} after {prev} (stale phone?)"
                            ));
                        } else {
                            last_seq.store(seq as u64, Ordering::SeqCst);
                        }
                    }
                    Err(e) => dropped.lock().unwrap().push(format!("speak dropped: {e}")),
                }
                std::thread::sleep(Duration::from_millis(1 + rng.next() % 3));
            }
        })
    };

    // Stream 2: store writes and read-back (quorum rides out each
    // replica's quiesce window and retire/respawn gap).
    let store_thread = {
        let mut store = env.store_client(admin).expect("store cluster exists");
        let stop = Arc::clone(&stop);
        let dropped = Arc::clone(&dropped);
        let mut rng = Jitter(seed | 2);
        std::thread::spawn(move || {
            let mut i: u64 = 0;
            while !stop.load(Ordering::SeqCst) {
                let key = format!("k{}", i % 32);
                let val = format!("v{i}");
                let outcome = store
                    .put("rolling", &key, val.as_bytes())
                    .map_err(|e| format!("put {key} dropped: {e}"))
                    .and_then(|_| {
                        store
                            .get("rolling", &key)
                            .map_err(|e| format!("get {key} dropped: {e}"))
                    })
                    .and_then(|read| {
                        if read == val.as_bytes() {
                            Ok(())
                        } else {
                            Err(format!("stale read on {key}: wanted {val}"))
                        }
                    });
                if let Err(msg) = outcome {
                    dropped.lock().unwrap().push(msg);
                }
                i += 1;
                std::thread::sleep(Duration::from_millis(1 + rng.next() % 4));
            }
            i
        })
    };

    // Stream 3: incarnation monitor. `ping` passes the quiesce gate, so a
    // superseded instance still answering would be caught red-handed.
    let monitor_thread = {
        let net = env.net.clone();
        let targets: Vec<(String, Addr)> = [
            ("srm", env.addr_of("srm").unwrap()),
            ("hrm_bar", env.addr_of("hrm_bar").unwrap()),
            ("wss", env.addr_of("wss").unwrap()),
            ("asd", env.fw.asd_addr.clone()),
            ("roomdb", env.fw.roomdb_addr.clone()),
            ("oph_a", oph_a.addr().clone()),
        ]
        .into_iter()
        .map(|(n, a)| (n.to_string(), a))
        .collect();
        let stop = Arc::clone(&stop);
        let dropped = Arc::clone(&dropped);
        std::thread::spawn(move || {
            let mut floor: Vec<u64> = vec![0; targets.len()];
            while !stop.load(Ordering::SeqCst) {
                for (i, (name, addr)) in targets.iter().enumerate() {
                    // A connect failure is just the retire/respawn gap;
                    // only a *successful* ping can violate monotonicity.
                    let Ok(mut c) =
                        ServiceClient::connect(&net, &"core".into(), addr.clone(), &admin)
                    else {
                        continue;
                    };
                    if let Ok(reply) = c.call(&CmdLine::new("ping")) {
                        let inc = reply.get_int("incarnation").unwrap_or(0).max(0) as u64;
                        if inc < floor[i] {
                            dropped.lock().unwrap().push(format!(
                                "{name}: stale reply from incarnation {inc} after {}",
                                floor[i]
                            ));
                        }
                        floor[i] = floor[i].max(inc);
                    }
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            floor
        })
    };

    // Let traffic flow, then roll the whole building, one daemon at a time.
    std::thread::sleep(Duration::from_millis(100));
    let rolled = env
        .rolling_upgrade(&mut |env, handle| {
            env.default_replacement(handle)
                .or_else(|| custom_replacement(handle))
        })
        .expect("rolling upgrade failed");
    let swept: usize = env.daemons.len() + 3 /* store */ + 3 /* framework */;
    assert_eq!(
        rolled.len(),
        swept,
        "every daemon in the building must be swept: {rolled:?}"
    );
    for entry in &rolled {
        assert_eq!(
            entry.incarnation, 1,
            "{}: expected incarnation 1 after one sweep",
            entry.name
        );
    }

    // The upgraded ASD still resolves everything (registrations rode its
    // snapshot through its own swap).
    let mut asd =
        AsdClient::connect(&env.net, &"core".into(), env.fw.asd_addr.clone(), &admin).unwrap();
    for name in ["oph_a", "oph_b", "srm", "wss", "store_1"] {
        assert!(
            asd.find(name).unwrap().is_some(),
            "{name} lost its registration in the ASD swap"
        );
    }

    // Now hot-swap both phones mid-call, under the live speak stream.
    let received_before = {
        let mut b =
            ServiceClient::connect(&env.net, &"core".into(), oph_b.addr().clone(), &admin).unwrap();
        let stats = b.call(&CmdLine::new("phoneStats")).unwrap();
        assert_eq!(stats.get_bool("inCall"), Some(true));
        stats.get_int("received").unwrap()
    };
    let (oph_a, a_stats) = ace_core::live_upgrade(
        &env.net,
        &"core".into(),
        &admin,
        &oph_a,
        oph_a.config().clone(),
        Box::new(OPhone::new(440.0)),
        None,
    )
    .unwrap();
    let (oph_b, _) = ace_core::live_upgrade(
        &env.net,
        &"core".into(),
        &admin,
        &oph_b,
        oph_b.config().clone(),
        Box::new(OPhone::new(880.0)),
        None,
    )
    .unwrap();
    assert_eq!(oph_a.incarnation(), 1);
    assert_eq!(oph_b.incarnation(), 1);

    // The restored call keeps flowing: frames arrive at the upgraded
    // callee beyond its pre-swap count.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let mut b =
            ServiceClient::connect(&env.net, &"core".into(), oph_b.addr().clone(), &admin).unwrap();
        let stats = b.call(&CmdLine::new("phoneStats")).unwrap();
        if stats.get_bool("inCall") == Some(true)
            && stats.get_int("received").unwrap() > received_before
        {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "call did not survive the phones' hot swap: {stats:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    stop.store(true, Ordering::SeqCst);
    speak_thread.join().unwrap();
    let store_rounds = store_thread.join().unwrap();
    let floors = monitor_thread.join().unwrap();

    let drops = dropped.lock().unwrap().clone();
    assert!(drops.is_empty(), "seed {seed:#x}: dropped calls: {drops:?}");
    let speaks = speak_ok.load(Ordering::SeqCst);
    assert!(speaks > 0, "no speak traffic flowed");
    assert!(store_rounds > 0, "no store traffic flowed");
    assert!(
        floors.iter().any(|&f| f >= 1),
        "monitor never observed an upgraded incarnation"
    );
    eprintln!(
        "rolling_upgrade seed {seed:#x}: {} daemons swept, {speaks} speaks, \
         {store_rounds} store rounds, phone pause {:?}, 0 drops",
        rolled.len(),
        a_stats.pause,
    );

    oph_a.shutdown();
    oph_b.shutdown();
    env.shutdown();
}

/// Replacements for the classes `default_replacement` leaves to the
/// caller (their state is either carried by the behavior snapshot or
/// reconstructible by re-enrolment in this scenario).
fn custom_replacement(handle: &DaemonHandle) -> Option<Box<dyn ServiceBehavior>> {
    let class = handle.config().class.as_str();
    Some(match class {
        "Service.Database.User" => Box::new(UserDb::new()),
        "Service.Database.Authorization" => Box::new(AuthDb::new()),
        "Service.IDMonitor" => Box::new(IdMonitor::new()),
        "Service.VNCHost" => Box::new(VncHost::new()),
        "Service.WorkspaceServer" => Box::new(Wss::new()),
        "Service.Device.FIU" => Box::new(Fiu::new(ScannerDevice::default())),
        "Service.Device.IButton" => Box::new(IButtonReader::new()),
        _ if class == Projector::CLASS => Box::new(Projector::new()),
        _ if class.contains("Camera") => Box::new(PtzCamera::new(CameraModel::Vcc4)),
        _ => return None,
    })
}

#[test]
fn rolling_upgrade_whole_building_zero_drops() {
    run_rolling_upgrade_chaos(0xACE6);
}

/// A service whose bulk verb burns real control-thread time, so a flood of
/// `work` calls saturates the daemon the way a login storm saturates a real
/// one.
struct SlowWork;
impl ServiceBehavior for SlowWork {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("work", "burn control-thread time").optional(
            "ms",
            ArgType::Int,
            "milliseconds of simulated work",
        ))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        let ms = cmd.get_int("ms").unwrap_or(2).clamp(0, 50) as u64;
        std::thread::sleep(Duration::from_millis(ms));
        Reply::ok()
    }
}

/// The overload-storm chaos scenario: a service with a deliberately small
/// bulk lane is offered several times its capacity by closed-loop flooders
/// (every shed is retried immediately, so offered load stays far above the
/// ~2ms-per-call service rate), while a seeded [`FaultPlan`] crash-loops the
/// flooders' own host under them.
///
/// Invariants held throughout:
/// * **the control plane stays alive** — every `ping` and `aceStats` probe
///   from an unfaulted host succeeds; the victim's lease keeps renewing, so
///   it is still registered when the storm ends;
/// * **overload degrades, never collapses** — bulk calls either succeed or
///   come back as *retryable* sheds (`E_BUSY`/`E_DEADLINE`/`E_UPGRADING`);
///   no other service error class, no handler panics;
/// * **clients with breakers ride it out** — the failover stream (circuit
///   breaker + retry budget) keeps extracting goodput without livelock.
fn run_overload_storm_chaos(seed: u64) {
    use ace_net::{FaultPlan, FaultPlanConfig};

    let net = SimNet::new();
    for h in ["core", "svc", "load"] {
        net.add_host(h);
    }
    let fw = bootstrap(&net, "core", Duration::from_millis(600)).unwrap();
    let admin = KeyPair::generate(&mut rand::thread_rng());

    let victim = Daemon::spawn(
        &net,
        fw.service_config("victim", "Service.SlowWork", "hawk", "svc", 6100)
            .with_lease_renew(Duration::from_millis(100))
            .with_admission(ace_core::AdmissionConfig {
                // Ten closed-loop flooders against four slots: in-flight
                // demand sits well past lane capacity, so overflow shedding
                // is structural, not a timing accident.
                bulk_capacity: 4,
                ..ace_core::AdmissionConfig::default()
            }),
        Box::new(SlowWork),
    )
    .unwrap();

    let stop = Arc::new(AtomicBool::new(false));
    let violations: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    let ok_calls = Arc::new(AtomicU64::new(0));
    let shed_calls = Arc::new(AtomicU64::new(0));

    // Stream 1: six direct flooders hammer the bulk lane from the host the
    // fault plan crash-loops.  Link errors are expected (their own host
    // dies under them); any non-retryable service error is a violation.
    let flooders: Vec<_> = (0..10)
        .map(|w| {
            let net = net.clone();
            let addr = victim.addr().clone();
            let stop = Arc::clone(&stop);
            let violations = Arc::clone(&violations);
            let ok_calls = Arc::clone(&ok_calls);
            let shed_calls = Arc::clone(&shed_calls);
            let mut rng = Jitter(seed | (w as u64) << 8 | 1);
            std::thread::spawn(move || {
                let me = KeyPair::generate(&mut rand::thread_rng());
                let mut client: Option<ServiceClient> = None;
                while !stop.load(Ordering::SeqCst) {
                    if client.is_none() {
                        match ServiceClient::connect(&net, &"load".into(), addr.clone(), &me) {
                            Ok(c) => client = Some(c),
                            Err(_) => {
                                // Host down or reviving; back off briefly.
                                std::thread::sleep(Duration::from_millis(5 + rng.next() % 10));
                                continue;
                            }
                        }
                    }
                    let cmd = CmdLine::new("work").arg("ms", 3);
                    match client.as_mut().expect("just connected").call(&cmd) {
                        Ok(_) => {
                            ok_calls.fetch_add(1, Ordering::SeqCst);
                        }
                        Err(ClientError::Service { code, msg }) => {
                            if code.is_retryable() {
                                shed_calls.fetch_add(1, Ordering::SeqCst);
                                // Immediate re-offer keeps the storm at
                                // several times capacity without spinning.
                                std::thread::sleep(Duration::from_millis(1 + rng.next() % 2));
                            } else {
                                violations
                                    .lock()
                                    .unwrap()
                                    .push(format!("flooder {w}: non-retryable {code}: {msg}"));
                            }
                        }
                        Err(ClientError::Link(_)) => {
                            client = None; // crash window: reconnect
                        }
                    }
                }
            })
        })
        .collect();

    // Stream 2: a breaker-and-budget failover client on the same doomed
    // host — the full client-side overload stack must extract goodput
    // without livelocking or surfacing non-retryable errors.
    let breaker_stream = {
        let net = net.clone();
        let asd_addr = fw.asd_addr.clone();
        let stop = Arc::clone(&stop);
        let violations = Arc::clone(&violations);
        let ok_calls = Arc::clone(&ok_calls);
        let shed_calls = Arc::clone(&shed_calls);
        let mut rng = Jitter(seed | 2);
        std::thread::spawn(move || {
            let me = KeyPair::generate(&mut rand::thread_rng());
            let breaker = Arc::new(ace_core::BreakerRegistry::new(
                ace_core::BreakerConfig::default(),
            ));
            let budget = Arc::new(ace_core::RetryBudget::new(10, 0.5));
            let mut client = FailoverClient::bind(net, "load", me, asd_addr, "victim")
                .with_retry_window(Duration::from_secs(2))
                .with_breaker(breaker)
                .with_retry_budget(budget);
            let mut fast_fails = 0u64;
            while !stop.load(Ordering::SeqCst) {
                match client.call_idempotent(&CmdLine::new("work").arg("ms", 2)) {
                    Ok(_) => {
                        ok_calls.fetch_add(1, Ordering::SeqCst);
                    }
                    Err(ClientError::Service { code, msg }) => {
                        if code.is_retryable() {
                            shed_calls.fetch_add(1, Ordering::SeqCst);
                        } else {
                            violations
                                .lock()
                                .unwrap()
                                .push(format!("breaker stream: non-retryable {code}: {msg}"));
                        }
                    }
                    Err(ClientError::Link(_)) => {} // own host crashed
                }
                fast_fails = client.breaker_fast_fails();
                std::thread::sleep(Duration::from_millis(rng.next() % 3));
            }
            fast_fails
        })
    };

    // Stream 3: priority probes from an unfaulted host.  The whole point of
    // the two-lane queue is that these never fail while bulk is drowning.
    let probe_thread = {
        let net = net.clone();
        let addr = victim.addr().clone();
        let stop = Arc::clone(&stop);
        let violations = Arc::clone(&violations);
        std::thread::spawn(move || {
            let me = KeyPair::generate(&mut rand::thread_rng());
            let mut probe = ServiceClient::connect(&net, &"core".into(), addr, &me)
                .expect("probe connect to unfaulted victim");
            let mut pings = 0u64;
            while !stop.load(Ordering::SeqCst) {
                for verb in ["ping", "aceStats"] {
                    if let Err(e) = probe.call(&CmdLine::new(verb)) {
                        violations
                            .lock()
                            .unwrap()
                            .push(format!("priority `{verb}` failed under storm: {e}"));
                        return pings;
                    }
                }
                pings += 1;
                std::thread::sleep(Duration::from_millis(5));
            }
            pings
        })
    };

    // Let the storm establish, then crash-loop the flooder host on a
    // deterministic schedule.
    std::thread::sleep(Duration::from_millis(100));
    let plan = FaultPlan::generate(
        seed,
        &FaultPlanConfig::new(Duration::from_secs(2), vec!["load".into()]),
    );
    plan.spawn(&net).join();
    std::thread::sleep(Duration::from_millis(200));

    stop.store(true, Ordering::SeqCst);
    for f in flooders {
        f.join().unwrap();
    }
    let breaker_fast_fails = breaker_stream.join().unwrap();
    let pings = probe_thread.join().unwrap();

    let found = violations.lock().unwrap().clone();
    assert!(found.is_empty(), "seed {seed:#x}: violations: {found:?}");
    let ok = ok_calls.load(Ordering::SeqCst);
    let shed = shed_calls.load(Ordering::SeqCst);
    assert!(ok > 0, "seed {seed:#x}: no goodput at all under the storm");
    assert!(
        shed > 0,
        "seed {seed:#x}: overload never shed (lane not saturated?)"
    );
    assert!(
        pings > 20,
        "seed {seed:#x}: priority probes barely ran ({pings})"
    );

    // The victim's lease kept renewing through the storm (renewLease rides
    // the ASD's priority lane), so it is still resolvable.
    let mut asd = AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &admin).unwrap();
    assert!(
        asd.find("victim").unwrap().is_some(),
        "seed {seed:#x}: victim lost its registration during the storm"
    );

    // And it shed at the admission queue, without a single handler panic.
    let mut probe =
        ServiceClient::connect(&net, &"core".into(), victim.addr().clone(), &admin).unwrap();
    let report = StatsReport::from_cmdline(&probe.call(&CmdLine::new("aceStats")).unwrap());
    assert_eq!(
        report.counters.get("control.panics").copied().unwrap_or(0),
        0,
        "seed {seed:#x}: victim panicked under overload"
    );
    let shed_at_queue = report.counters.get("shed.bulkFull").copied().unwrap_or(0)
        + report.counters.get("shed.queueWait").copied().unwrap_or(0)
        + report.counters.get("shed.deadline").copied().unwrap_or(0);
    assert!(
        shed_at_queue > 0,
        "seed {seed:#x}: admission queue never shed"
    );
    eprintln!(
        "overload_storm seed {seed:#x}: {ok} served, {shed} shed at clients, \
         {shed_at_queue} shed at queue, {breaker_fast_fails} breaker fast-fails, {pings} probes"
    );

    victim.shutdown();
    fw.shutdown();
}

#[test]
fn overload_storm_sheds_but_never_collapses() {
    run_overload_storm_chaos(0xACE7);
}

/// Seed expansion hook for the CI soak job, mirroring
/// `rolling_upgrade_env_seeds`.
#[test]
fn overload_storm_env_seeds() {
    let Ok(spec) = std::env::var("CHAOS_SEEDS") else {
        return;
    };
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let seed = match token.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => token.parse(),
        }
        .unwrap_or_else(|_| panic!("CHAOS_SEEDS: unparsable seed `{token}`"));
        eprintln!("overload_storm: running env seed {seed:#x}");
        run_overload_storm_chaos(seed);
    }
}

/// Seed expansion hook for the CI soak job: `CHAOS_SEEDS="0xACE3,42,7"`
/// sweeps each listed seed.
#[test]
fn rolling_upgrade_env_seeds() {
    let Ok(spec) = std::env::var("CHAOS_SEEDS") else {
        return;
    };
    for token in spec.split(',').map(str::trim).filter(|t| !t.is_empty()) {
        let seed = match token.strip_prefix("0x") {
            Some(hex) => u64::from_str_radix(hex, 16),
            None => token.parse(),
        }
        .unwrap_or_else(|_| panic!("CHAOS_SEEDS: unparsable seed `{token}`"));
        eprintln!("rolling_upgrade: running env seed {seed:#x}");
        run_rolling_upgrade_chaos(seed);
    }
}
