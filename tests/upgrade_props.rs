//! Property tests on the live-upgrade snapshot protocol, for every
//! stateful behavior that ships one: the ASD, the Room DB, a store
//! replica, the audio mixer, and the O-Phone.
//!
//! Two families of properties:
//!
//! * **Round trip** — any valid sealed state restores cleanly, and
//!   `restore → snapshot → restore → snapshot` reaches a fixed point:
//!   the second snapshot is byte-identical to the first.  (The first
//!   restore may normalize — deduplicate names, recount keys — but the
//!   normalized form must be stable.)
//! * **Corruption refusal** — a torn write (any strict prefix) is always
//!   refused, and a bit flip is either refused or — when the flip is
//!   semantically neutral, e.g. a hex digit's case — restores state
//!   byte-identical to the good snapshot.  Corrupt state is **never**
//!   half-applied: after any refused restore the behavior still snapshots
//!   exactly what it held before, which is what lets the old incarnation
//!   keep serving when an upgrade aborts.

use ace_apps::OPhone;
use ace_core::prelude::*;
use ace_core::protocol::{entries_to_value, seal_snapshot, ServiceEntry};
use ace_directory::{Asd, RoomDb};
use ace_media::AudioMixer;
use ace_store::{DiskImage, StoreReplica};
use proptest::prelude::*;
use std::time::Duration;

type Behavior = Box<dyn ServiceBehavior>;

/// Restore `crafted` into a fresh instance and check the snapshot fixed
/// point, returning the normalized snapshot.
fn roundtrip(make: &dyn Fn() -> Behavior, crafted: &[u8]) -> Result<Vec<u8>, TestCaseError> {
    let mut first = make();
    if let Err(e) = first.restore_state(crafted) {
        return Err(TestCaseError::fail(format!(
            "crafted snapshot refused: {e}"
        )));
    }
    let s1 = first.snapshot_state().expect("behavior is stateful");
    let mut second = make();
    if let Err(e) = second.restore_state(&s1) {
        return Err(TestCaseError::fail(format!("own snapshot refused: {e}")));
    }
    let s2 = second.snapshot_state().expect("behavior is stateful");
    prop_assert_eq!(
        String::from_utf8_lossy(&s1),
        String::from_utf8_lossy(&s2),
        "snapshot is not a fixed point"
    );
    Ok(s1)
}

/// TornWrite + BitFlip discipline against a known-good snapshot.
fn corruption_refused(
    make: &dyn Fn() -> Behavior,
    good: &[u8],
    flip: (usize, u8),
    cut_seed: usize,
) -> TestCaseResult {
    // Seed an instance with the good state; every refused restore below
    // must leave it serving exactly that state.
    let mut b = make();
    b.restore_state(good)
        .map_err(|e| TestCaseError::fail(format!("good snapshot refused: {e}")))?;
    let baseline = b.snapshot_state().expect("behavior is stateful");

    // BitFlip: refused, or (for a semantically neutral flip such as a hex
    // digit's case) restores the identical state.  Never corrupt state.
    let mut flipped = good.to_vec();
    let idx = flip.0 % flipped.len();
    flipped[idx] ^= 1 << (flip.1 % 8);
    if b.restore_state(&flipped).is_ok() {
        let after = b.snapshot_state().expect("behavior is stateful");
        prop_assert_eq!(
            String::from_utf8_lossy(&baseline),
            String::from_utf8_lossy(&after),
            "bit flip at byte {} accepted as *different* state",
            idx
        );
        // Re-seed for the torn-write half.
        b.restore_state(good).expect("good snapshot restores");
    } else {
        let after = b.snapshot_state().expect("behavior is stateful");
        prop_assert_eq!(
            String::from_utf8_lossy(&baseline),
            String::from_utf8_lossy(&after),
            "refused bit-flip restore disturbed the serving state"
        );
    }

    // TornWrite: any strict prefix is refused outright.
    let cut = cut_seed % good.len();
    prop_assert!(
        b.restore_state(&good[..cut]).is_err(),
        "torn snapshot ({} of {} bytes) accepted",
        cut,
        good.len()
    );
    let after = b.snapshot_state().expect("behavior is stateful");
    prop_assert_eq!(
        String::from_utf8_lossy(&baseline),
        String::from_utf8_lossy(&after),
        "refused torn restore disturbed the serving state"
    );
    Ok(())
}

// ---------------------------------------------------------------- crafting

fn asd_snapshot(rows: &[(u16, u16, u8, u8, u8)], total: u32) -> Vec<u8> {
    let entries: Vec<ServiceEntry> = rows
        .iter()
        .map(|(n, port, room, class, _)| ServiceEntry {
            name: format!("svc{n}"),
            addr: Addr::new(format!("host{}", n % 7).as_str(), *port),
            class: format!("Service.Class{class}"),
            room: format!("room{room}"),
        })
        .collect();
    let incarnations: Vec<Scalar> = rows.iter().map(|r| Scalar::Int(r.4 as i64)).collect();
    seal_snapshot(
        "asd",
        CmdLine::new("asdState")
            .arg("total", total as i64)
            .arg("services", entries_to_value(&entries))
            .arg("incarnations", Value::Vector(incarnations)),
    )
}

type RoomRow = (u8, u8, u16, u16, u16);
type PlacementRow = (u16, u16, u8, Option<(u16, u16, u16)>);

fn roomdb_snapshot(rooms: &[RoomRow], placements: &[PlacementRow]) -> Vec<u8> {
    let quarter = |q: u16| (q as f64 / 4.0).to_string();
    let room_rows = Value::Array(
        rooms
            .iter()
            .map(|(n, b, w, d, h)| {
                vec![
                    Scalar::Str(format!("room{n}")),
                    Scalar::Str(format!("bldg{b}")),
                    Scalar::Str(quarter(*w)),
                    Scalar::Str(quarter(*d)),
                    Scalar::Str(quarter(*h)),
                ]
            })
            .collect(),
    );
    let placement_rows = Value::Array(
        placements
            .iter()
            .map(|(s, port, room, pos)| {
                let (x, y, z) = match pos {
                    Some((x, y, z)) => (quarter(*x), quarter(*y), quarter(*z)),
                    None => (String::new(), String::new(), String::new()),
                };
                vec![
                    Scalar::Str(format!("svc{s}")),
                    Scalar::Str(format!("host{}", s % 5)),
                    Scalar::Str(port.to_string()),
                    Scalar::Str(format!("room{room}")),
                    Scalar::Str(x),
                    Scalar::Str(y),
                    Scalar::Str(z),
                ]
            })
            .collect(),
    );
    seal_snapshot(
        "roomdb",
        CmdLine::new("roomDbState")
            .arg("rooms", room_rows)
            .arg("placements", placement_rows),
    )
}

fn replica_snapshot(interval_ms: u32, keys: u16) -> Vec<u8> {
    seal_snapshot(
        "storeReplica",
        CmdLine::new("replicaState")
            .arg("syncIntervalMs", interval_ms as i64)
            .arg("keys", keys as i64),
    )
}

fn mixer_snapshot(out: u8, inputs: &[u8], sinks: &[(u8, u16)]) -> Vec<u8> {
    let input_rows: Vec<Scalar> = inputs
        .iter()
        .map(|i| Scalar::Str(format!("in{i}")))
        .collect();
    let sink_rows: Vec<Vec<Scalar>> = sinks
        .iter()
        .map(|(h, p)| vec![Scalar::Str(format!("host{h}")), Scalar::Str(p.to_string())])
        .collect();
    seal_snapshot(
        "audioMixer",
        CmdLine::new("mixerState")
            .arg("outStream", format!("out{out}"))
            .arg("inputs", Value::Vector(input_rows))
            .arg("sinks", Value::Array(sink_rows)),
    )
}

type PhoneCall = Option<(u8, u16, u8)>;

fn ophone_snapshot(freq_q: u32, counters: (u32, u32, u32, u32), call: PhoneCall) -> Vec<u8> {
    let (tx, phase, play, recv) = counters;
    let mut state = CmdLine::new("ophoneState")
        .arg("voiceFreq", freq_q as f64 / 8.0)
        .arg("txSeq", tx as i64)
        .arg("phase", phase as i64)
        .arg("nextPlay", play as i64)
        .arg("received", recv as i64);
    if let Some((host, port, session)) = call {
        state = state
            .arg("peerHost", format!("host{host}"))
            .arg("peerPort", port as i64)
            .arg("session", format!("call_{session}"));
    }
    seal_snapshot("ophone", state)
}

// ------------------------------------------------------------------- tests

fn make_asd() -> Behavior {
    Box::new(Asd::new(Duration::from_secs(5)))
}
fn make_roomdb() -> Behavior {
    Box::new(RoomDb::new())
}
fn make_replica() -> Behavior {
    Box::new(StoreReplica::new(
        DiskImage::new(),
        Duration::from_millis(100),
    ))
}
fn make_mixer() -> Behavior {
    Box::new(AudioMixer::new("mixed"))
}
fn make_phone() -> Behavior {
    Box::new(OPhone::new(440.0))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn asd_snapshot_roundtrips_and_refuses_corruption(
        rows in prop::collection::vec(
            (0u16..64, 1024u16..u16::MAX, 0u8..8, 0u8..8, 0u8..16), 0..24),
        total in 0u32..1_000_000,
        flip in (any::<usize>(), any::<u8>()),
        cut in any::<usize>(),
    ) {
        let crafted = asd_snapshot(&rows, total);
        let good = roundtrip(&make_asd, &crafted)?;
        corruption_refused(&make_asd, &good, flip, cut)?;
    }

    #[test]
    fn roomdb_snapshot_roundtrips_and_refuses_corruption(
        rooms in prop::collection::vec(
            (0u8..16, 0u8..4, 1u16..200, 1u16..200, 1u16..60), 0..12),
        placements in prop::collection::vec(
            (0u16..64, 1024u16..u16::MAX, 0u8..16,
             prop::strategy::Union::new(vec![
                Just(None).boxed(),
                (0u16..100, 0u16..100, 0u16..100).prop_map(Some).boxed(),
             ])), 0..16),
        flip in (any::<usize>(), any::<u8>()),
        cut in any::<usize>(),
    ) {
        let crafted = roomdb_snapshot(&rooms, &placements);
        let good = roundtrip(&make_roomdb, &crafted)?;
        corruption_refused(&make_roomdb, &good, flip, cut)?;
    }

    #[test]
    fn replica_snapshot_roundtrips_and_refuses_corruption(
        interval_ms in 1u32..600_000,
        keys in 0u16..1000,
        flip in (any::<usize>(), any::<u8>()),
        cut in any::<usize>(),
    ) {
        let crafted = replica_snapshot(interval_ms, keys);
        let good = roundtrip(&make_replica, &crafted)?;
        corruption_refused(&make_replica, &good, flip, cut)?;
    }

    #[test]
    fn mixer_snapshot_roundtrips_and_refuses_corruption(
        out in any::<u8>(),
        inputs in prop::collection::vec(0u8..32, 0..8),
        sinks in prop::collection::vec((0u8..8, 0u16..u16::MAX), 0..6),
        flip in (any::<usize>(), any::<u8>()),
        cut in any::<usize>(),
    ) {
        let crafted = mixer_snapshot(out, &inputs, &sinks);
        let good = roundtrip(&make_mixer, &crafted)?;
        corruption_refused(&make_mixer, &good, flip, cut)?;
    }

    #[test]
    fn ophone_snapshot_roundtrips_and_refuses_corruption(
        freq_q in 1u32..200_000,
        counters in (any::<u32>(), any::<u32>(), any::<u32>(), any::<u32>()),
        call in prop::strategy::Union::new(vec![
            Just(None).boxed(),
            (any::<u8>(), any::<u16>(), any::<u8>()).prop_map(Some).boxed(),
        ]),
        flip in (any::<usize>(), any::<u8>()),
        cut in any::<usize>(),
    ) {
        let crafted = ophone_snapshot(freq_q, counters, call);
        let good = roundtrip(&make_phone, &crafted)?;
        corruption_refused(&make_phone, &good, flip, cut)?;
    }

    /// Cross-kind confusion: a perfectly intact snapshot of one kind is
    /// refused by every *other* behavior (an upgrade driver wiring the
    /// wrong blob to a service can never half-apply foreign state).
    #[test]
    fn foreign_snapshots_are_refused(
        interval_ms in 1u32..600_000,
        keys in 0u16..1000,
    ) {
        let replica_blob = replica_snapshot(interval_ms, keys);
        let makers: [&dyn Fn() -> Behavior; 4] =
            [&make_asd, &make_roomdb, &make_mixer, &make_phone];
        for make in makers {
            let mut b = make();
            prop_assert!(
                b.restore_state(&replica_blob).is_err(),
                "a storeReplica snapshot was accepted by a foreign behavior"
            );
        }
    }
}
