//! Scale tests for the §9 goal: "significant amount of testing must be done
//! to ensure the scalability of the system … central services such as the
//! ASD, AUD, WSS, etc must be fully tested for large communication loads."
//!
//! Sizes here are chosen to finish in seconds on one CPU while still
//! exercising the load paths: many daemons against one ASD, sustained
//! command streams, and many concurrent links to one daemon.

use ace_core::prelude::*;
use ace_directory::{bootstrap, AsdClient};
use ace_identity::{UserDb, UserDbClient};
use ace_security::keys::KeyPair;
use std::time::Duration;

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("touch", "no-op"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
}

/// Forty daemons register, renew, answer lookups, and deregister cleanly.
#[test]
fn forty_daemons_one_asd() {
    let net = SimNet::new();
    net.add_host("core");
    for i in 0..8 {
        net.add_host(format!("h{i}"));
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());

    let daemons: Vec<DaemonHandle> = (0..40)
        .map(|i| {
            Daemon::spawn(
                &net,
                fw.service_config(
                    &format!("svc{i}"),
                    "Service.Echo",
                    "hawk",
                    format!("h{}", i % 8).as_str(),
                    6000 + (i / 8) as u16,
                )
                .with_lease_renew(Duration::from_millis(500)),
                Box::new(Echo),
            )
            .unwrap()
        })
        .collect();

    let mut asd = AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();
    // +3 framework services (asd itself does not self-register; roomdb and
    // netlogger do).
    assert_eq!(asd.list().unwrap().len(), 42);
    assert_eq!(asd.lookup(None, Some("Echo"), None).unwrap().len(), 40);

    // Everything stays registered across several lease periods (renewals
    // under load).
    std::thread::sleep(Duration::from_millis(600));
    assert_eq!(asd.lookup(None, Some("Echo"), None).unwrap().len(), 40);

    for d in daemons {
        d.shutdown();
    }
    assert_eq!(asd.lookup(None, Some("Echo"), None).unwrap().len(), 0);
    fw.shutdown();
}

/// Sixteen concurrent links hammer one daemon; every command answers and
/// the daemon stays healthy.
#[test]
fn sixteen_links_one_daemon() {
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("svc");
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let target = Daemon::spawn(
        &net,
        fw.service_config("target", "Service.Echo", "hawk", "svc", 6000),
        Box::new(Echo),
    )
    .unwrap();

    let mut joins = Vec::new();
    for _ in 0..16 {
        let net = net.clone();
        let addr = target.addr().clone();
        joins.push(std::thread::spawn(move || {
            let me = KeyPair::generate(&mut rand::thread_rng());
            let mut client = ServiceClient::connect(&net, &"core".into(), addr, &me).unwrap();
            for _ in 0..50 {
                client.call_ok(&CmdLine::new("touch")).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Still alive and responsive.
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut probe =
        ServiceClient::connect(&net, &"core".into(), target.addr().clone(), &me).unwrap();
    probe.call_ok(&CmdLine::new("ping")).unwrap();

    target.shutdown();
    fw.shutdown();
}

/// The AUD under a sustained mixed read/write load keeps its indexes
/// consistent.
#[test]
fn aud_sustained_mixed_load() {
    let net = SimNet::new();
    net.add_host("core");
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let aud = Daemon::spawn(
        &net,
        fw.service_config("aud", "Service.Database.User", "machineroom", "core", 5200),
        Box::new(UserDb::new()),
    )
    .unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut client = UserDbClient::connect(&net, &"core".into(), aud.addr().clone(), &me).unwrap();

    const USERS: usize = 300;
    for i in 0..USERS {
        client
            .add_user(
                &format!("u{i}"),
                &format!("User {i}"),
                "pw",
                "rsa:0:0",
                Some(&format!("fp{i}")),
                Some(&format!("ib{i}")),
            )
            .unwrap();
    }
    // Mixed reads across all three indexes.
    for i in (0..USERS).step_by(7) {
        assert_eq!(
            client
                .find_by_fingerprint(&format!("fp{i}"))
                .unwrap()
                .as_deref(),
            Some(format!("u{i}").as_str())
        );
        assert_eq!(
            client
                .find_by_ibutton(&format!("ib{i}"))
                .unwrap()
                .as_deref(),
            Some(format!("u{i}").as_str())
        );
        client
            .set_location(&format!("u{i}"), "hawk", "core")
            .unwrap();
    }
    // Remove a third; indexes must drop the entries.
    for i in (0..USERS).step_by(3) {
        client
            .raw()
            .call_ok(&CmdLine::new("removeUser").arg("username", format!("u{i}").as_str()))
            .unwrap();
        assert_eq!(client.find_by_fingerprint(&format!("fp{i}")).unwrap(), None);
    }
    assert_eq!(
        client.list_users().unwrap().len(),
        USERS - USERS.div_ceil(3)
    );

    aud.shutdown();
    fw.shutdown();
}
