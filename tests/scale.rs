//! Scale tests for the §9 goal: "significant amount of testing must be done
//! to ensure the scalability of the system … central services such as the
//! ASD, AUD, WSS, etc must be fully tested for large communication loads."
//!
//! Sizes here are chosen to finish in seconds on one CPU while still
//! exercising the load paths: many daemons against one ASD, sustained
//! command streams, and many concurrent links to one daemon.

use ace_core::prelude::*;
use ace_directory::{bootstrap, AsdClient};
use ace_identity::{UserDb, UserDbClient};
use ace_security::keys::KeyPair;
use std::time::Duration;

struct Echo;
impl ServiceBehavior for Echo {
    fn semantics(&self) -> Semantics {
        Semantics::new().with(CmdSpec::new("touch", "no-op"))
    }
    fn handle(&mut self, _ctx: &mut ServiceCtx, _cmd: &CmdLine, _from: &ClientInfo) -> Reply {
        Reply::ok()
    }
}

/// Forty daemons register, renew, answer lookups, and deregister cleanly.
#[test]
fn forty_daemons_one_asd() {
    let net = SimNet::new();
    net.add_host("core");
    for i in 0..8 {
        net.add_host(format!("h{i}"));
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(5)).unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());

    let daemons: Vec<DaemonHandle> = (0..40)
        .map(|i| {
            Daemon::spawn(
                &net,
                fw.service_config(
                    &format!("svc{i}"),
                    "Service.Echo",
                    "hawk",
                    format!("h{}", i % 8).as_str(),
                    6000 + (i / 8) as u16,
                )
                .with_lease_renew(Duration::from_millis(500)),
                Box::new(Echo),
            )
            .unwrap()
        })
        .collect();

    let mut asd = AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();
    // +3 framework services (asd itself does not self-register; roomdb and
    // netlogger do).
    assert_eq!(asd.list().unwrap().len(), 42);
    assert_eq!(asd.lookup(None, Some("Echo"), None).unwrap().len(), 40);

    // Everything stays registered across a full lease period (renewals
    // under load).  Polled with a bounded retry rather than a single
    // fixed-length sleep: a renewal landing late under scheduler load is
    // indistinguishable from a hard expiry at one instant, but not over
    // forty consecutive observations.
    let lease_start = std::time::Instant::now();
    let mut attempts = 0;
    loop {
        std::thread::sleep(Duration::from_millis(25));
        let live = asd.lookup(None, Some("Echo"), None).unwrap().len();
        if lease_start.elapsed() >= Duration::from_millis(600) && live == 40 {
            break;
        }
        attempts += 1;
        assert!(
            attempts < 40,
            "registrations did not survive lease renewal: {live}/40 after {:?}",
            lease_start.elapsed()
        );
    }

    for d in daemons {
        d.shutdown();
    }
    assert_eq!(asd.lookup(None, Some("Echo"), None).unwrap().len(), 0);
    fw.shutdown();
}

/// Sixteen concurrent links hammer one daemon; every command answers and
/// the daemon stays healthy.
#[test]
fn sixteen_links_one_daemon() {
    let net = SimNet::new();
    net.add_host("core");
    net.add_host("svc");
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let target = Daemon::spawn(
        &net,
        fw.service_config("target", "Service.Echo", "hawk", "svc", 6000),
        Box::new(Echo),
    )
    .unwrap();

    let mut joins = Vec::new();
    for _ in 0..16 {
        let net = net.clone();
        let addr = target.addr().clone();
        joins.push(std::thread::spawn(move || {
            let me = KeyPair::generate(&mut rand::thread_rng());
            let mut client = ServiceClient::connect(&net, &"core".into(), addr, &me).unwrap();
            for _ in 0..50 {
                client.call_ok(&CmdLine::new("touch")).unwrap();
            }
        }));
    }
    for j in joins {
        j.join().unwrap();
    }

    // Still alive and responsive.
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut probe =
        ServiceClient::connect(&net, &"core".into(), target.addr().clone(), &me).unwrap();
    probe.call_ok(&CmdLine::new("ping")).unwrap();

    target.shutdown();
    fw.shutdown();
}

/// A poll that never yields: holds its worker for whole watchdog periods
/// at a time until released.  The runtime must count it (`runtime.longPolls`)
/// and inject spare workers so co-scheduled daemons keep answering.
struct Staller {
    release: std::sync::Arc<std::sync::atomic::AtomicBool>,
}

impl ace_core::RuntimeTask for Staller {
    fn poll(&mut self, _cx: &mut ace_core::TaskContext<'_>) -> ace_core::TaskPoll {
        use std::sync::atomic::Ordering;
        while !self.release.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(10));
        }
        ace_core::TaskPoll::Complete
    }
}

/// The PR 8 tentpole at test scale: two thousand daemons multiplexed onto
/// one small shared worker pool — not two thousand × 4 OS threads — all
/// register with the ASD and all answer `ping`.  A hostile never-yielding
/// task on the same pool is detected by the starvation watchdog without
/// taking its sibling daemons down.
#[test]
fn runtime_scale() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    const DAEMONS: usize = 2000;
    const HOSTS: usize = 16;

    let net = SimNet::new();
    net.add_host("core");
    for i in 0..HOSTS {
        net.add_host(format!("rs{i}"));
    }
    let fw = bootstrap(&net, "core", Duration::from_secs(60)).unwrap();
    // A deliberately small dedicated pool: the point is multiplexing, and
    // a private pool keeps the staller's metrics attributable.
    let pool = ace_core::Runtime::new(4);

    let daemons: Vec<DaemonHandle> = (0..DAEMONS)
        .map(|i| {
            Daemon::spawn(
                &net,
                fw.service_config(
                    &format!("rt{i}"),
                    "Service.Echo",
                    "hawk",
                    format!("rs{}", i % HOSTS).as_str(),
                    7000 + (i / HOSTS) as u16,
                )
                // Long periods: 2k daemons renewing every 500ms would be a
                // renewal storm benchmark, not a multiplexing test.
                .with_lease_renew(Duration::from_secs(10))
                .with_tick(Duration::from_secs(1))
                .with_stats_interval(Duration::ZERO)
                .with_runtime_pool(pool.clone()),
                Box::new(Echo),
            )
            .unwrap()
        })
        .collect();

    // All registered.
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut asd = AsdClient::connect(&net, &"core".into(), fw.asd_addr.clone(), &me).unwrap();
    assert_eq!(asd.lookup(None, Some("Echo"), None).unwrap().len(), DAEMONS);

    // Wedge one worker with a task that refuses to yield…
    let release = Arc::new(AtomicBool::new(false));
    let staller = pool.spawn(Box::new(Staller {
        release: Arc::clone(&release),
    }));

    // …and every daemon still answers `ping` while it is stuck.
    for d in &daemons {
        let mut client =
            ServiceClient::connect(&net, &"core".into(), d.addr().clone(), &me).unwrap();
        client.call_ok(&CmdLine::new("ping")).unwrap();
    }

    // The watchdog saw the wedged worker.
    assert!(
        pool.long_polls() > 0,
        "a {}ms+ poll must be counted as a long poll",
        ace_core::runtime::LONG_POLL.as_millis()
    );

    release.store(true, Ordering::SeqCst);
    staller.wake();
    assert!(
        staller.wait(Duration::from_secs(10)),
        "released staller must complete"
    );

    for d in daemons {
        d.shutdown();
    }
    assert_eq!(asd.lookup(None, Some("Echo"), None).unwrap().len(), 0);
    fw.shutdown();
    pool.shutdown();
}

/// The AUD under a sustained mixed read/write load keeps its indexes
/// consistent.
#[test]
fn aud_sustained_mixed_load() {
    let net = SimNet::new();
    net.add_host("core");
    let fw = bootstrap(&net, "core", Duration::from_secs(10)).unwrap();
    let aud = Daemon::spawn(
        &net,
        fw.service_config("aud", "Service.Database.User", "machineroom", "core", 5200),
        Box::new(UserDb::new()),
    )
    .unwrap();
    let me = KeyPair::generate(&mut rand::thread_rng());
    let mut client = UserDbClient::connect(&net, &"core".into(), aud.addr().clone(), &me).unwrap();

    const USERS: usize = 300;
    for i in 0..USERS {
        client
            .add_user(
                &format!("u{i}"),
                &format!("User {i}"),
                "pw",
                "rsa:0:0",
                Some(&format!("fp{i}")),
                Some(&format!("ib{i}")),
            )
            .unwrap();
    }
    // Mixed reads across all three indexes.
    for i in (0..USERS).step_by(7) {
        assert_eq!(
            client
                .find_by_fingerprint(&format!("fp{i}"))
                .unwrap()
                .as_deref(),
            Some(format!("u{i}").as_str())
        );
        assert_eq!(
            client
                .find_by_ibutton(&format!("ib{i}"))
                .unwrap()
                .as_deref(),
            Some(format!("u{i}").as_str())
        );
        client
            .set_location(&format!("u{i}"), "hawk", "core")
            .unwrap();
    }
    // Remove a third; indexes must drop the entries.
    for i in (0..USERS).step_by(3) {
        client
            .raw()
            .call_ok(&CmdLine::new("removeUser").arg("username", format!("u{i}").as_str()))
            .unwrap();
        assert_eq!(client.find_by_fingerprint(&format!("fp{i}")).unwrap(), None);
    }
    assert_eq!(
        client.list_users().unwrap().len(),
        USERS - USERS.div_ceil(3)
    );

    aud.shutdown();
    fw.shutdown();
}
