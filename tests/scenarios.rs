//! The paper's §7 scenarios, end-to-end against the full environment.
//!
//! "All of these scenarios have already been attempted and have
//! successfully run in the current version of ACE" — these tests are the
//! reproduction's equivalent statement.

use ace_core::prelude::*;
use ace_env::{AceEnvironment, EnvConfig};
use ace_security::keys::KeyPair;
use ace_workspace::VncViewer;
use std::time::Duration;

fn keypair() -> KeyPair {
    KeyPair::generate(&mut rand::thread_rng())
}

fn env() -> AceEnvironment {
    AceEnvironment::build(EnvConfig::default()).expect("environment builds")
}

fn wait_until(deadline: Duration, mut probe: impl FnMut() -> bool) -> bool {
    let end = std::time::Instant::now() + deadline;
    while std::time::Instant::now() < end {
        if probe() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// Scenario 1: a new employee gets an ACE account and a default workspace
/// appears, placed through SAL → SRM → HAL.
#[test]
fn scenario1_new_user_and_workspace() {
    let ace = env();
    let john = keypair();

    ace.register_user("jdoe", "John Doe", "hunter2", &john, Some("fp_jdoe"), None)
        .unwrap();

    let mut wss = ace.client("wss").unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            wss.call(&CmdLine::new("wssList").arg("user", "jdoe"))
                .map(|r| r.get_int("count") == Some(1))
                .unwrap_or(false)
        }),
        "default workspace provisioned"
    );

    // The VNC server process was accounted on some host through the SAL.
    let mut srm = ace.client("srm").unwrap();
    let reply = srm.call(&CmdLine::new("systemResources")).unwrap();
    let rows = ace_resources::system_rows_from_value(reply.get("hosts").unwrap()).unwrap();
    let total_apps: i64 = rows.iter().map(|r| r.5).sum();
    assert!(total_apps >= 1, "vncserver accounted: {rows:?}");

    ace.shutdown();
}

/// Scenarios 2 + 3: identification at the podium updates the user's
/// location and brings the workspace to the access point (the Fig. 19
/// step sequence).
#[test]
fn scenario2_and_3_identify_and_show_workspace() {
    let ace = env();
    let john = keypair();
    ace.register_user("jdoe", "John Doe", "hunter2", &john, Some("fp_jdoe"), None)
        .unwrap();

    // Wait for the default workspace first.
    let mut wss = ace.client("wss").unwrap();
    assert!(wait_until(Duration::from_secs(10), || {
        wss.call(&CmdLine::new("wssList").arg("user", "jdoe"))
            .map(|r| r.get_int("count") == Some(1))
            .unwrap_or(false)
    }));

    // John presses his thumb to the podium scanner.
    let reply = ace.press_finger("fp_jdoe").unwrap();
    assert_eq!(reply.get_bool("identified"), Some(true));

    // Step 3 of Fig. 19: the AUD knows where John is.
    let mut aud = ace.client("aud").unwrap();
    assert!(
        wait_until(Duration::from_secs(10), || {
            aud.call(&CmdLine::new("getLocation").arg("username", "jdoe"))
                .map(|r| r.get_text("room") == Some("hawk") && r.get_text("host") == Some("podium"))
                .unwrap_or(false)
        }),
        "location updated"
    );

    // Steps 4-7: the workspace was shown at the podium.
    assert!(
        wait_until(Duration::from_secs(10), || {
            wss.call(&CmdLine::new("wssStats"))
                .map(|r| r.get_int("shows").unwrap_or(0) >= 1)
                .unwrap_or(false)
        }),
        "workspace shown at the access point"
    );

    // An intruder is rejected and logged.
    let reply = ace.press_finger("fp_mallory").unwrap();
    assert_eq!(reply.get_bool("identified"), Some(false));

    ace.shutdown();
}

/// Scenario 4: with two workspaces the selector is raised instead of an
/// automatic show, and an explicit `wssShow` confirms the choice — the
/// access point attaches a viewer with the returned coordinates.
#[test]
fn scenario4_multiple_workspaces() {
    let ace = env();
    let john = keypair();
    ace.register_user("jdoe", "John Doe", "hunter2", &john, Some("fp_jdoe"), None)
        .unwrap();

    let mut wss = ace.client("wss").unwrap();
    assert!(wait_until(Duration::from_secs(10), || {
        wss.call(&CmdLine::new("wssList").arg("user", "jdoe"))
            .map(|r| r.get_int("count") == Some(1))
            .unwrap_or(false)
    }));
    // A second workspace for the presentation.
    wss.call(
        &CmdLine::new("wssCreate")
            .arg("user", "jdoe")
            .arg("name", "slides"),
    )
    .unwrap();

    let shows_before = wss
        .call(&CmdLine::new("wssStats"))
        .unwrap()
        .get_int("shows")
        .unwrap();

    // Identification now must NOT auto-show (selector instead).
    ace.press_finger("fp_jdoe").unwrap();
    std::thread::sleep(Duration::from_millis(400));
    let shows_after = wss
        .call(&CmdLine::new("wssStats"))
        .unwrap()
        .get_int("shows")
        .unwrap();
    assert_eq!(shows_before, shows_after, "selector, not auto-show");

    // John picks `slides` on the selector GUI.
    let shown = wss
        .call(
            &CmdLine::new("wssShow")
                .arg("user", "jdoe")
                .arg("name", "slides")
                .arg("accessHost", "podium"),
        )
        .unwrap();
    let session = shown.get_text("session").unwrap().to_string();
    let password = shown.get_text("password").unwrap().to_string();
    let vnc_addr = Addr::new(
        shown.get_text("vncHost").unwrap(),
        shown.get_int("vncPort").unwrap() as u16,
    );
    let viewer = VncViewer::attach(
        &ace.net,
        &"podium".into(),
        6200,
        &vnc_addr,
        &session,
        &password,
        &ace.admin,
    );
    assert!(viewer.is_ok(), "viewer attaches at the podium");

    ace.shutdown();
}

/// Scenario 5: device control through ASD-discovered daemons — the Room DB
/// lists the room's devices, the projector and camera obey, and the camera
/// points at the podium.
#[test]
fn scenario5_services_and_devices() {
    let ace = env();

    // The device GUI asks the Room Database what is in `hawk`.
    let mut roomdb = ace_directory::RoomDbClient::connect(
        &ace.net,
        &"core".into(),
        ace.fw.roomdb_addr.clone(),
        &ace.admin,
    )
    .unwrap();
    let placements = roomdb.room_services("hawk").unwrap();
    let names: Vec<&str> = placements.iter().map(|p| p.service.as_str()).collect();
    for expected in ["camera_hawk", "projector_hawk", "fiu_hawk"] {
        assert!(
            names.contains(&expected),
            "{expected} placed in hawk: {names:?}"
        );
    }

    // Discovery via the ASD by class (Fig. 7), then command the devices.
    let mut asd = ace_directory::AsdClient::connect(
        &ace.net,
        &"core".into(),
        ace.fw.asd_addr.clone(),
        &ace.admin,
    )
    .unwrap();
    let projectors = asd.lookup(None, Some("Projector"), Some("hawk")).unwrap();
    assert_eq!(projectors.len(), 1);
    let cameras = asd.lookup(None, Some("PTZCamera"), Some("hawk")).unwrap();
    assert_eq!(cameras.len(), 1);

    let mut projector = ServiceClient::connect(
        &ace.net,
        &"podium".into(),
        projectors[0].addr.clone(),
        &ace.admin,
    )
    .unwrap();
    // Powered-off rejection first.
    let err = projector
        .call(&CmdLine::new("projInput").arg("source", "workspace"))
        .unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::BadState));
    projector.call_ok(&CmdLine::new("projOn")).unwrap();
    projector
        .call_ok(&CmdLine::new("projInput").arg("source", "workspace"))
        .unwrap();
    // Camera output as picture-in-picture.
    projector
        .call_ok(&CmdLine::new("projPip").arg("source", "camera"))
        .unwrap();

    let mut camera = ServiceClient::connect(
        &ace.net,
        &"podium".into(),
        cameras[0].addr.clone(),
        &ace.admin,
    )
    .unwrap();
    camera.call_ok(&CmdLine::new("ptzOn")).unwrap();
    let moved = camera
        .call(
            &CmdLine::new("ptzMove")
                .arg("x", 35.0)
                .arg("y", -10.0)
                .arg("zoom", 2.0),
        )
        .unwrap();
    assert_eq!(moved.get_f64("x"), Some(35.0));
    // VCC4 extension: store/recall the podium preset (hierarchy in action).
    camera
        .call_ok(&CmdLine::new("ptzPresetStore").arg("name", "podium"))
        .unwrap();
    camera
        .call_ok(&CmdLine::new("ptzMove").arg("x", 0.0).arg("y", 0.0))
        .unwrap();
    let recalled = camera
        .call(&CmdLine::new("ptzPresetRecall").arg("name", "podium"))
        .unwrap();
    assert_eq!(recalled.get_f64("x"), Some(35.0));
    assert_eq!(recalled.get_f64("y"), Some(-10.0));

    let status = projector.call(&CmdLine::new("projStatus")).unwrap();
    assert_eq!(status.get_text("input"), Some("workspace"));
    assert_eq!(status.get_text("pip"), Some("camera"));

    ace.shutdown();
}

/// Limits are enforced per camera model (the Fig. 6 hierarchy's point: same
/// command set, different device behavior).
#[test]
fn camera_limits_clamp() {
    let ace = env();
    let mut camera = ace.client("camera_hawk").unwrap();
    camera.call_ok(&CmdLine::new("ptzOn")).unwrap();
    let moved = camera
        .call(
            &CmdLine::new("ptzMove")
                .arg("x", 500.0)
                .arg("y", -500.0)
                .arg("zoom", 99.0),
        )
        .unwrap();
    // VCC4 limits: ±100 pan, ±30 tilt, 16x zoom.
    assert_eq!(moved.get_f64("x"), Some(100.0));
    assert_eq!(moved.get_f64("y"), Some(-30.0));
    assert_eq!(moved.get_f64("zoom"), Some(16.0));
    ace.shutdown();
}

/// The environment's own persistent store works through the public API.
#[test]
fn environment_store_roundtrip() {
    let ace = env();
    let mut store = ace.store_client(keypair()).expect("cluster present");
    store
        .put("workspace", "jdoe_default", b"state blob")
        .unwrap();
    assert_eq!(
        store.get("workspace", "jdoe_default").unwrap(),
        b"state blob"
    );
    ace.shutdown();
}
